//! The incremental-vs-recompute maintenance cost model, and delta-first
//! leg compilation.
//!
//! When a participant publishes a new epoch, every materialized workload
//! answer can be refreshed two ways: push the epoch's signed delta
//! through the view's maintenance legs (one telescoped leg per changed
//! relation), or recompute the maintenance plan in full at the new
//! epoch.  Which is cheaper depends on the churn: a handful of changed
//! tuples ships a handful of broadcast delta rows, while a batch that
//! rewrites most of a relation makes every leg nearly as expensive as a
//! full run — and there is one leg per changed relation.
//!
//! Two pieces live here:
//!
//! * [`compile_delta_legs`] — per pivot relation, compile the view's
//!   logical query with the pivot's cardinality set to a delta-sized
//!   value, so the System-R enumerator picks a *delta-first join
//!   order*.  The engine then rewrites each compiled leg into broadcast
//!   form ([`orchestra_engine::MaterializedView::install_leg_plans`]):
//!   without this, a leg whose pivot sits atop the join tree would
//!   re-ship a full off-path join on every refresh.
//! * [`choose_maintenance`] — price both refresh strategies with the
//!   same network-byte cost model the planner uses
//!   ([`estimate_plan_cost`]): the recompute estimate costs the
//!   maintenance plan against the *new* epoch's statistics; the
//!   incremental estimate sums, over each leg, that leg's plan costed
//!   with the pivot relation's cardinality replaced by its signed delta
//!   row count, relations before the pivot (telescoping order) at the
//!   new cardinality, and relations after it at the old — exactly the
//!   snapshots the executed legs read.  Statistics are refreshed per
//!   epoch by the caller ([`Statistics::collect`] at the published
//!   epoch), so the decision always prices the batch actually being
//!   absorbed.

use crate::cost::estimate_plan_cost;
use crate::logical::LogicalQuery;
use crate::planner::{compile_with, PlannerOptions};
use crate::stats::Statistics;
use orchestra_common::OrchestraError;
use orchestra_engine::{MaintenanceLeg, PhysicalPlan};
use std::collections::BTreeMap;

/// Nominal pivot cardinality used when compiling delta-first legs: the
/// join order the planner picks for a tiny pivot is the right one for
/// any small delta, and legs are compiled once at view creation.
const NOMINAL_DELTA_ROWS: usize = 1;

/// Compile one delta-first leg input per relation of `query`: the same
/// logical query, planned with broadcast joins enabled
/// ([`PlannerOptions::broadcast_joins`]) as if the pivot relation held
/// a nominal single delta row — so the enumerator both starts the join
/// order from the delta and moves the tiny stream with broadcasts
/// instead of re-aligning full relations.  The result order (the
/// query's relation slots) becomes the legs' telescoping order when
/// installed.
pub fn compile_delta_legs(
    query: &LogicalQuery,
    stats: &Statistics,
) -> Result<Vec<(String, PhysicalPlan)>, OrchestraError> {
    compile_delta_legs_with(query, stats, &BTreeMap::new())
}

/// [`compile_delta_legs`] with *observed* per-relation delta sizes: each
/// pivot is compiled at its relation's measured delta-row estimate (the
/// EWMA the adaptive subsystem maintains,
/// [`crate::adaptive::AdaptiveStats::delta_rows_estimate`]) instead of
/// the nominal single row.  Relations absent from `delta_rows` keep the
/// cold-start nominal, so an empty map reproduces [`compile_delta_legs`]
/// exactly and existing figures stay stable.
pub fn compile_delta_legs_with(
    query: &LogicalQuery,
    stats: &Statistics,
    delta_rows: &BTreeMap<String, usize>,
) -> Result<Vec<(String, PhysicalPlan)>, OrchestraError> {
    let options = PlannerOptions {
        broadcast_joins: true,
    };
    query
        .relations
        .iter()
        .map(|relation| {
            let rows = delta_rows
                .get(relation)
                .copied()
                .unwrap_or(NOMINAL_DELTA_ROWS)
                .max(1);
            let leg_stats = stats.with_cardinality(relation, rows);
            Ok((relation.clone(), compile_with(query, &leg_stats, options)?))
        })
        .collect()
}

/// The refresh strategy the cost model selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MaintenanceDecision {
    /// Push the signed delta legs through the maintenance plan.
    Incremental,
    /// Re-run the maintenance plan in full at the new epoch.
    Recompute,
}

/// The priced choice between incremental maintenance and recomputation.
#[derive(Clone, Debug)]
pub struct MaintenanceChoice {
    /// The cheaper strategy (ties go to recomputation — equal cost with
    /// simpler machinery).
    pub decision: MaintenanceDecision,
    /// Estimated network bytes of all incremental legs combined.
    pub incremental_bytes: f64,
    /// Estimated network bytes of a full recomputation.
    pub recompute_bytes: f64,
    /// Legs the incremental path would run (pivots of changed relations).
    pub legs: usize,
}

/// Price incremental maintenance against recomputation for one published
/// batch.
///
/// * `plan` — the view's *maintenance* plan (aggregates stripped),
///   which the recompute path executes;
/// * `legs` — the engine's rewritten delta legs
///   (`MaintenancePlan::legs`), in telescoping order;
/// * `stats_old` / `stats_new` — statistics snapshots at the view's
///   current epoch and at the published epoch;
/// * `delta_rows` — signed delta row count per relation
///   (`RelationDelta::signed_row_count`); relations absent or at zero
///   are unchanged and contribute no leg.
pub fn choose_maintenance(
    plan: &PhysicalPlan,
    legs: &[MaintenanceLeg],
    stats_old: &Statistics,
    stats_new: &Statistics,
    delta_rows: &BTreeMap<String, usize>,
) -> Result<MaintenanceChoice, OrchestraError> {
    let recompute_bytes = estimate_plan_cost(plan, stats_new)?.total();

    let mut incremental_bytes = 0.0;
    let mut priced = 0;
    for (pivot, leg) in legs.iter().enumerate() {
        let rows = delta_rows.get(&leg.relation).copied().unwrap_or(0);
        if rows == 0 {
            continue;
        }
        priced += 1;
        // Leg `pivot` reads: relations before the pivot (telescoping
        // order) at the new epoch, the pivot as the signed delta,
        // relations after it at the old epoch.  `stats_new` is the
        // base, so only the pivot and the post-pivot relations need
        // overriding.
        let mut leg_stats = stats_new.with_cardinality(&leg.relation, rows);
        for later in &legs[pivot + 1..] {
            if let Some(old) = stats_old.table(&later.relation) {
                leg_stats = leg_stats.with_cardinality(&later.relation, old.cardinality);
            }
        }
        incremental_bytes += estimate_plan_cost(&leg.plan, &leg_stats)?.total();
    }

    let decision = if priced > 0 && incremental_bytes < recompute_bytes {
        MaintenanceDecision::Incremental
    } else {
        MaintenanceDecision::Recompute
    };
    Ok(MaintenanceChoice {
        decision,
        incremental_bytes,
        recompute_bytes,
        legs: priced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use orchestra_common::{ColumnType, Relation, Schema};
    use orchestra_engine::{FoldMode, PlanBuilder};

    fn table(name: &str, cardinality: usize) -> TableStats {
        TableStats::from_relation(
            &Relation::partitioned(
                name,
                Schema::keyed_on_first(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]),
            ),
            cardinality,
        )
    }

    fn scan_ship(relation: &str) -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let r = b.scan(relation, 2, None);
        let ship = b.ship(r);
        b.output(ship)
    }

    fn leg(relation: &str, plan: PhysicalPlan) -> MaintenanceLeg {
        MaintenanceLeg {
            relation: relation.into(),
            plan,
            fold: FoldMode::Multiset,
        }
    }

    #[test]
    fn small_deltas_go_incremental_large_churn_recomputes() {
        let stats = |n| Statistics::from_tables(6, vec![table("R", n)]);
        let plan = scan_ship("R");
        let legs = vec![leg("R", plan.clone())];

        let small: BTreeMap<String, usize> = [("R".to_string(), 10)].into();
        let choice = choose_maintenance(&plan, &legs, &stats(1000), &stats(1005), &small).unwrap();
        assert_eq!(choice.decision, MaintenanceDecision::Incremental);
        assert_eq!(choice.legs, 1);
        assert!(choice.incremental_bytes < choice.recompute_bytes);

        // A churn batch whose signed delta outweighs the relation flips
        // the decision.
        let churn: BTreeMap<String, usize> = [("R".to_string(), 1600)].into();
        let choice = choose_maintenance(&plan, &legs, &stats(1000), &stats(1000), &churn).unwrap();
        assert_eq!(choice.decision, MaintenanceDecision::Recompute);
        assert!(choice.incremental_bytes > choice.recompute_bytes);
    }

    #[test]
    fn unchanged_relations_contribute_no_leg() {
        let stats = Statistics::from_tables(4, vec![table("R", 500), table("S", 500)]);
        let mut b = PlanBuilder::new();
        let r = b.scan("R", 2, None);
        let s = b.scan("S", 2, None);
        let r_re = b.rehash(r, vec![1]);
        let s_re = b.rehash(s, vec![1]);
        let j = b.hash_join(r_re, s_re, vec![1], vec![1]);
        let ship = b.ship(j);
        let plan = b.output(ship);
        let legs = vec![leg("R", plan.clone()), leg("S", plan.clone())];

        // Only R changed: one leg, priced with R at the delta size.
        let delta: BTreeMap<String, usize> = [("R".to_string(), 20)].into();
        let choice = choose_maintenance(&plan, &legs, &stats, &stats, &delta).unwrap();
        assert_eq!(choice.legs, 1);
        assert_eq!(choice.decision, MaintenanceDecision::Incremental);

        // Nothing changed: no legs, recompute wins by definition (and a
        // caller with an empty delta skips the refresh entirely).
        let none = BTreeMap::new();
        let choice = choose_maintenance(&plan, &legs, &stats, &stats, &none).unwrap();
        assert_eq!(choice.legs, 0);
        assert_eq!(choice.decision, MaintenanceDecision::Recompute);
        assert_eq!(choice.incremental_bytes, 0.0);
    }

    #[test]
    fn delta_first_legs_reorder_joins_around_the_pivot() {
        // A 3-relation chain query: the pivot relation compiled at
        // cardinality 1 must end up at the bottom of its leg's join
        // tree, so the big off-path join never re-runs.
        use crate::logical::col;
        let mut q = LogicalQuery::new();
        let a = q.relation("A");
        let b = q.relation("B");
        let c = q.relation("C");
        q.join(col(a, 0), col(b, 1))
            .join(col(b, 0), col(c, 1))
            .select(vec![
                crate::logical::LogicalExpr::col(a, 1),
                crate::logical::LogicalExpr::col(c, 1),
            ]);
        let stats =
            Statistics::from_tables(6, vec![table("A", 100), table("B", 400), table("C", 1600)]);
        let legs = compile_delta_legs(&q, &stats).unwrap();
        assert_eq!(legs.len(), 3);
        assert_eq!(legs[0].0, "A");
        // In every leg, the pivot's scan participates in the *deepest*
        // join: the other two relations join against the tiny delta
        // stream, never against each other first (which would re-ship a
        // full off-path join on every refresh).
        use orchestra_engine::OperatorKind;
        for (relation, plan) in &legs {
            assert_eq!(plan.scans().len(), 3, "leg {relation}");
            // The deepest join is the one with no HashJoin beneath it.
            let deepest = plan
                .operators()
                .iter()
                .find(|op| {
                    matches!(op.kind, OperatorKind::HashJoin { .. })
                        && subtree_has_no_join(plan, op.id)
                })
                .expect("a three-relation leg has joins");
            let pivot_scan = plan
                .scans()
                .into_iter()
                .find(|id| match &plan.op(*id).kind {
                    OperatorKind::DistributedScan { relation: r, .. } => r == relation,
                    _ => false,
                })
                .expect("pivot scan exists");
            assert!(
                subtree_contains(plan, deepest.id, pivot_scan),
                "leg {relation}: the pivot must sit under the deepest join:\n{}",
                plan.render()
            );
        }
    }

    /// No HashJoin strictly below `op`'s children.
    fn subtree_has_no_join(plan: &PhysicalPlan, op: orchestra_engine::OpId) -> bool {
        plan.op(op).children.iter().all(|c| {
            !matches!(
                plan.op(*c).kind,
                orchestra_engine::OperatorKind::HashJoin { .. }
            ) && subtree_has_no_join(plan, *c)
        })
    }

    /// Does the subtree rooted at `op` contain `target`?
    fn subtree_contains(
        plan: &PhysicalPlan,
        op: orchestra_engine::OpId,
        target: orchestra_engine::OpId,
    ) -> bool {
        op == target
            || plan
                .op(op)
                .children
                .iter()
                .any(|c| subtree_contains(plan, *c, target))
    }
}
