//! The network-aware cost model.
//!
//! The paper's evaluation is traffic-centric, and in a DHT-partitioned
//! engine the dominant cost of a plan is the bytes its `Rehash` and
//! `Ship` boundaries push across the wire: scans are node-local, and CPU
//! work is the same for any plan producing the same answer.  A plan's
//! cost is therefore its **estimated inter-node traffic in bytes**, with
//! estimated rows processed kept alongside as a deterministic tie-break
//! for the dynamic program.
//!
//! The primitives here ([`exchange_fraction`], [`join_output_rows`],
//! [`group_count`]) are shared between the System-R enumerator
//! ([`crate::compile`]) and the physical-plan estimator
//! ([`estimate_plan_cost`]), so the planner's internal arithmetic and the
//! cost it reports for any already-built plan agree.

use crate::stats::Statistics;
use orchestra_common::OrchestraError;
use orchestra_engine::{AggFunc, AggMode, OperatorKind, PhysicalPlan, Predicate, ScalarExpr};

/// Estimated per-tuple framing overhead of the batch wire encoding.
pub(crate) const TUPLE_OVERHEAD_BYTES: f64 = 2.0;
/// Estimated wire bytes of one numeric value — aggregate state columns
/// and computed (arithmetic) select-list values alike.
pub(crate) const NUMERIC_COLUMN_BYTES: f64 = 9.0;
/// Fraction of distinct grouping keys per input row assumed when no
/// distinct-count statistics exist.
const GROUP_RATIO: f64 = 0.1;

/// The estimated cost of a plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanCost {
    /// Estimated inter-node traffic in bytes — the cost that is
    /// minimised and compared.
    pub network_bytes: f64,
    /// Estimated rows flowing through all operators (deterministic
    /// tie-break between plans of equal traffic).
    pub cpu_rows: f64,
}

impl PlanCost {
    /// The scalar total used for comparisons: estimated network bytes.
    pub fn total(&self) -> f64 {
        self.network_bytes
    }

    /// Accumulate another cost component.
    pub fn add(&mut self, other: PlanCost) {
        self.network_bytes += other.network_bytes;
        self.cpu_rows += other.cpu_rows;
    }

    /// Is this cost strictly better than `other` (network bytes first,
    /// rows processed as the tie-break)?
    pub fn better_than(&self, other: &PlanCost) -> bool {
        if self.network_bytes != other.network_bytes {
            return self.network_bytes < other.network_bytes;
        }
        self.cpu_rows < other.cpu_rows
    }
}

/// The fraction of uniformly partitioned rows that must leave their node
/// when repartitioned or shipped across an `nodes`-participant snapshot.
pub fn exchange_fraction(nodes: usize) -> f64 {
    if nodes <= 1 {
        0.0
    } else {
        (nodes as f64 - 1.0) / nodes as f64
    }
}

/// Estimated output rows of an equi-join of `rows_a` × `rows_b` rows
/// whose join key has an estimated `distinct` distinct values (the
/// textbook `|A||B| / max(V(A), V(B))` with the base-relation
/// cardinality as the distinct-count proxy).
pub fn join_output_rows(rows_a: f64, rows_b: f64, distinct: f64) -> f64 {
    if distinct <= 1.0 {
        rows_a * rows_b
    } else {
        rows_a * rows_b / distinct
    }
}

/// Estimated group count of an aggregation over `rows` input rows:
/// one group when ungrouped, a fixed fraction of the input otherwise.
pub fn group_count(rows: f64, grouped: bool) -> f64 {
    if rows <= 0.0 {
        return 0.0;
    }
    if grouped {
        (rows * GROUP_RATIO).max(1.0)
    } else {
        1.0
    }
}

/// Estimated wire bytes of the state columns of a partial-aggregate row.
pub(crate) fn partial_state_bytes(aggs: &[(AggFunc, usize)]) -> f64 {
    aggs.iter()
        .map(|(f, _)| f.partial_width() as f64 * NUMERIC_COLUMN_BYTES)
        .sum()
}

/// Bottom-up estimate of one operator subtree: output rows, per-column
/// widths, per-column distinct-count estimates (where the adaptive
/// overlay has them), and the largest base-relation cardinality
/// underneath (the distinct-count proxy when no sketch answers).
struct SubtreeEst {
    rows: f64,
    widths: Vec<f64>,
    distincts: Vec<Option<f64>>,
    max_base_cardinality: f64,
}

impl SubtreeEst {
    fn row_bytes(&self) -> f64 {
        TUPLE_OVERHEAD_BYTES + self.widths.iter().sum::<f64>()
    }
}

/// Estimate the cost of an already-built physical plan against a
/// statistics snapshot.  Used by the plan-quality experiment to compare
/// optimizer-chosen plans with hand-built ones under one model.
pub fn estimate_plan_cost(
    plan: &PhysicalPlan,
    stats: &Statistics,
) -> Result<PlanCost, OrchestraError> {
    Ok(estimate_plan_cost_and_rows(plan, stats)?.0)
}

/// [`estimate_plan_cost`] plus the plan's estimated *output cardinality*
/// — the prediction the adaptive feedback loop compares against the
/// measured answer size ([`crate::adaptive::CostFeedback::observe_rows`]).
pub fn estimate_plan_cost_and_rows(
    plan: &PhysicalPlan,
    stats: &Statistics,
) -> Result<(PlanCost, f64), OrchestraError> {
    let mut cost = PlanCost::default();
    let root = walk(plan, plan.root(), stats, &mut cost)?;
    Ok((cost, root.rows))
}

fn scan_est(
    stats: &Statistics,
    relation: &str,
    predicate: &Option<Predicate>,
    key_only: bool,
) -> Result<SubtreeEst, OrchestraError> {
    let table = stats.table(relation).ok_or_else(|| {
        OrchestraError::Execution(format!("no statistics for relation {relation}"))
    })?;
    let selectivity = table.selectivity(predicate.as_ref());
    let (widths, distincts) = if key_only {
        (
            table.column_widths[..table.key_len].to_vec(),
            table.distinct_counts[..table.key_len].to_vec(),
        )
    } else {
        (table.column_widths.clone(), table.distinct_counts.clone())
    };
    Ok(SubtreeEst {
        rows: table.cardinality as f64 * selectivity,
        widths,
        distincts,
        max_base_cardinality: table.cardinality as f64,
    })
}

/// Estimated group count of an aggregation over `child`, preferring the
/// product of the group columns' distinct-count estimates (capped at the
/// input cardinality) and falling back to the fixed
/// [`group_count`] ratio when any group column lacks a sketch.
fn group_estimate(child: &SubtreeEst, group_by: &[usize], grouped: bool) -> f64 {
    if grouped && child.rows > 0.0 {
        let mut product = 1.0;
        let mut covered = !group_by.is_empty();
        for c in group_by {
            match child.distincts.get(*c).copied().flatten() {
                Some(d) => product *= d.max(1.0),
                None => {
                    covered = false;
                    break;
                }
            }
        }
        if covered {
            return product.min(child.rows).max(1.0);
        }
    }
    group_count(child.rows, grouped)
}

fn expr_width(expr: &ScalarExpr, child: &SubtreeEst) -> f64 {
    match expr {
        ScalarExpr::Column(i) => child
            .widths
            .get(*i)
            .copied()
            .unwrap_or(NUMERIC_COLUMN_BYTES),
        ScalarExpr::Literal(v) => v.serialized_size() as f64,
        ScalarExpr::Add(..) | ScalarExpr::Sub(..) | ScalarExpr::Mul(..) => NUMERIC_COLUMN_BYTES,
        ScalarExpr::Concat(parts) => parts.iter().map(|p| expr_width(p, child)).sum(),
    }
}

fn walk(
    plan: &PhysicalPlan,
    op: orchestra_engine::OpId,
    stats: &Statistics,
    cost: &mut PlanCost,
) -> Result<SubtreeEst, OrchestraError> {
    let operator = plan.op(op);
    let est = match &operator.kind {
        OperatorKind::DistributedScan {
            relation,
            predicate,
        }
        | OperatorKind::ReplicatedScan {
            relation,
            predicate,
        } => scan_est(stats, relation, predicate, false)?,
        OperatorKind::CoveringIndexScan {
            relation,
            predicate,
        } => scan_est(stats, relation, predicate, true)?,
        OperatorKind::Select { predicate } => {
            let child = walk(plan, operator.children[0], stats, cost)?;
            SubtreeEst {
                rows: child.rows * predicate.estimated_selectivity(),
                ..child
            }
        }
        OperatorKind::Project { columns } => {
            let child = walk(plan, operator.children[0], stats, cost)?;
            let widths = columns
                .iter()
                .map(|c| {
                    child
                        .widths
                        .get(*c)
                        .copied()
                        .unwrap_or(NUMERIC_COLUMN_BYTES)
                })
                .collect();
            let distincts = columns
                .iter()
                .map(|c| child.distincts.get(*c).copied().flatten())
                .collect();
            SubtreeEst {
                widths,
                distincts,
                ..child
            }
        }
        OperatorKind::ComputeFunction { exprs } => {
            let child = walk(plan, operator.children[0], stats, cost)?;
            let widths = exprs.iter().map(|e| expr_width(e, &child)).collect();
            let distincts = exprs
                .iter()
                .map(|e| match e {
                    ScalarExpr::Column(i) => child.distincts.get(*i).copied().flatten(),
                    _ => None,
                })
                .collect();
            SubtreeEst {
                widths,
                distincts,
                ..child
            }
        }
        OperatorKind::HashJoin {
            left_keys,
            right_keys,
        } => {
            let left = walk(plan, operator.children[0], stats, cost)?;
            let right = walk(plan, operator.children[1], stats, cost)?;
            let max_base = left.max_base_cardinality.max(right.max_base_cardinality);
            // Prefer the key columns' sketched distinct counts; the
            // base-cardinality proxy only stands in when no side knows.
            let mut key_distinct: Option<f64> = None;
            for (side, keys) in [(&left, left_keys), (&right, right_keys)] {
                for k in keys {
                    if let Some(d) = side.distincts.get(*k).copied().flatten() {
                        key_distinct = Some(key_distinct.map_or(d, |cur| cur.max(d)));
                    }
                }
            }
            let distinct = key_distinct.unwrap_or(max_base);
            let rows = join_output_rows(left.rows, right.rows, distinct);
            let mut widths = left.widths;
            widths.extend(right.widths);
            let mut distincts = left.distincts;
            distincts.extend(right.distincts);
            SubtreeEst {
                rows,
                widths,
                distincts,
                max_base_cardinality: max_base,
            }
        }
        OperatorKind::Aggregate {
            group_by,
            aggs,
            mode,
        } => {
            let child = walk(plan, operator.children[0], stats, cost)?;
            let grouped = !group_by.is_empty();
            let group_distincts: Vec<Option<f64>> = group_by
                .iter()
                .map(|c| child.distincts.get(*c).copied().flatten())
                .collect();
            match mode {
                AggMode::Partial => {
                    let groups = group_estimate(&child, group_by, grouped);
                    let rows = child.rows.min(groups * stats.nodes as f64);
                    let mut widths: Vec<f64> = group_by
                        .iter()
                        .map(|c| {
                            child
                                .widths
                                .get(*c)
                                .copied()
                                .unwrap_or(NUMERIC_COLUMN_BYTES)
                        })
                        .collect();
                    widths.push(partial_state_bytes(aggs));
                    let mut distincts = group_distincts;
                    distincts.push(None);
                    SubtreeEst {
                        rows,
                        widths,
                        distincts,
                        max_base_cardinality: child.max_base_cardinality,
                    }
                }
                AggMode::Single | AggMode::Final => {
                    let rows = group_estimate(&child, group_by, grouped).min(child.rows);
                    let widths = (0..group_by.len() + aggs.len())
                        .map(|_| NUMERIC_COLUMN_BYTES)
                        .collect();
                    let mut distincts = group_distincts;
                    distincts.extend(aggs.iter().map(|_| None));
                    SubtreeEst {
                        rows,
                        widths,
                        distincts,
                        max_base_cardinality: child.max_base_cardinality,
                    }
                }
            }
        }
        OperatorKind::Rehash { .. } | OperatorKind::Ship => {
            let child = walk(plan, operator.children[0], stats, cost)?;
            cost.network_bytes += child.rows * child.row_bytes() * exchange_fraction(stats.nodes);
            child
        }
        OperatorKind::Broadcast => {
            let child = walk(plan, operator.children[0], stats, cost)?;
            // Every row goes to every *other* participant (the local
            // copy is an in-memory handover).  Row-count estimates stay
            // logical: each stationary join partner still meets each
            // broadcast row exactly once.
            cost.network_bytes +=
                child.rows * child.row_bytes() * (stats.nodes.saturating_sub(1)) as f64;
            child
        }
        OperatorKind::Output => walk(plan, operator.children[0], stats, cost)?,
    };
    cost.cpu_rows += est.rows;
    Ok(est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use orchestra_common::{ColumnType, Relation, Schema};
    use orchestra_engine::{CmpOp, PlanBuilder};

    fn two_col_stats(name: &str, cardinality: usize) -> TableStats {
        TableStats::from_relation(
            &Relation::partitioned(
                name,
                Schema::keyed_on_first(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]),
            ),
            cardinality,
        )
    }

    fn stats(nodes: usize) -> Statistics {
        Statistics::from_tables(
            nodes,
            vec![two_col_stats("R", 1000), two_col_stats("S", 100)],
        )
    }

    #[test]
    fn primitives_behave_at_the_edges() {
        assert_eq!(exchange_fraction(1), 0.0);
        assert!(exchange_fraction(4) > 0.7 && exchange_fraction(4) < 0.8);
        assert_eq!(join_output_rows(10.0, 20.0, 0.5), 200.0);
        assert_eq!(join_output_rows(10.0, 20.0, 20.0), 10.0);
        assert_eq!(group_count(0.0, true), 0.0);
        assert_eq!(group_count(1000.0, false), 1.0);
        assert_eq!(group_count(1000.0, true), 100.0);
        assert_eq!(group_count(3.0, true), 1.0);
    }

    #[test]
    fn more_rehashes_cost_more() {
        let cheap = {
            let mut b = PlanBuilder::new();
            let r = b.scan("R", 2, None);
            let s = b.scan("S", 2, None);
            let s_re = b.rehash(s, vec![1]);
            let j = b.hash_join(r, s_re, vec![0], vec![1]);
            let ship = b.ship(j);
            b.output(ship)
        };
        let dear = {
            let mut b = PlanBuilder::new();
            let r = b.scan("R", 2, None);
            let s = b.scan("S", 2, None);
            let r_re = b.rehash(r, vec![0]);
            let s_re = b.rehash(s, vec![1]);
            let j = b.hash_join(r_re, s_re, vec![0], vec![1]);
            let ship = b.ship(j);
            b.output(ship)
        };
        let s = stats(6);
        let cheap_cost = estimate_plan_cost(&cheap, &s).unwrap();
        let dear_cost = estimate_plan_cost(&dear, &s).unwrap();
        assert!(cheap_cost.better_than(&dear_cost));
        assert!(cheap_cost.network_bytes < dear_cost.network_bytes);
    }

    #[test]
    fn selective_scans_ship_fewer_estimated_bytes() {
        let build = |pred: Option<Predicate>| {
            let mut b = PlanBuilder::new();
            let r = b.scan("R", 2, pred);
            let ship = b.ship(r);
            b.output(ship)
        };
        let s = stats(4);
        let all = estimate_plan_cost(&build(None), &s).unwrap();
        let some =
            estimate_plan_cost(&build(Some(Predicate::cmp(1, CmpOp::Eq, 3i64))), &s).unwrap();
        assert!(some.network_bytes < all.network_bytes);
        assert!(all.network_bytes > 0.0);
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let mut b = PlanBuilder::new();
        let r = b.scan("Mystery", 2, None);
        let ship = b.ship(r);
        let plan = b.output(ship);
        assert!(estimate_plan_cost(&plan, &stats(4)).is_err());
    }

    #[test]
    fn single_node_cluster_has_no_network_cost() {
        let mut b = PlanBuilder::new();
        let r = b.scan("R", 2, None);
        let re = b.rehash(r, vec![0]);
        let ship = b.ship(re);
        let plan = b.output(ship);
        let cost = estimate_plan_cost(&plan, &stats(1)).unwrap();
        assert_eq!(cost.network_bytes, 0.0);
        assert!(cost.cpu_rows > 0.0);
    }
}
