//! # orchestra-optimizer
//!
//! Query planning for the ORCHESTRA engine.
//!
//! The paper's prototype "performs query optimization using a
//! System-R-style dynamic programming algorithm" over statistics kept by
//! the relation coordinators.  This crate is the home for that planner:
//! it will translate logical query descriptions into
//! [`orchestra_engine::PhysicalPlan`]s via
//! [`orchestra_engine::PlanBuilder`], choosing join orders, deciding
//! where to place `Rehash` boundaries, pushing sargable predicates into
//! the leaf scans, and electing covering-index scans when only key
//! attributes are referenced — costed against the coordinator
//! cardinalities exposed by
//! [`orchestra_storage::DistributedStorage::relation_cardinality`] and
//! the selectivity estimates of
//! [`orchestra_engine::Predicate::estimated_selectivity`].
//!
//! Today it provides [`estimated_output_cardinality`], the shared
//! cardinality arithmetic the cost model is built around; the ROADMAP
//! tracks the full dynamic-programming planner.

use orchestra_engine::Predicate;

/// Estimate the number of rows surviving `predicate` over an input of
/// `input_cardinality` rows — the elementary step of the cost model.
pub fn estimated_output_cardinality(input_cardinality: usize, predicate: &Predicate) -> usize {
    (input_cardinality as f64 * predicate.estimated_selectivity()).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_engine::CmpOp;

    #[test]
    fn selectivity_scales_cardinality() {
        assert_eq!(estimated_output_cardinality(1000, &Predicate::True), 1000);
        let eq = Predicate::cmp(0, CmpOp::Eq, 7i64);
        assert_eq!(estimated_output_cardinality(1000, &eq), 100);
        assert_eq!(estimated_output_cardinality(0, &eq), 0);
    }
}
