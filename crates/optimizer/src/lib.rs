//! # orchestra-optimizer
//!
//! The System-R-style cost-based optimizer of the ORCHESTRA engine.
//!
//! The paper's prototype "performs query optimization using a
//! System-R-style dynamic programming algorithm" over statistics kept by
//! the relation coordinators.  This crate implements that planner as a
//! logical layer above [`orchestra_engine::PlanBuilder`]:
//!
//! * [`LogicalQuery`] ([`logical`]) — the declarative input: relation
//!   slots, an equi-join graph, conjunctive single-relation predicates,
//!   a select list of scalar expressions over global [`ColRef`]s, and an
//!   optional aggregation;
//! * [`Statistics`] ([`stats`]) — the statistics snapshot a compilation
//!   runs against: per-relation [`TableStats`] pulled from the
//!   coordinator cardinalities
//!   ([`orchestra_storage::DistributedStorage::relation_cardinality`])
//!   and catalog schemas, plus the participant count of the routing
//!   snapshot the query would be disseminated with;
//! * [`cost`] — the network-aware cost model: a plan's cost is its
//!   estimated inter-node traffic in bytes, with rehash and ship volumes
//!   derived from the snapshot's node count and selectivities from
//!   [`TableStats::selectivity`] — histogram- and sketch-informed when
//!   the snapshot carries an adaptive overlay
//!   ([`AdaptiveStats::overlay`]), reproducing the
//!   [`orchestra_engine::Predicate::estimated_selectivity`] constants on
//!   a bare snapshot;
//!   [`estimate_plan_cost`] applies the same model to any already-built
//!   [`orchestra_engine::PhysicalPlan`] so optimizer-chosen and
//!   hand-built plans are comparable under one yardstick;
//! * [`choose_maintenance`] ([`maintenance`]) — the per-epoch
//!   incremental-vs-recompute decision for materialized workload
//!   answers: both refresh strategies priced under the same cost model,
//!   with per-leg what-if statistics sized from the published batch's
//!   signed delta counts;
//! * [`fingerprint()`] ([`mod@fingerprint`]) —
//!   the canonical identity of a [`LogicalQuery`]: slots renumbered by
//!   relation name, predicates flattened and sorted, join edges oriented,
//!   the normal form hashed to a
//!   [`QueryFingerprint`](orchestra_common::QueryFingerprint) — the
//!   identity half of the serving layer's `(fingerprint, epoch)` result
//!   cache key;
//! * [`compile`] ([`planner`]) — the bottom-up dynamic-programming
//!   enumerator over connected join-graph subsets, with sargable
//!   predicates pushed into the leaf scans, covering-index scans elected
//!   when only key attributes are referenced, replicated scans elected
//!   for replicated relations, unreferenced columns pruned early, and
//!   `Rehash` boundaries placed only where an input's partitioning does
//!   not already cover the join keys.  Compilation is deterministic:
//!   the same query over the same statistics always emits the
//!   byte-identical plan.
//!
//! The workload catalogue (`orchestra-workloads`) expresses STBenchmark
//! and the TPC-H-style queries as [`LogicalQuery`]s compiled here, and
//! the experiment harness (`orchestra-bench`) compares the compiled
//! plans against the hand-built oracles in its `plan_quality`
//! experiment.

pub mod adaptive;
pub mod cost;
pub mod fingerprint;
pub mod logical;
pub mod maintenance;
pub mod planner;
pub mod stats;

pub use adaptive::{
    AdaptiveStats, CostChannel, CostFeedback, DriftConfig, DriftMonitor, EquiDepthHistogram,
    KmvSketch,
};
pub use cost::{estimate_plan_cost, estimate_plan_cost_and_rows, PlanCost};
pub use fingerprint::{canonicalize, fingerprint};
pub use logical::{col, Aggregation, ColRef, JoinEdge, LogicalExpr, LogicalQuery};
pub use maintenance::{
    choose_maintenance, compile_delta_legs, compile_delta_legs_with, MaintenanceChoice,
    MaintenanceDecision,
};
pub use planner::{compile, compile_with, PlannerOptions};
pub use stats::{column_width_bytes, Statistics, TableStats};

use orchestra_engine::Predicate;

/// Estimate the number of rows surviving `predicate` over an input of
/// `input_cardinality` rows — the elementary step of the cost model.
///
/// Saturates at the representable extremes instead of rounding through
/// `f64` arithmetic: inputs too large for `f64` to hold exactly come
/// back unchanged under a selectivity of 1.0, and no estimate ever
/// exceeds the input cardinality or `usize::MAX`.
pub fn estimated_output_cardinality(input_cardinality: usize, predicate: &Predicate) -> usize {
    let selectivity = predicate.estimated_selectivity();
    if selectivity >= 1.0 {
        return input_cardinality;
    }
    let estimate = input_cardinality as f64 * selectivity;
    if estimate >= usize::MAX as f64 {
        usize::MAX
    } else {
        (estimate.round() as usize).min(input_cardinality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_engine::CmpOp;

    #[test]
    fn selectivity_scales_cardinality() {
        assert_eq!(estimated_output_cardinality(1000, &Predicate::True), 1000);
        let eq = Predicate::cmp(0, CmpOp::Eq, 7i64);
        assert_eq!(estimated_output_cardinality(1000, &eq), 100);
        assert_eq!(estimated_output_cardinality(0, &eq), 0);
    }

    #[test]
    fn huge_inputs_saturate_instead_of_rounding_through_f64() {
        // usize::MAX is not representable in f64; a selectivity of 1.0
        // must return the input unchanged rather than the rounded 2^64.
        assert_eq!(
            estimated_output_cardinality(usize::MAX, &Predicate::True),
            usize::MAX
        );
        // Near-1.0 selectivities on huge inputs stay within bounds.
        let ne = Predicate::cmp(0, CmpOp::Ne, 7i64);
        let est = estimated_output_cardinality(usize::MAX, &ne);
        assert!(est > usize::MAX / 2);
        assert!(est < usize::MAX);
        // One below a power of two: f64 rounding used to overshoot the
        // input; the estimate is now clamped to it.
        let big = (1usize << 53) + 1;
        assert!(estimated_output_cardinality(big, &Predicate::True) == big);
        assert!(estimated_output_cardinality(big, &ne) <= big);
    }
}
