//! The System-R dynamic-programming planner.
//!
//! [`compile`] translates a [`LogicalQuery`] into a
//! [`orchestra_engine::PhysicalPlan`] in the classic bottom-up style:
//!
//! 1. **Access paths** — every relation slot gets a leaf candidate with
//!    its conjunctive predicates pushed into the scan.  Replicated
//!    relations elect [`orchestra_engine::OperatorKind::ReplicatedScan`]; queries touching
//!    only key attributes elect [`orchestra_engine::OperatorKind::CoveringIndexScan`]
//!    ("bypassing the data storage nodes"); everything else scans the
//!    partitioned store.  Unreferenced columns are pruned immediately.
//! 2. **Join-order search** — dynamic programming over *connected*
//!    subsets of the join graph.  Each subset keeps its best candidate
//!    per physical *partitioning property* (the hash-partitioning
//!    column lists the intermediate satisfies — the distributed analogue
//!    of System-R's interesting orders): a join whose input is already
//!    partitioned on its keys needs no `Rehash`, so a cheaper-but-
//!    mispartitioned candidate cannot blindly dominate.
//! 3. **Rehash placement** — a join inserts a `Rehash` below exactly the
//!    inputs whose partitioning does not cover the join keys; joins with
//!    a replicated input never repartition at all.
//! 4. **Finish** — the select list is lowered onto the chosen layout and
//!    the aggregation is placed by cost: distributed two-phase
//!    (`Partial` everywhere, `Final` at the initiator) when the partial
//!    states are estimated to ship fewer bytes than the raw rows,
//!    single-shot at the initiator otherwise.
//!
//! All bookkeeping uses ordered containers and the enumeration order is
//! fixed, so the same query over the same statistics always compiles to
//! the byte-identical plan.

use crate::cost::{
    exchange_fraction, group_count, join_output_rows, partial_state_bytes, PlanCost,
    NUMERIC_COLUMN_BYTES, TUPLE_OVERHEAD_BYTES,
};
use crate::logical::{col, predicate_columns, ColRef, LogicalExpr, LogicalQuery};
use crate::stats::{Statistics, TableStats};
use orchestra_common::{OrchestraError, Result};
use orchestra_engine::{AggMode, OpId, PhysicalPlan, PlanBuilder, Predicate, ScalarExpr};
use std::collections::BTreeSet;

/// Largest supported number of relation slots (bitmask enumeration).
const MAX_RELATIONS: usize = 12;

/// Which access path a leaf elected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScanKind {
    Distributed,
    CoveringIndex,
    Replicated,
}

/// Per-relation-slot planning state.
struct Leaf {
    kind: ScanKind,
    predicate: Option<Predicate>,
    /// Columns the raw scan emits (full arity, or `key_len` for covering
    /// index scans).
    scan_arity: usize,
    rows: f64,
    cardinality: f64,
}

/// The physical partitioning property of an intermediate result.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Partitioning {
    /// Present in full at every node (replicated leaf).
    Replicated,
    /// Hash-partitioned; each inner list is a column sequence whose
    /// hash determines the row's node (all lists are equivalent).
    Hash(BTreeSet<Vec<ColRef>>),
}

impl Partitioning {
    fn covers(&self, keys: &[ColRef]) -> bool {
        match self {
            Partitioning::Replicated => false,
            Partitioning::Hash(lists) => lists.contains(keys),
        }
    }
}

/// How one join input reaches its join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Exchange {
    /// Already placed correctly (co-partitioned or replicated).
    InPlace,
    /// Repartitioned on the join keys.
    Rehash,
    /// Replicated to every participant; the other side joins in place
    /// under whatever partitioning it has.
    Broadcast,
}

/// One join tree the dynamic program is considering.
#[derive(Clone, Debug)]
enum JoinTree {
    Leaf(usize),
    Join {
        left: Box<JoinTree>,
        right: Box<JoinTree>,
        left_keys: Vec<ColRef>,
        right_keys: Vec<ColRef>,
        left_exchange: Exchange,
        right_exchange: Exchange,
    },
}

/// A memoised plan for one relation subset.
#[derive(Clone, Debug)]
struct Candidate {
    cost: PlanCost,
    rows: f64,
    /// Largest base-relation cardinality underneath (distinct-count proxy).
    max_base: f64,
    partitioning: Partitioning,
    tree: JoinTree,
}

/// How the final aggregation (if any) is placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AggPlacement {
    NoAggregate,
    SingleAtInitiator,
    TwoPhase,
}

/// Optional planner features.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerOptions {
    /// Also enumerate *broadcast joins*: replicate one input to every
    /// participant and join the other in place under whatever
    /// partitioning it already has.  Costed at `rows × (n-1) × bytes`,
    /// this wins when one side is tiny — the structural situation of a
    /// view-maintenance delta leg, which is why leg compilation turns
    /// it on while ad-hoc compilation keeps the classic rehash-only
    /// search space.
    pub broadcast_joins: bool,
}

impl PlannerOptions {
    /// The option set a *calibrated* deployment uses for ad-hoc plans:
    /// broadcast joins join the search space once measured feedback has
    /// validated the cost model's broadcast constants
    /// ([`crate::adaptive::CostFeedback::broadcast_ready`]).  The
    /// `Default` options stay conservative so cold-start compilations
    /// remain reproducible.
    pub fn calibrated() -> PlannerOptions {
        PlannerOptions {
            broadcast_joins: true,
        }
    }
}

/// Compile a logical query into a physical plan under the given
/// statistics snapshot.  Deterministic: the same `(query, stats)` always
/// yields the byte-identical plan.
pub fn compile(query: &LogicalQuery, stats: &Statistics) -> Result<PhysicalPlan> {
    compile_with(query, stats, PlannerOptions::default())
}

/// [`compile`] with explicit [`PlannerOptions`].
pub fn compile_with(
    query: &LogicalQuery,
    stats: &Statistics,
    options: PlannerOptions,
) -> Result<PhysicalPlan> {
    let planner = Planner::new(query, stats, options)?;
    planner.plan()
}

struct Planner<'a> {
    query: &'a LogicalQuery,
    stats: &'a Statistics,
    options: PlannerOptions,
    tables: Vec<&'a TableStats>,
    leaves: Vec<Leaf>,
}

impl<'a> Planner<'a> {
    fn new(
        query: &'a LogicalQuery,
        stats: &'a Statistics,
        options: PlannerOptions,
    ) -> Result<Planner<'a>> {
        let n = query.relations.len();
        if n == 0 {
            return Err(OrchestraError::Planning(
                "a query must read at least one relation".into(),
            ));
        }
        if n > MAX_RELATIONS {
            return Err(OrchestraError::Planning(format!(
                "queries over more than {MAX_RELATIONS} relations are not supported"
            )));
        }
        if query.select.is_empty() {
            return Err(OrchestraError::Planning(
                "a query must select at least one expression".into(),
            ));
        }
        let mut tables = Vec::with_capacity(n);
        for name in &query.relations {
            tables.push(stats.table(name).ok_or_else(|| {
                OrchestraError::Planning(format!("no statistics for relation {name}"))
            })?);
        }
        // A query reading only replicated relations has no partitioned
        // anchor: every participant holds the full answer, so shipping
        // would duplicate it.  Diagnose this up front — join enumeration
        // would otherwise fail with a misleading connectivity error.
        if tables.iter().all(|t| t.replicated) {
            return Err(OrchestraError::Planning(
                "queries reading only replicated relations are not supported (every \
                 participant would ship a full copy of the answer)"
                    .into(),
            ));
        }
        let planner = Planner {
            query,
            stats,
            options,
            tables,
            leaves: Vec::new(),
        };
        planner.validate_references()?;
        let leaves = (0..n)
            .map(|i| planner.elect_leaf(i))
            .collect::<Result<Vec<Leaf>>>()?;
        Ok(Planner { leaves, ..planner })
    }

    fn validate_references(&self) -> Result<()> {
        let n = self.query.relations.len();
        let check_col = |c: ColRef, what: &str| -> Result<()> {
            if c.relation >= n || c.column >= self.tables[c.relation].arity {
                return Err(OrchestraError::Planning(format!(
                    "{what} references column {} of relation slot {}, which does not exist",
                    c.column, c.relation
                )));
            }
            Ok(())
        };
        for (rel, pred) in &self.query.predicates {
            if *rel >= n {
                return Err(OrchestraError::Planning(format!(
                    "predicate references relation slot {rel}, which does not exist"
                )));
            }
            let mut cols = BTreeSet::new();
            predicate_columns(pred, &mut cols);
            for c in cols {
                check_col(col(*rel, c), "a predicate")?;
            }
        }
        for edge in &self.query.joins {
            check_col(edge.left, "a join edge")?;
            check_col(edge.right, "a join edge")?;
            if edge.left.relation == edge.right.relation {
                return Err(OrchestraError::Planning(
                    "a join edge must connect two distinct relation slots".into(),
                ));
            }
        }
        for c in self.query.select_columns() {
            check_col(c, "the select list")?;
        }
        if let Some(agg) = &self.query.aggregation {
            let width = self.query.select.len();
            if agg
                .group_by
                .iter()
                .chain(agg.aggs.iter().map(|(_, c)| c))
                .any(|c| *c >= width)
            {
                return Err(OrchestraError::Planning(
                    "aggregation references a select-list position that does not exist".into(),
                ));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Access-path election
    // ------------------------------------------------------------------

    /// The conjunction of every pushed-down predicate of relation `rel`.
    fn pushed_predicate(&self, rel: usize) -> Option<Predicate> {
        let mut preds: Vec<Predicate> = self
            .query
            .predicates
            .iter()
            .filter(|(r, _)| *r == rel)
            .map(|(_, p)| p.clone())
            .collect();
        match preds.len() {
            0 => None,
            1 => Some(preds.remove(0)),
            _ => Some(Predicate::And(preds)),
        }
    }

    /// The global columns the subtree over `mask` must still carry:
    /// select-list columns of its relations plus its endpoints of join
    /// edges crossing out of `mask`.
    fn needed_columns(&self, mask: usize) -> BTreeSet<ColRef> {
        let mut needed: BTreeSet<ColRef> = self
            .query
            .select_columns()
            .into_iter()
            .filter(|c| mask & (1 << c.relation) != 0)
            .collect();
        for edge in &self.query.joins {
            let lin = mask & (1 << edge.left.relation) != 0;
            let rin = mask & (1 << edge.right.relation) != 0;
            if lin && !rin {
                needed.insert(edge.left);
            }
            if rin && !lin {
                needed.insert(edge.right);
            }
        }
        needed
    }

    /// Estimated wire bytes of one row of the subtree over `mask` (its
    /// pruned layout).
    fn row_bytes(&self, mask: usize) -> f64 {
        TUPLE_OVERHEAD_BYTES
            + self
                .needed_columns(mask)
                .iter()
                .map(|c| self.tables[c.relation].column_widths[c.column])
                .sum::<f64>()
    }

    /// Elect the access path of relation slot `rel`.
    fn elect_leaf(&self, rel: usize) -> Result<Leaf> {
        let table = self.tables[rel];
        let predicate = self.pushed_predicate(rel);
        let mut referenced: BTreeSet<usize> = self
            .needed_columns(1 << rel)
            .into_iter()
            .map(|c| c.column)
            .collect();
        if let Some(p) = &predicate {
            predicate_columns(p, &mut referenced);
        }
        let kind = if table.replicated {
            ScanKind::Replicated
        } else if referenced.iter().all(|c| *c < table.key_len) {
            // Only key attributes are referenced: answer from the index
            // pages alone.
            ScanKind::CoveringIndex
        } else {
            ScanKind::Distributed
        };
        let scan_arity = match kind {
            ScanKind::CoveringIndex => table.key_len,
            _ => table.arity,
        };
        // Histogram-aware when the statistics carry an adaptive overlay;
        // reproduces the textbook constants on a bare snapshot.
        let selectivity = table.selectivity(predicate.as_ref());
        Ok(Leaf {
            kind,
            predicate,
            scan_arity,
            rows: table.cardinality as f64 * selectivity,
            cardinality: table.cardinality as f64,
        })
    }

    fn leaf_candidate(&self, rel: usize) -> Candidate {
        let leaf = &self.leaves[rel];
        let table = self.tables[rel];
        let partitioning = match leaf.kind {
            ScanKind::Replicated => Partitioning::Replicated,
            _ => {
                let keys: Vec<ColRef> = (0..table.key_len).map(|c| col(rel, c)).collect();
                Partitioning::Hash([keys].into_iter().collect())
            }
        };
        Candidate {
            cost: PlanCost {
                network_bytes: 0.0,
                cpu_rows: leaf.cardinality,
            },
            rows: leaf.rows,
            max_base: leaf.cardinality,
            partitioning,
            tree: JoinTree::Leaf(rel),
        }
    }

    // ------------------------------------------------------------------
    // Join-order search
    // ------------------------------------------------------------------

    /// The aligned equi-join key lists between the relations of `a` and
    /// the relations of `b` (empty when the subsets are not connected).
    fn crossing_keys(&self, a: usize, b: usize) -> (Vec<ColRef>, Vec<ColRef>) {
        let mut keys_a = Vec::new();
        let mut keys_b = Vec::new();
        for edge in &self.query.joins {
            let (l, r) = (edge.left, edge.right);
            if a & (1 << l.relation) != 0 && b & (1 << r.relation) != 0 {
                keys_a.push(l);
                keys_b.push(r);
            } else if b & (1 << l.relation) != 0 && a & (1 << r.relation) != 0 {
                keys_a.push(r);
                keys_b.push(l);
            }
        }
        (keys_a, keys_b)
    }

    /// Join candidates `ca` (over `a`) and `cb` (over `b`): the
    /// co-partitioning (rehash) variant, plus — when enabled — the two
    /// broadcast variants.  Empty when the combination is not executable
    /// (two replicated inputs).
    fn join_candidates(
        &self,
        ca: &Candidate,
        a: usize,
        cb: &Candidate,
        b: usize,
        keys_a: &[ColRef],
        keys_b: &[ColRef],
    ) -> Vec<Candidate> {
        let a_replicated = ca.partitioning == Partitioning::Replicated;
        let b_replicated = cb.partitioning == Partitioning::Replicated;
        if a_replicated && b_replicated {
            // Every node holds both inputs in full; the join result would
            // be duplicated at every participant.
            return Vec::new();
        }
        let distinct = ca.max_base.max(cb.max_base);
        let rows = join_output_rows(ca.rows, cb.rows, distinct);
        let base_cost = {
            let mut cost = ca.cost;
            cost.add(cb.cost);
            cost.cpu_rows += rows;
            cost
        };
        let build = |cost: PlanCost,
                     partitioning: Partitioning,
                     left_exchange: Exchange,
                     right_exchange: Exchange| Candidate {
            cost,
            rows,
            max_base: distinct,
            partitioning,
            tree: JoinTree::Join {
                left: Box::new(ca.tree.clone()),
                right: Box::new(cb.tree.clone()),
                left_keys: keys_a.to_vec(),
                right_keys: keys_b.to_vec(),
                left_exchange,
                right_exchange,
            },
        };
        let mut out = Vec::new();

        // Variant 1: co-partitioning.  A replicated input joins in place
        // on either side; two partitioned inputs must be co-partitioned
        // on the join keys.
        {
            let (rehash_a, rehash_b) = if a_replicated || b_replicated {
                (false, false)
            } else {
                (
                    !ca.partitioning.covers(keys_a),
                    !cb.partitioning.covers(keys_b),
                )
            };
            let mut cost = base_cost;
            let frac = exchange_fraction(self.stats.nodes);
            if rehash_a {
                cost.network_bytes += ca.rows * self.row_bytes(a) * frac;
                cost.cpu_rows += ca.rows;
            }
            if rehash_b {
                cost.network_bytes += cb.rows * self.row_bytes(b) * frac;
                cost.cpu_rows += cb.rows;
            }
            // Partitioning of the joined rows: key-value equivalence plus
            // every property of an input that did not move.
            let mut lists: BTreeSet<Vec<ColRef>> = BTreeSet::new();
            if !a_replicated && !b_replicated {
                lists.insert(keys_a.to_vec());
                lists.insert(keys_b.to_vec());
            }
            for (candidate, replicated, rehashed, own_keys, other_keys) in [
                (ca, a_replicated, rehash_a, keys_a, keys_b),
                (cb, b_replicated, rehash_b, keys_b, keys_a),
            ] {
                if replicated || rehashed {
                    continue;
                }
                if let Partitioning::Hash(own) = &candidate.partitioning {
                    lists.extend(own.iter().cloned());
                    if own.contains(own_keys) {
                        lists.insert(other_keys.to_vec());
                    }
                }
            }
            let exchange = |rehashed| {
                if rehashed {
                    Exchange::Rehash
                } else {
                    Exchange::InPlace
                }
            };
            out.push(build(
                cost,
                Partitioning::Hash(lists),
                exchange(rehash_a),
                exchange(rehash_b),
            ));
        }

        // Variants 2 and 3: broadcast one partitioned input into the
        // other partitioned input, which keeps its partitioning.  The
        // stationary side must not be replicated (every node holds it in
        // full, so the output would be duplicated n times).
        if self.options.broadcast_joins && !a_replicated && !b_replicated {
            let remote = self.stats.nodes.saturating_sub(1) as f64;
            for (moving, moving_mask, moving_keys, stationary, stationary_keys, a_moves) in [
                (ca, a, keys_a, cb, keys_b, true),
                (cb, b, keys_b, ca, keys_a, false),
            ] {
                let mut cost = base_cost;
                cost.network_bytes += moving.rows * self.row_bytes(moving_mask) * remote;
                cost.cpu_rows += moving.rows;
                // The output lives where the stationary rows live: it
                // inherits that side's partitioning, and the join-key
                // equivalence when the stationary side was partitioned
                // on its keys.
                let mut lists: BTreeSet<Vec<ColRef>> = BTreeSet::new();
                if let Partitioning::Hash(own) = &stationary.partitioning {
                    lists.extend(own.iter().cloned());
                    if own.contains(stationary_keys) {
                        lists.insert(moving_keys.to_vec());
                    }
                }
                let (left_exchange, right_exchange) = if a_moves {
                    (Exchange::Broadcast, Exchange::InPlace)
                } else {
                    (Exchange::InPlace, Exchange::Broadcast)
                };
                out.push(build(
                    cost,
                    Partitioning::Hash(lists),
                    left_exchange,
                    right_exchange,
                ));
            }
        }
        out
    }

    /// Keep `candidate` for its subset if it is the best plan seen for
    /// its partitioning property (first-seen wins ties — deterministic).
    fn consider(bucket: &mut Vec<Candidate>, candidate: Candidate) {
        match bucket
            .iter_mut()
            .find(|c| c.partitioning == candidate.partitioning)
        {
            Some(existing) => {
                if candidate.cost.better_than(&existing.cost) {
                    *existing = candidate;
                }
            }
            None => bucket.push(candidate),
        }
    }

    /// Run the bottom-up enumeration, returning the candidate set of the
    /// full relation mask.
    fn enumerate(&self) -> Result<Vec<Candidate>> {
        let n = self.query.relations.len();
        let full = (1usize << n) - 1;
        let mut best: Vec<Vec<Candidate>> = vec![Vec::new(); full + 1];
        for rel in 0..n {
            best[1 << rel] = vec![self.leaf_candidate(rel)];
        }
        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            // Enumerate every split of `mask` into complementary subsets.
            let mut a = (mask - 1) & mask;
            while a > 0 {
                let b = mask ^ a;
                if !best[a].is_empty() && !best[b].is_empty() {
                    let (keys_a, keys_b) = self.crossing_keys(a, b);
                    if !keys_a.is_empty() {
                        let mut joined = Vec::new();
                        for ca in &best[a] {
                            for cb in &best[b] {
                                joined.extend(self.join_candidates(ca, a, cb, b, &keys_a, &keys_b));
                            }
                        }
                        for c in joined {
                            Self::consider(&mut best[mask], c);
                        }
                    }
                }
                a = (a - 1) & mask;
            }
        }
        let candidates = std::mem::take(&mut best[full]);
        if candidates.is_empty() {
            return Err(OrchestraError::Planning(
                "the join graph does not connect every relation (cross products are not \
                 supported)"
                    .into(),
            ));
        }
        Ok(candidates)
    }

    // ------------------------------------------------------------------
    // Finish: select-list lowering and aggregation placement
    // ------------------------------------------------------------------

    /// Estimated wire bytes of one select-list value.
    fn expr_bytes(&self, expr: &LogicalExpr) -> f64 {
        match expr {
            LogicalExpr::Column(c) => self.tables[c.relation].column_widths[c.column],
            LogicalExpr::Literal(v) => v.serialized_size() as f64,
            LogicalExpr::Add(..) | LogicalExpr::Sub(..) | LogicalExpr::Mul(..) => {
                NUMERIC_COLUMN_BYTES
            }
            LogicalExpr::Concat(parts) => parts.iter().map(|p| self.expr_bytes(p)).sum(),
        }
    }

    /// The network cost of finishing `candidate` (select, ship,
    /// aggregate), and the aggregation placement that achieves it.
    fn finish_cost(&self, candidate: &Candidate) -> (PlanCost, AggPlacement) {
        let frac = exchange_fraction(self.stats.nodes);
        let select_bytes = TUPLE_OVERHEAD_BYTES
            + self
                .query
                .select
                .iter()
                .map(|e| self.expr_bytes(e))
                .sum::<f64>();
        let ship_all = PlanCost {
            network_bytes: candidate.rows * select_bytes * frac,
            cpu_rows: candidate.rows,
        };
        let Some(agg) = &self.query.aggregation else {
            return (ship_all, AggPlacement::NoAggregate);
        };
        let grouped = !agg.group_by.is_empty();
        let groups = group_count(candidate.rows, grouped);
        let partial_rows = candidate.rows.min(groups * self.stats.nodes as f64);
        let partial_bytes = TUPLE_OVERHEAD_BYTES
            + agg
                .group_by
                .iter()
                .map(|i| self.expr_bytes(&self.query.select[*i]))
                .sum::<f64>()
            + partial_state_bytes(&agg.aggs);
        let two_phase = PlanCost {
            network_bytes: partial_rows * partial_bytes * frac,
            cpu_rows: candidate.rows + partial_rows,
        };
        if two_phase.better_than(&ship_all) {
            (two_phase, AggPlacement::TwoPhase)
        } else {
            (ship_all, AggPlacement::SingleAtInitiator)
        }
    }

    // ------------------------------------------------------------------
    // Physical-plan emission
    // ------------------------------------------------------------------

    fn tree_mask(tree: &JoinTree) -> usize {
        match tree {
            JoinTree::Leaf(rel) => 1 << rel,
            JoinTree::Join { left, right, .. } => Self::tree_mask(left) | Self::tree_mask(right),
        }
    }

    /// The pruned output layout of the subtree over `mask`, given the
    /// unpruned layout `raw`.  Falls back to the first raw column when
    /// nothing downstream needs any (so rows still flow).
    fn pruned_layout(&self, mask: usize, raw: Vec<ColRef>) -> Vec<ColRef> {
        let needed = self.needed_columns(mask);
        let kept: Vec<ColRef> = raw.iter().copied().filter(|c| needed.contains(c)).collect();
        if kept.is_empty() {
            vec![raw[0]]
        } else {
            kept
        }
    }

    /// Emit the subtree into `builder`, returning the root operator and
    /// its output layout (global column per output position).
    fn emit(&self, tree: &JoinTree, builder: &mut PlanBuilder) -> (OpId, Vec<ColRef>) {
        match tree {
            JoinTree::Leaf(rel) => {
                let leaf = &self.leaves[*rel];
                let name = self.query.relations[*rel].clone();
                let op = match leaf.kind {
                    ScanKind::Distributed => {
                        builder.scan(name, leaf.scan_arity, leaf.predicate.clone())
                    }
                    ScanKind::CoveringIndex => {
                        builder.covering_index_scan(name, leaf.scan_arity, leaf.predicate.clone())
                    }
                    ScanKind::Replicated => {
                        builder.replicated_scan(name, leaf.scan_arity, leaf.predicate.clone())
                    }
                };
                let raw: Vec<ColRef> = (0..leaf.scan_arity).map(|c| col(*rel, c)).collect();
                let layout = self.pruned_layout(1 << rel, raw.clone());
                if layout.len() < raw.len() {
                    let columns = layout.iter().map(|c| c.column).collect();
                    (builder.project(op, columns), layout)
                } else {
                    (op, layout)
                }
            }
            JoinTree::Join {
                left,
                right,
                left_keys,
                right_keys,
                left_exchange,
                right_exchange,
            } => {
                let (mut l_op, l_layout) = self.emit(left, builder);
                let (mut r_op, r_layout) = self.emit(right, builder);
                let position = |layout: &[ColRef], key: &ColRef| {
                    layout
                        .iter()
                        .position(|c| c == key)
                        .expect("join keys survive pruning")
                };
                let l_keys: Vec<usize> = left_keys.iter().map(|k| position(&l_layout, k)).collect();
                let r_keys: Vec<usize> =
                    right_keys.iter().map(|k| position(&r_layout, k)).collect();
                match left_exchange {
                    Exchange::Rehash => l_op = builder.rehash(l_op, l_keys.clone()),
                    Exchange::Broadcast => l_op = builder.broadcast(l_op),
                    Exchange::InPlace => {}
                }
                match right_exchange {
                    Exchange::Rehash => r_op = builder.rehash(r_op, r_keys.clone()),
                    Exchange::Broadcast => r_op = builder.broadcast(r_op),
                    Exchange::InPlace => {}
                }
                let join = builder.hash_join(l_op, r_op, l_keys, r_keys);
                let mut raw = l_layout;
                raw.extend(r_layout);
                let mask = Self::tree_mask(tree);
                let layout = self.pruned_layout(mask, raw.clone());
                if layout.len() < raw.len() {
                    let columns = layout
                        .iter()
                        .map(|c| raw.iter().position(|r| r == c).expect("kept columns exist"))
                        .collect();
                    (builder.project(join, columns), layout)
                } else {
                    (join, layout)
                }
            }
        }
    }

    /// Lower the select list above `(op, layout)`: nothing for an
    /// identity list, a `Project` when every expression is a bare column,
    /// a `ComputeFunction` otherwise.
    fn emit_select(&self, builder: &mut PlanBuilder, op: OpId, layout: &[ColRef]) -> Result<OpId> {
        let lowered: Vec<ScalarExpr> = self
            .query
            .select
            .iter()
            .map(|e| {
                e.lower(layout).ok_or_else(|| {
                    OrchestraError::Planning(
                        "the select list references a column the chosen layout lost".into(),
                    )
                })
            })
            .collect::<Result<_>>()?;
        let identity = lowered.len() == layout.len()
            && lowered
                .iter()
                .enumerate()
                .all(|(i, e)| *e == ScalarExpr::Column(i));
        if identity {
            return Ok(op);
        }
        let columns: Option<Vec<usize>> = lowered
            .iter()
            .map(|e| match e {
                ScalarExpr::Column(i) => Some(*i),
                _ => None,
            })
            .collect();
        Ok(match columns {
            Some(columns) => builder.project(op, columns),
            None => builder.compute(op, lowered),
        })
    }

    fn plan(&self) -> Result<PhysicalPlan> {
        let candidates = self.enumerate()?;
        let mut chosen: Option<(PlanCost, &Candidate, AggPlacement)> = None;
        for candidate in &candidates {
            if candidate.partitioning == Partitioning::Replicated {
                // Every node would ship its full copy of the answer.
                continue;
            }
            let (finish, placement) = self.finish_cost(candidate);
            let mut total = candidate.cost;
            total.add(finish);
            let better = match &chosen {
                Some((best_total, _, _)) => total.better_than(best_total),
                None => true,
            };
            if better {
                chosen = Some((total, candidate, placement));
            }
        }
        let Some((_, candidate, placement)) = chosen else {
            return Err(OrchestraError::Planning(
                "queries reading only replicated relations are not supported (every \
                 participant would ship a full copy of the answer)"
                    .into(),
            ));
        };

        let mut builder = PlanBuilder::new();
        let (joined, layout) = self.emit(&candidate.tree, &mut builder);
        let selected = self.emit_select(&mut builder, joined, &layout)?;
        let root = match (placement, &self.query.aggregation) {
            (AggPlacement::NoAggregate, _) => builder.ship(selected),
            (AggPlacement::SingleAtInitiator, Some(agg)) => {
                let shipped = builder.ship(selected);
                builder.aggregate(
                    shipped,
                    agg.group_by.clone(),
                    agg.aggs.clone(),
                    AggMode::Single,
                )
            }
            (AggPlacement::TwoPhase, Some(agg)) => {
                builder.two_phase_aggregate(selected, agg.group_by.clone(), agg.aggs.clone())
            }
            (_, None) => unreachable!("aggregation placements require an aggregation"),
        };
        Ok(builder.output(root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalExpr;
    use crate::stats::TableStats;
    use orchestra_common::{ColumnType, Relation, Schema};
    use orchestra_engine::{AggFunc, CmpOp, OperatorKind};

    fn table(name: &str, columns: Vec<(&str, ColumnType)>, cardinality: usize) -> TableStats {
        TableStats::from_relation(
            &Relation::partitioned(name, Schema::keyed_on_first(columns)),
            cardinality,
        )
    }

    fn replicated_table(
        name: &str,
        columns: Vec<(&str, ColumnType)>,
        cardinality: usize,
    ) -> TableStats {
        TableStats::from_relation(
            &Relation::replicated(name, Schema::keyed_on_first(columns)),
            cardinality,
        )
    }

    fn three_way_stats() -> Statistics {
        Statistics::from_tables(
            6,
            vec![
                table(
                    "customer",
                    vec![("c_custkey", ColumnType::Int), ("c_seg", ColumnType::Str)],
                    40,
                ),
                table(
                    "orders",
                    vec![
                        ("o_orderkey", ColumnType::Int),
                        ("o_custkey", ColumnType::Int),
                        ("o_date", ColumnType::Int),
                    ],
                    100,
                ),
                table(
                    "lineitem",
                    vec![
                        ("l_id", ColumnType::Int),
                        ("l_orderkey", ColumnType::Int),
                        ("l_price", ColumnType::Int),
                    ],
                    400,
                ),
            ],
        )
    }

    fn three_way_query() -> LogicalQuery {
        let mut q = LogicalQuery::new();
        let c = q.relation("customer");
        let o = q.relation("orders");
        let l = q.relation("lineitem");
        q.filter(c, Predicate::cmp(1, CmpOp::Eq, "BUILDING"))
            .filter(o, Predicate::cmp(2, CmpOp::Lt, 1200i64))
            .join(col(c, 0), col(o, 1))
            .join(col(o, 0), col(l, 1))
            .select(vec![
                LogicalExpr::col(o, 0),
                LogicalExpr::col(o, 2),
                LogicalExpr::col(l, 2),
            ])
            .aggregate(vec![0, 1], vec![(AggFunc::Sum, 2)]);
        q
    }

    #[test]
    fn compilation_is_deterministic_across_repeated_runs() {
        // Same LogicalQuery + same stats => byte-identical rendering,
        // every time.
        let stats = three_way_stats();
        let reference = compile(&three_way_query(), &stats).unwrap().render();
        for _ in 0..5 {
            let again = compile(&three_way_query(), &stats).unwrap().render();
            assert_eq!(reference, again, "planner must be deterministic");
        }
    }

    #[test]
    fn predicates_are_pushed_into_the_leaf_scans() {
        let plan = compile(&three_way_query(), &three_way_stats()).unwrap();
        let scan_predicates: Vec<bool> = plan
            .operators()
            .iter()
            .filter_map(|o| match &o.kind {
                OperatorKind::DistributedScan {
                    relation,
                    predicate,
                } => (relation != "lineitem").then_some(predicate.is_some()),
                _ => None,
            })
            .collect();
        assert_eq!(scan_predicates.len(), 2, "customer and orders scans");
        assert!(
            scan_predicates.iter().all(|p| *p),
            "both filtered relations must scan with their predicate pushed down"
        );
        // No residual Select operators remain above the scans.
        assert!(!plan
            .operators()
            .iter()
            .any(|o| matches!(o.kind, OperatorKind::Select { .. })));
    }

    #[test]
    fn partitioning_aware_rehash_placement_saves_exchanges() {
        // customer and orders are partitioned on their keys; at least one
        // join side can consume an existing partitioning, so fewer than
        // 2-per-join rehashes are needed.
        let plan = compile(&three_way_query(), &three_way_stats()).unwrap();
        assert_eq!(plan.scans().len(), 3);
        assert!(
            plan.rehash_count() <= 3,
            "two joins must not need four rehashes:\n{}",
            plan.render()
        );
        // Unreferenced columns are pruned before the first exchange.
        assert!(plan
            .operators()
            .iter()
            .any(|o| matches!(o.kind, OperatorKind::Project { .. })));
    }

    #[test]
    fn covering_index_scan_is_elected_for_key_only_queries() {
        let stats = Statistics::from_tables(
            4,
            vec![table(
                "events",
                vec![("id", ColumnType::Int), ("payload", ColumnType::Str)],
                1000,
            )],
        );
        let mut q = LogicalQuery::new();
        let e = q.relation("events");
        q.filter(e, Predicate::cmp(0, CmpOp::Lt, 500i64))
            .select(vec![LogicalExpr::col(e, 0)]);
        let plan = compile(&q, &stats).unwrap();
        assert!(
            plan.render().contains("CoveringIndexScan"),
            "key-only query must bypass the data storage nodes:\n{}",
            plan.render()
        );
        // Referencing a non-key column falls back to a distributed scan.
        let mut q2 = LogicalQuery::new();
        let e2 = q2.relation("events");
        q2.select(vec![LogicalExpr::col(e2, 0), LogicalExpr::col(e2, 1)]);
        let plan2 = compile(&q2, &stats).unwrap();
        assert!(plan2.render().contains("DistributedScan"));
        assert!(!plan2.render().contains("CoveringIndexScan"));
    }

    #[test]
    fn replicated_scan_is_elected_and_never_rehashes() {
        let stats = Statistics::from_tables(
            5,
            vec![
                table(
                    "orders",
                    vec![
                        ("o_orderkey", ColumnType::Int),
                        ("o_nation", ColumnType::Int),
                    ],
                    500,
                ),
                replicated_table(
                    "nation",
                    vec![("n_key", ColumnType::Int), ("n_name", ColumnType::Str)],
                    25,
                ),
            ],
        );
        let mut q = LogicalQuery::new();
        let o = q.relation("orders");
        let n = q.relation("nation");
        q.join(col(o, 1), col(n, 0))
            .select(vec![LogicalExpr::col(o, 0), LogicalExpr::col(n, 1)]);
        let plan = compile(&q, &stats).unwrap();
        assert!(plan.render().contains("ReplicatedScan"));
        assert_eq!(
            plan.rehash_count(),
            0,
            "a replicated build side joins in place:\n{}",
            plan.render()
        );
    }

    #[test]
    fn ungrouped_aggregation_prefers_two_phase_partials() {
        let stats = Statistics::from_tables(
            6,
            vec![table(
                "lineitem",
                vec![("l_id", ColumnType::Int), ("l_price", ColumnType::Int)],
                1000,
            )],
        );
        let mut q = LogicalQuery::new();
        let l = q.relation("lineitem");
        q.select(vec![LogicalExpr::col(l, 1)])
            .aggregate(vec![], vec![(AggFunc::Sum, 0)]);
        let plan = compile(&q, &stats).unwrap();
        let modes: Vec<AggMode> = plan
            .operators()
            .iter()
            .filter_map(|o| match &o.kind {
                OperatorKind::Aggregate { mode, .. } => Some(*mode),
                _ => None,
            })
            .collect();
        assert_eq!(
            modes,
            vec![AggMode::Partial, AggMode::Final],
            "shipping one partial row per node beats shipping every row"
        );
    }

    #[test]
    fn compiled_covering_and_replicated_plans_execute_correctly() {
        use orchestra_common::{NodeId, Tuple, Value};
        use orchestra_engine::{EngineConfig, QueryExecutor};
        use orchestra_storage::{DistributedStorage, StorageConfig, UpdateBatch};
        use orchestra_substrate::{AllocationScheme, RoutingTable};

        // A real deployed cluster: a partitioned fact relation and a
        // replicated dimension.
        let routing = RoutingTable::build(
            &(0..4).map(NodeId).collect::<Vec<_>>(),
            AllocationScheme::Balanced,
            3,
        );
        let mut storage = DistributedStorage::new(routing, StorageConfig::default());
        storage.register_relation(Relation::partitioned(
            "events",
            Schema::keyed_on_first(vec![
                ("id", ColumnType::Int),
                ("nation", ColumnType::Int),
                ("payload", ColumnType::Str),
            ]),
        ));
        storage.register_relation(Relation::replicated(
            "nation",
            Schema::keyed_on_first(vec![
                ("n_key", ColumnType::Int),
                ("n_name", ColumnType::Str),
            ]),
        ));
        let mut batch = UpdateBatch::new();
        for i in 0..40i64 {
            batch.insert(
                "events",
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(i % 3),
                    Value::str(format!("p{i}")),
                ]),
            );
        }
        for n in 0..3i64 {
            batch.insert(
                "nation",
                Tuple::new(vec![Value::Int(n), Value::str(format!("nation{n}"))]),
            );
        }
        let epoch = storage.publish(&batch).unwrap();
        let stats = Statistics::collect(&storage, epoch);

        // Key-only query: compiles to a covering index scan and returns
        // exactly the matching keys.
        let mut keys = LogicalQuery::new();
        let e = keys.relation("events");
        keys.filter(e, Predicate::cmp(0, CmpOp::Lt, 7i64))
            .select(vec![LogicalExpr::col(e, 0)]);
        let plan = compile(&keys, &stats).unwrap();
        assert!(plan.render().contains("CoveringIndexScan"));
        let report = QueryExecutor::new(&storage, EngineConfig::default())
            .execute(&plan, epoch, NodeId(0))
            .unwrap();
        let expected: Vec<Tuple> = (0..7).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        assert_eq!(report.rows, expected);

        // The elected covering plan also survives a mid-query failure
        // under both recovery strategies.
        assert_recovers_exactly(&storage, &plan, epoch, &expected);

        // Partitioned ⋈ replicated: joins in place, no rehash, exact
        // answer.
        let mut q = LogicalQuery::new();
        let e = q.relation("events");
        let n = q.relation("nation");
        q.filter(e, Predicate::cmp(0, CmpOp::Lt, 5i64))
            .join(col(e, 1), col(n, 0))
            .select(vec![LogicalExpr::col(e, 0), LogicalExpr::col(n, 1)]);
        let plan = compile(&q, &stats).unwrap();
        assert_eq!(plan.rehash_count(), 0);
        let report = QueryExecutor::new(&storage, EngineConfig::default())
            .execute(&plan, epoch, NodeId(0))
            .unwrap();
        let expected: Vec<Tuple> = (0..5)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::str(format!("nation{}", i % 3))]))
            .collect();
        assert_eq!(report.rows, expected);
        assert_recovers_exactly(&storage, &plan, epoch, &expected);
    }

    /// Kill a non-initiator node halfway through the plan's failure-free
    /// run and assert both Section V-D strategies reproduce `expected`.
    fn assert_recovers_exactly(
        storage: &orchestra_storage::DistributedStorage,
        plan: &PhysicalPlan,
        epoch: orchestra_common::Epoch,
        expected: &[orchestra_common::Tuple],
    ) {
        use orchestra_common::NodeId;
        use orchestra_engine::{EngineConfig, FailureSpec, QueryExecutor, RecoveryStrategy};

        let baseline = QueryExecutor::new(storage, EngineConfig::default())
            .execute(plan, epoch, NodeId(0))
            .unwrap();
        let halfway = orchestra_simnet::SimTime::from_micros(baseline.running_time.as_micros() / 2);
        let failure = FailureSpec::at_time(NodeId(2), halfway);
        for strategy in [RecoveryStrategy::Restart, RecoveryStrategy::Incremental] {
            let config = EngineConfig {
                strategy,
                ..EngineConfig::default()
            };
            let report = QueryExecutor::new(storage, config)
                .execute_with_failure(plan, epoch, NodeId(0), failure)
                .unwrap();
            assert_eq!(
                report.rows,
                expected,
                "{strategy:?} must reproduce the answer for:\n{}",
                plan.render()
            );
        }
    }

    #[test]
    fn replicated_only_queries_are_diagnosed_precisely() {
        // Even with a valid connecting join edge, a query over nothing
        // but replicated relations must fail with the replicated-only
        // diagnosis, not a misleading connectivity error.
        let stats = Statistics::from_tables(
            4,
            vec![
                replicated_table("nation", vec![("n_key", ColumnType::Int)], 25),
                replicated_table(
                    "region",
                    vec![("r_key", ColumnType::Int), ("r_nation", ColumnType::Int)],
                    5,
                ),
            ],
        );
        let mut q = LogicalQuery::new();
        let n = q.relation("nation");
        let r = q.relation("region");
        q.join(col(n, 0), col(r, 1))
            .select(vec![LogicalExpr::col(n, 0), LogicalExpr::col(r, 0)]);
        let err = compile(&q, &stats).unwrap_err();
        assert!(err.message().contains("only replicated relations"), "{err}");
    }

    #[test]
    fn disconnected_join_graphs_are_rejected() {
        let stats = Statistics::from_tables(
            4,
            vec![
                table("a", vec![("k", ColumnType::Int)], 10),
                table("b", vec![("k", ColumnType::Int)], 10),
            ],
        );
        let mut q = LogicalQuery::new();
        let a = q.relation("a");
        let b = q.relation("b");
        q.select(vec![LogicalExpr::col(a, 0), LogicalExpr::col(b, 0)]);
        let err = compile(&q, &stats).unwrap_err();
        assert!(err.message().contains("cross products"), "{err}");
    }

    #[test]
    fn invalid_references_are_rejected_with_planning_errors() {
        let stats = Statistics::from_tables(4, vec![table("a", vec![("k", ColumnType::Int)], 10)]);
        // Unknown relation.
        let mut q = LogicalQuery::new();
        q.relation("mystery");
        q.select(vec![LogicalExpr::col(0, 0)]);
        assert!(compile(&q, &stats).is_err());
        // Out-of-range select column.
        let mut q = LogicalQuery::new();
        let a = q.relation("a");
        q.select(vec![LogicalExpr::col(a, 7)]);
        assert!(compile(&q, &stats).is_err());
        // Empty select list.
        let mut q = LogicalQuery::new();
        q.relation("a");
        assert!(compile(&q, &stats).is_err());
        // Aggregation over a missing select position.
        let mut q = LogicalQuery::new();
        let a = q.relation("a");
        q.select(vec![LogicalExpr::col(a, 0)])
            .aggregate(vec![0], vec![(AggFunc::Sum, 9)]);
        assert!(compile(&q, &stats).is_err());
    }
}
