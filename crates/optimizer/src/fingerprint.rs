//! Canonical logical-query fingerprints.
//!
//! [`fingerprint`] names a [`LogicalQuery`] by the SHA-1 digest of its
//! *canonical form*, so that trivially equivalent spellings of the same
//! query collide on one [`QueryFingerprint`] — the identity half of the
//! serving layer's `(fingerprint, epoch)` result-cache key.  Two queries
//! that differ only in
//!
//! * the order relation slots were added (slots are renumbered by
//!   relation name, same-name slots keeping their relative order so
//!   self-joins stay distinguishable),
//! * the orientation of equi-join edges (`a = b` vs `b = a`) or the
//!   order of the join list,
//! * the order of conjunctive predicates, nesting of `And`s, the order
//!   of `Or` branches, interspersed `True` conjuncts, or the orientation
//!   of symmetric column comparisons (`c1 = c2` vs `c2 = c1`),
//!
//! fingerprint identically.  Queries that differ semantically — another
//! constant, column, aggregate or select expression — fingerprint
//! differently (up to SHA-1 collisions).  Canonicalization is purely
//! syntactic: it never consults statistics, so the fingerprint is stable
//! across epochs — exactly what lets immutable published epochs carry
//! the whole invalidation story.

use crate::logical::{JoinEdge, LogicalQuery};
use orchestra_common::QueryFingerprint;
use orchestra_engine::{CmpOp, Predicate};
use std::fmt::Write as _;

/// The fingerprint of `query`'s canonical form.
pub fn fingerprint(query: &LogicalQuery) -> QueryFingerprint {
    let canonical = canonicalize(query);
    // The canonical struct's debug rendering is a deterministic byte
    // encoding: field order is fixed by the type and every constituent
    // (names, ints, Values) renders reproducibly.
    let mut encoding = String::new();
    write!(encoding, "{canonical:?}").expect("writing to a String cannot fail");
    QueryFingerprint::of_bytes(encoding.as_bytes())
}

/// Rewrite `query` into its canonical form: slots renumbered by name,
/// predicates flattened/normalized/sorted, join edges oriented and
/// sorted.  Exposed for tests; [`fingerprint`] is the consumer.
pub fn canonicalize(query: &LogicalQuery) -> LogicalQuery {
    // Renumber relation slots: sort by (name, original index).  The
    // original index tie-break keeps same-name slots (self-joins) in
    // their relative order, so the mapping is deterministic.
    let mut by_name: Vec<usize> = (0..query.relations.len()).collect();
    by_name.sort_by(|&a, &b| query.relations[a].cmp(&query.relations[b]).then(a.cmp(&b)));
    // old slot -> new slot
    let mut remap = vec![0usize; query.relations.len()];
    for (new, &old) in by_name.iter().enumerate() {
        remap[old] = new;
    }

    let mut out = LogicalQuery::new();
    for &old in &by_name {
        out.relations.push(query.relations[old].clone());
    }

    // Per-relation conjuncts: flatten Ands, drop Trues, normalize each
    // conjunct, then sort by (new slot, canonical encoding).
    let mut predicates: Vec<(usize, Predicate)> = Vec::new();
    for (slot, pred) in &query.predicates {
        let mut conjuncts = Vec::new();
        flatten_conjuncts(pred, &mut conjuncts);
        for c in conjuncts {
            predicates.push((remap[*slot], c));
        }
    }
    predicates.sort_by(|(sa, pa), (sb, pb)| {
        sa.cmp(sb)
            .then_with(|| format!("{pa:?}").cmp(&format!("{pb:?}")))
    });
    out.predicates = predicates;

    // Join edges: remap slots, orient each edge so the smaller ColRef is
    // on the left (equi-joins are symmetric), sort, dedupe.
    let mut joins: Vec<JoinEdge> = query
        .joins
        .iter()
        .map(|e| {
            let l = crate::logical::col(remap[e.left.relation], e.left.column);
            let r = crate::logical::col(remap[e.right.relation], e.right.column);
            if l <= r {
                JoinEdge { left: l, right: r }
            } else {
                JoinEdge { left: r, right: l }
            }
        })
        .collect();
    joins.sort_by_key(|e| (e.left, e.right));
    joins.dedup();
    out.joins = joins;

    // The select list and aggregation are positional (output shape):
    // order is semantic, so only slot references are remapped.
    out.select = query.select.iter().map(|e| remap_expr(e, &remap)).collect();
    out.aggregation = query.aggregation.clone();
    out
}

fn remap_expr(expr: &crate::logical::LogicalExpr, remap: &[usize]) -> crate::logical::LogicalExpr {
    use crate::logical::LogicalExpr as E;
    match expr {
        E::Column(c) => E::Column(crate::logical::col(remap[c.relation], c.column)),
        E::Literal(v) => E::Literal(v.clone()),
        E::Add(a, b) => E::Add(
            Box::new(remap_expr(a, remap)),
            Box::new(remap_expr(b, remap)),
        ),
        E::Sub(a, b) => E::Sub(
            Box::new(remap_expr(a, remap)),
            Box::new(remap_expr(b, remap)),
        ),
        E::Mul(a, b) => E::Mul(
            Box::new(remap_expr(a, remap)),
            Box::new(remap_expr(b, remap)),
        ),
        E::Concat(parts) => E::Concat(parts.iter().map(|p| remap_expr(p, remap)).collect()),
    }
}

/// Flatten nested `And`s into a conjunct list, dropping `True` and
/// normalizing each leaf.
fn flatten_conjuncts(pred: &Predicate, out: &mut Vec<Predicate>) {
    match pred {
        Predicate::True => {}
        Predicate::And(ps) => {
            for p in ps {
                flatten_conjuncts(p, out);
            }
        }
        other => out.push(normalize_predicate(other)),
    }
}

/// Normalize one predicate tree: orient symmetric column comparisons,
/// sort `Or` branches, and recurse — without flattening (only the
/// top-level conjunction is flattened, by [`flatten_conjuncts`]).
fn normalize_predicate(pred: &Predicate) -> Predicate {
    match pred {
        Predicate::CompareColumns { left, op, right } if matches!(op, CmpOp::Eq | CmpOp::Ne) => {
            let (l, r) = if left <= right {
                (*left, *right)
            } else {
                (*right, *left)
            };
            Predicate::CompareColumns {
                left: l,
                op: *op,
                right: r,
            }
        }
        Predicate::And(ps) => {
            let mut inner = Vec::new();
            for p in ps {
                flatten_conjuncts(p, &mut inner);
            }
            inner.sort_by_key(|p| format!("{p:?}"));
            match inner.len() {
                0 => Predicate::True,
                1 => inner.pop().expect("one element"),
                _ => Predicate::And(inner),
            }
        }
        Predicate::Or(ps) => {
            let mut branches: Vec<Predicate> = ps.iter().map(normalize_predicate).collect();
            branches.sort_by_key(|p| format!("{p:?}"));
            Predicate::Or(branches)
        }
        Predicate::Not(p) => Predicate::Not(Box::new(normalize_predicate(p))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{col, LogicalExpr};
    use orchestra_engine::AggFunc;

    /// Q3-shaped three-relation join, built with slots in `order`.
    fn three_way(order: [usize; 3]) -> LogicalQuery {
        // Conceptual relations: 0 = customer, 1 = orders, 2 = lineitem.
        let names = ["customer", "orders", "lineitem"];
        let mut q = LogicalQuery::new();
        let mut slot = [usize::MAX; 3];
        for &i in &order {
            slot[i] = q.relation(names[i]);
        }
        q.filter(slot[0], Predicate::cmp(2, CmpOp::Eq, 5i64));
        q.join(col(slot[0], 0), col(slot[1], 1))
            .join(col(slot[2], 0), col(slot[1], 0))
            .select(vec![
                LogicalExpr::col(slot[1], 0),
                LogicalExpr::col(slot[2], 3),
            ])
            .aggregate(vec![0], vec![(AggFunc::Sum, 1)]);
        q
    }

    #[test]
    fn slot_order_and_edge_orientation_do_not_matter() {
        let a = fingerprint(&three_way([0, 1, 2]));
        let b = fingerprint(&three_way([2, 0, 1]));
        let c = fingerprint(&three_way([1, 2, 0]));
        assert_eq!(a, b);
        assert_eq!(a, c);

        // Flipping an edge changes nothing either.
        let mut flipped = three_way([0, 1, 2]);
        for e in &mut flipped.joins {
            std::mem::swap(&mut e.left, &mut e.right);
        }
        assert_eq!(fingerprint(&flipped), a);
    }

    #[test]
    fn predicate_shuffles_and_true_conjuncts_collide() {
        let base = || {
            let mut q = LogicalQuery::new();
            let r = q.relation("lineitem");
            q.select(vec![LogicalExpr::col(r, 0)]);
            (q, r)
        };
        let (mut a, r) = base();
        a.filter(r, Predicate::cmp(1, CmpOp::Lt, 10i64))
            .filter(r, Predicate::cmp(2, CmpOp::Ge, 3i64));
        let (mut b, r) = base();
        // Same conjuncts: one And, reversed order, plus a True.
        b.filter(
            r,
            Predicate::And(vec![
                Predicate::cmp(2, CmpOp::Ge, 3i64),
                Predicate::True,
                Predicate::cmp(1, CmpOp::Lt, 10i64),
            ]),
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));

        // Symmetric column comparison orientation is canonical too.
        let (mut c, r) = base();
        c.filter(
            r,
            Predicate::CompareColumns {
                left: 3,
                op: CmpOp::Eq,
                right: 1,
            },
        );
        let (mut d, r) = base();
        d.filter(
            r,
            Predicate::CompareColumns {
                left: 1,
                op: CmpOp::Eq,
                right: 3,
            },
        );
        assert_eq!(fingerprint(&c), fingerprint(&d));
        // An asymmetric comparison must NOT be flipped.
        let (mut e, r) = base();
        e.filter(
            r,
            Predicate::CompareColumns {
                left: 3,
                op: CmpOp::Lt,
                right: 1,
            },
        );
        let (mut f, r) = base();
        f.filter(
            r,
            Predicate::CompareColumns {
                left: 1,
                op: CmpOp::Lt,
                right: 3,
            },
        );
        assert_ne!(fingerprint(&e), fingerprint(&f));
    }

    #[test]
    fn semantic_differences_change_the_fingerprint() {
        let q = three_way([0, 1, 2]);
        let base = fingerprint(&q);

        let mut other_constant = q.clone();
        other_constant.predicates[0].1 = Predicate::cmp(2, CmpOp::Eq, 6i64);
        assert_ne!(fingerprint(&other_constant), base);

        let mut other_agg = q.clone();
        other_agg.aggregation.as_mut().unwrap().aggs[0].0 = AggFunc::Min;
        assert_ne!(fingerprint(&other_agg), base);

        let mut other_select = q.clone();
        other_select.select.reverse(); // output column order is semantic
        assert_ne!(fingerprint(&other_select), base);

        let mut fewer_joins = q.clone();
        fewer_joins.joins.pop();
        assert_ne!(fingerprint(&fewer_joins), base);
    }

    #[test]
    fn self_joins_keep_their_slots_distinguishable() {
        let mut a = LogicalQuery::new();
        let r1 = a.relation("edges");
        let r2 = a.relation("edges");
        a.join(col(r1, 1), col(r2, 0))
            .filter(r1, Predicate::cmp(0, CmpOp::Eq, 1i64))
            .select(vec![LogicalExpr::col(r2, 1)]);

        // The same self-join but with the filter on the *other* slot is a
        // different query.
        let mut b = LogicalQuery::new();
        let r1 = b.relation("edges");
        let r2 = b.relation("edges");
        b.join(col(r1, 1), col(r2, 0))
            .filter(r2, Predicate::cmp(0, CmpOp::Eq, 1i64))
            .select(vec![LogicalExpr::col(r2, 1)]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn prefix_sharing_equivalence_classes_are_complete_and_sound() {
        // The view registry executes ONE shared session for colliding
        // plans, so the equivalence classes must be complete (every
        // trivial respelling collides — a missed collision only wastes a
        // session) and sound (a near-miss must never collide — a false
        // collision would feed one view another view's rows).
        use std::collections::BTreeSet;

        // Completeness: all six slot permutations, with join-edge lists
        // flipped and reversed on top, collapse onto one fingerprint.
        let mut class: BTreeSet<QueryFingerprint> = BTreeSet::new();
        for order in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let mut q = three_way(order);
            class.insert(fingerprint(&q));
            for e in &mut q.joins {
                std::mem::swap(&mut e.left, &mut e.right);
            }
            q.joins.reverse();
            class.insert(fingerprint(&q));
        }
        assert_eq!(
            class.len(),
            1,
            "every respelling of the three-way join must share one identity"
        );

        // Soundness: the same shape with one differing constant is a
        // distinct identity for every constant — pairwise and against
        // the base class.
        let mut identities = class;
        for c in [1i64, 2, 3, 4, 6, 1000] {
            let mut q = three_way([0, 1, 2]);
            q.predicates[0].1 = Predicate::cmp(2, CmpOp::Eq, c);
            identities.insert(fingerprint(&q));
        }
        assert_eq!(
            identities.len(),
            7,
            "each predicate constant must keep its own identity"
        );
    }

    #[test]
    fn catalogue_workload_fingerprints_are_stable_within_a_run() {
        // The canonical form is idempotent: canonicalizing twice changes
        // nothing, so fingerprints are stable however often they are
        // recomputed.
        let q = three_way([1, 0, 2]);
        let once = canonicalize(&q);
        let twice = canonicalize(&once);
        assert_eq!(once, twice);
        assert_eq!(fingerprint(&q), fingerprint(&once));
    }
}
