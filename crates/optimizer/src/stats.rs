//! The statistics layer the cost model reads.
//!
//! The paper keeps per-relation statistics at the relation coordinators;
//! here [`Statistics::collect`] pulls them out of the storage layer — the
//! tuple counts via
//! [`orchestra_storage::DistributedStorage::relation_cardinality`]
//! (coordinator metadata), the schema shape from the catalog, and the
//! participant count from the routing table the initiator would snapshot
//! with the query.
//!
//! A collected snapshot is deliberately bare: fixed per-type column
//! widths, no distribution information.  The adaptive subsystem
//! ([`crate::adaptive::AdaptiveStats::overlay`]) enriches a snapshot with
//! per-column [`EquiDepthHistogram`]s, KMV distinct counts and observed
//! mean widths maintained from publication deltas; everything downstream
//! ([`TableStats::selectivity`], the cost model, the planner) consults
//! those when present and falls back to the textbook constants when not.

use crate::adaptive::histogram::EquiDepthHistogram;
use crate::cost::{NUMERIC_COLUMN_BYTES, TUPLE_OVERHEAD_BYTES};
use orchestra_common::{ColumnType, Epoch, Relation};
use orchestra_engine::{CmpOp, Predicate};
use orchestra_storage::DistributedStorage;
use std::collections::BTreeMap;

/// Estimated wire bytes of one value of each column type, unless an
/// observed mean width is available.  The static fallbacks mirror the
/// engine's batch encoding: a tag byte plus the payload, with strings
/// sized for the workloads' typical 25-character fields.
pub fn column_width_bytes(ty: ColumnType, observed: Option<f64>) -> f64 {
    if let Some(width) = observed {
        if width > 0.0 {
            return width;
        }
    }
    match ty {
        ColumnType::Int | ColumnType::Double => NUMERIC_COLUMN_BYTES,
        ColumnType::Str => 30.0,
    }
}

/// Statistics of one relation, snapshotted at an epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Relation name.
    pub name: String,
    /// Tuple count at the snapshot epoch (from coordinator metadata).
    pub cardinality: usize,
    /// Number of columns.
    pub arity: usize,
    /// Number of leading key (partitioning) columns.
    pub key_len: usize,
    /// Is the relation replicated in full at every node?
    pub replicated: bool,
    /// Estimated wire bytes per column value (catalog fallbacks, or
    /// observed means once the adaptive overlay has data).
    pub column_widths: Vec<f64>,
    /// Per-column value-distribution summaries (adaptive overlay only;
    /// `None` in a bare collected snapshot).
    pub histograms: Vec<Option<EquiDepthHistogram>>,
    /// Per-column distinct-count estimates (adaptive overlay only).
    pub distinct_counts: Vec<Option<f64>>,
}

impl TableStats {
    /// Derive the static half of the stats from a catalog entry.
    pub fn from_relation(relation: &Relation, cardinality: usize) -> TableStats {
        let schema = relation.schema();
        TableStats {
            name: relation.name().to_string(),
            cardinality,
            arity: schema.arity(),
            key_len: schema.key_len(),
            replicated: relation.is_replicated(),
            column_widths: (0..schema.arity())
                .map(|i| column_width_bytes(schema.column_type(i), None))
                .collect(),
            histograms: vec![None; schema.arity()],
            distinct_counts: vec![None; schema.arity()],
        }
    }

    /// Estimated wire bytes of one full row.
    pub fn row_bytes(&self) -> f64 {
        TUPLE_OVERHEAD_BYTES + self.column_widths.iter().sum::<f64>()
    }

    /// Estimated wire bytes of one key-only row (covering index scans).
    pub fn key_bytes(&self) -> f64 {
        TUPLE_OVERHEAD_BYTES + self.column_widths[..self.key_len].iter().sum::<f64>()
    }

    /// Estimated selectivity of `predicate` over this relation: the
    /// per-column histogram answers when it can, distinct counts size
    /// equality predicates when only they exist, and everything else
    /// falls back to the engine's textbook constants
    /// ([`Predicate::estimated_selectivity`]).  With no overlay attached
    /// this reproduces the fallback constants exactly, so bare snapshots
    /// compile byte-identical plans.
    pub fn selectivity(&self, predicate: Option<&Predicate>) -> f64 {
        match predicate {
            None => 1.0,
            Some(p) => self.predicate_fraction(p).clamp(0.0, 1.0),
        }
    }

    fn predicate_fraction(&self, predicate: &Predicate) -> f64 {
        let s = match predicate {
            Predicate::True => 1.0,
            Predicate::Compare { column, op, value } => self.compare_fraction(*column, *op, value),
            Predicate::Between { column, low, high } => self
                .histograms
                .get(*column)
                .and_then(Option::as_ref)
                .and_then(|h| h.between_fraction(low, high))
                .unwrap_or_else(|| predicate.estimated_selectivity()),
            Predicate::CompareColumns { .. } => predicate.estimated_selectivity(),
            Predicate::And(ps) => ps.iter().map(|p| self.predicate_fraction(p)).product(),
            Predicate::Or(ps) => {
                let none: f64 = ps
                    .iter()
                    .map(|p| 1.0 - self.predicate_fraction(p))
                    .product();
                1.0 - none
            }
            Predicate::Not(p) => 1.0 - self.predicate_fraction(p),
        };
        s.clamp(0.0, 1.0)
    }

    fn compare_fraction(&self, column: usize, op: CmpOp, value: &orchestra_common::Value) -> f64 {
        if let Some(Some(h)) = self.histograms.get(column) {
            if let Some(f) = h.fraction(op, value) {
                return f;
            }
        }
        // Equality against a known distinct count: 1/V under uniformity
        // (the histogram already handled skewed low-cardinality columns).
        if matches!(op, CmpOp::Eq | CmpOp::Ne) {
            if let Some(Some(d)) = self.distinct_counts.get(column) {
                if *d >= 1.0 {
                    let eq = (1.0 / d).min(1.0);
                    return if op == CmpOp::Eq { eq } else { 1.0 - eq };
                }
            }
        }
        Predicate::Compare {
            column,
            op,
            value: value.clone(),
        }
        .estimated_selectivity()
    }
}

/// The statistics snapshot a compilation runs against: one
/// [`TableStats`] per registered relation plus the participant count of
/// the routing snapshot the query would be disseminated with.
#[derive(Clone, Debug, PartialEq)]
pub struct Statistics {
    /// Participant count (the routing snapshot's node count).
    pub nodes: usize,
    tables: BTreeMap<String, TableStats>,
}

impl Statistics {
    /// Snapshot the statistics of every registered relation at `epoch`.
    pub fn collect(storage: &DistributedStorage, epoch: Epoch) -> Statistics {
        let mut tables = BTreeMap::new();
        for relation in storage.relations() {
            let cardinality = storage.relation_cardinality(relation.name(), epoch);
            tables.insert(
                relation.name().to_string(),
                TableStats::from_relation(relation, cardinality),
            );
        }
        Statistics {
            nodes: storage.routing().node_count(),
            tables,
        }
    }

    /// Build a statistics snapshot directly from table stats (tests,
    /// what-if planning).
    pub fn from_tables(nodes: usize, tables: Vec<TableStats>) -> Statistics {
        Statistics {
            nodes,
            tables: tables.into_iter().map(|t| (t.name.clone(), t)).collect(),
        }
    }

    /// A copy of the snapshot with one relation's cardinality replaced —
    /// the what-if form the maintenance cost model uses to cost a plan
    /// in which a single scan reads an epoch delta instead of the full
    /// relation.
    pub fn with_cardinality(&self, relation: &str, cardinality: usize) -> Statistics {
        let mut copy = self.clone();
        if let Some(table) = copy.tables.get_mut(relation) {
            table.cardinality = cardinality;
        }
        copy
    }

    /// The stats of one relation, if registered.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Mutable access to one relation's stats — the seam the adaptive
    /// overlay enriches a snapshot through.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut TableStats> {
        self.tables.get_mut(name)
    }

    /// All table stats, ordered by relation name (deterministic).
    pub fn tables(&self) -> impl Iterator<Item = &TableStats> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::{ColumnType, Schema, Value};

    fn stats_of(relation: &Relation, cardinality: usize) -> TableStats {
        TableStats::from_relation(relation, cardinality)
    }

    #[test]
    fn table_stats_mirror_the_catalog_entry() {
        let rel = Relation::partitioned(
            "orders",
            Schema::keyed_on_first(vec![
                ("o_orderkey", ColumnType::Int),
                ("o_comment", ColumnType::Str),
            ]),
        );
        let t = stats_of(&rel, 500);
        assert_eq!(t.name, "orders");
        assert_eq!(t.cardinality, 500);
        assert_eq!(t.arity, 2);
        assert_eq!(t.key_len, 1);
        assert!(!t.replicated);
        assert_eq!(t.row_bytes(), 2.0 + 9.0 + 30.0);
        assert_eq!(t.key_bytes(), 2.0 + 9.0);
        assert_eq!(t.histograms, vec![None, None]);
        assert_eq!(t.distinct_counts, vec![None, None]);
    }

    #[test]
    fn replicated_flag_carries_over() {
        let rel = Relation::replicated(
            "nation",
            Schema::keyed_on_first(vec![("id", ColumnType::Int)]),
        );
        assert!(stats_of(&rel, 25).replicated);
    }

    #[test]
    fn from_tables_orders_by_name() {
        let b = Relation::partitioned("b", Schema::keyed_on_first(vec![("k", ColumnType::Int)]));
        let a = Relation::partitioned("a", Schema::keyed_on_first(vec![("k", ColumnType::Int)]));
        let s = Statistics::from_tables(4, vec![stats_of(&b, 2), stats_of(&a, 1)]);
        let names: Vec<&str> = s.tables().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(s.table("b").unwrap().cardinality, 2);
        assert!(s.table("zzz").is_none());
    }

    #[test]
    fn observed_widths_override_the_catalog_fallback() {
        assert_eq!(column_width_bytes(ColumnType::Str, None), 30.0);
        assert_eq!(column_width_bytes(ColumnType::Str, Some(6.5)), 6.5);
        assert_eq!(column_width_bytes(ColumnType::Int, Some(0.0)), 9.0);
        assert_eq!(column_width_bytes(ColumnType::Int, None), 9.0);
    }

    #[test]
    fn bare_selectivity_reproduces_the_textbook_constants() {
        let rel = Relation::partitioned(
            "R",
            Schema::keyed_on_first(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]),
        );
        let t = stats_of(&rel, 100);
        for p in [
            Predicate::cmp(1, CmpOp::Eq, 7i64),
            Predicate::cmp(1, CmpOp::Ne, 7i64),
            Predicate::cmp(1, CmpOp::Lt, 7i64),
            Predicate::Between {
                column: 1,
                low: Value::Int(0),
                high: Value::Int(9),
            },
            Predicate::And(vec![
                Predicate::cmp(0, CmpOp::Eq, 1i64),
                Predicate::cmp(1, CmpOp::Gt, 2i64),
            ]),
            Predicate::Not(Box::new(Predicate::cmp(1, CmpOp::Eq, 7i64))),
            Predicate::Or(vec![
                Predicate::cmp(0, CmpOp::Eq, 1i64),
                Predicate::cmp(1, CmpOp::Eq, 2i64),
            ]),
            Predicate::True,
        ] {
            assert_eq!(t.selectivity(Some(&p)), p.estimated_selectivity(), "{p:?}");
        }
        assert_eq!(t.selectivity(None), 1.0);
    }

    #[test]
    fn histogram_overrides_the_equality_guess() {
        let rel = Relation::partitioned(
            "R",
            Schema::keyed_on_first(vec![("k", ColumnType::Int), ("seg", ColumnType::Str)]),
        );
        let mut t = stats_of(&rel, 100);
        let mut h = EquiDepthHistogram::default();
        for i in 0..100 {
            let seg = if i % 5 == 0 { "BUILDING" } else { "OTHER" };
            h.update(&Value::str(seg), 1);
        }
        t.histograms[1] = Some(h);
        let eq = Predicate::cmp(1, CmpOp::Eq, Value::str("BUILDING"));
        assert!((t.selectivity(Some(&eq)) - 0.2).abs() < 1e-12);
        // Inside combinators too.
        let conj = Predicate::And(vec![eq, Predicate::cmp(0, CmpOp::Lt, 50i64)]);
        assert!((t.selectivity(Some(&conj)) - 0.2 * 0.33).abs() < 1e-12);
    }

    #[test]
    fn distinct_count_sizes_equality_when_no_histogram_answers() {
        let rel = Relation::partitioned(
            "R",
            Schema::keyed_on_first(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]),
        );
        let mut t = stats_of(&rel, 1000);
        t.distinct_counts[1] = Some(50.0);
        let eq = Predicate::cmp(1, CmpOp::Eq, 7i64);
        assert!((t.selectivity(Some(&eq)) - 0.02).abs() < 1e-12);
        let ne = Predicate::cmp(1, CmpOp::Ne, 7i64);
        assert!((t.selectivity(Some(&ne)) - 0.98).abs() < 1e-12);
    }
}
