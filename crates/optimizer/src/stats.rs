//! The statistics layer the cost model reads.
//!
//! The paper keeps per-relation statistics at the relation coordinators;
//! here [`Statistics::collect`] pulls them out of the storage layer — the
//! tuple counts via
//! [`orchestra_storage::DistributedStorage::relation_cardinality`]
//! (coordinator metadata), the schema shape from the catalog, and the
//! participant count from the routing table the initiator would snapshot
//! with the query.

use crate::cost::{NUMERIC_COLUMN_BYTES, TUPLE_OVERHEAD_BYTES};
use orchestra_common::{ColumnType, Epoch, Relation};
use orchestra_storage::DistributedStorage;
use std::collections::BTreeMap;

/// Estimated wire bytes of one value of each column type (the engine's
/// batch encoding: a tag byte plus the payload; strings are sized for the
/// workloads' typical 25-character fields).
fn column_width_bytes(ty: ColumnType) -> f64 {
    match ty {
        ColumnType::Int | ColumnType::Double => NUMERIC_COLUMN_BYTES,
        ColumnType::Str => 30.0,
    }
}

/// Statistics of one relation, snapshotted at an epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Relation name.
    pub name: String,
    /// Tuple count at the snapshot epoch (from coordinator metadata).
    pub cardinality: usize,
    /// Number of columns.
    pub arity: usize,
    /// Number of leading key (partitioning) columns.
    pub key_len: usize,
    /// Is the relation replicated in full at every node?
    pub replicated: bool,
    /// Estimated wire bytes per column value.
    pub column_widths: Vec<f64>,
}

impl TableStats {
    /// Derive the static half of the stats from a catalog entry.
    pub fn from_relation(relation: &Relation, cardinality: usize) -> TableStats {
        let schema = relation.schema();
        TableStats {
            name: relation.name().to_string(),
            cardinality,
            arity: schema.arity(),
            key_len: schema.key_len(),
            replicated: relation.is_replicated(),
            column_widths: (0..schema.arity())
                .map(|i| column_width_bytes(schema.column_type(i)))
                .collect(),
        }
    }

    /// Estimated wire bytes of one full row.
    pub fn row_bytes(&self) -> f64 {
        TUPLE_OVERHEAD_BYTES + self.column_widths.iter().sum::<f64>()
    }

    /// Estimated wire bytes of one key-only row (covering index scans).
    pub fn key_bytes(&self) -> f64 {
        TUPLE_OVERHEAD_BYTES + self.column_widths[..self.key_len].iter().sum::<f64>()
    }
}

/// The statistics snapshot a compilation runs against: one
/// [`TableStats`] per registered relation plus the participant count of
/// the routing snapshot the query would be disseminated with.
#[derive(Clone, Debug, PartialEq)]
pub struct Statistics {
    /// Participant count (the routing snapshot's node count).
    pub nodes: usize,
    tables: BTreeMap<String, TableStats>,
}

impl Statistics {
    /// Snapshot the statistics of every registered relation at `epoch`.
    pub fn collect(storage: &DistributedStorage, epoch: Epoch) -> Statistics {
        let mut tables = BTreeMap::new();
        for relation in storage.relations() {
            let cardinality = storage.relation_cardinality(relation.name(), epoch);
            tables.insert(
                relation.name().to_string(),
                TableStats::from_relation(relation, cardinality),
            );
        }
        Statistics {
            nodes: storage.routing().node_count(),
            tables,
        }
    }

    /// Build a statistics snapshot directly from table stats (tests,
    /// what-if planning).
    pub fn from_tables(nodes: usize, tables: Vec<TableStats>) -> Statistics {
        Statistics {
            nodes,
            tables: tables.into_iter().map(|t| (t.name.clone(), t)).collect(),
        }
    }

    /// A copy of the snapshot with one relation's cardinality replaced —
    /// the what-if form the maintenance cost model uses to cost a plan
    /// in which a single scan reads an epoch delta instead of the full
    /// relation.
    pub fn with_cardinality(&self, relation: &str, cardinality: usize) -> Statistics {
        let mut copy = self.clone();
        if let Some(table) = copy.tables.get_mut(relation) {
            table.cardinality = cardinality;
        }
        copy
    }

    /// The stats of one relation, if registered.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// All table stats, ordered by relation name (deterministic).
    pub fn tables(&self) -> impl Iterator<Item = &TableStats> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::{ColumnType, Schema};

    fn stats_of(relation: &Relation, cardinality: usize) -> TableStats {
        TableStats::from_relation(relation, cardinality)
    }

    #[test]
    fn table_stats_mirror_the_catalog_entry() {
        let rel = Relation::partitioned(
            "orders",
            Schema::keyed_on_first(vec![
                ("o_orderkey", ColumnType::Int),
                ("o_comment", ColumnType::Str),
            ]),
        );
        let t = stats_of(&rel, 500);
        assert_eq!(t.name, "orders");
        assert_eq!(t.cardinality, 500);
        assert_eq!(t.arity, 2);
        assert_eq!(t.key_len, 1);
        assert!(!t.replicated);
        assert_eq!(t.row_bytes(), 2.0 + 9.0 + 30.0);
        assert_eq!(t.key_bytes(), 2.0 + 9.0);
    }

    #[test]
    fn replicated_flag_carries_over() {
        let rel = Relation::replicated(
            "nation",
            Schema::keyed_on_first(vec![("id", ColumnType::Int)]),
        );
        assert!(stats_of(&rel, 25).replicated);
    }

    #[test]
    fn from_tables_orders_by_name() {
        let b = Relation::partitioned("b", Schema::keyed_on_first(vec![("k", ColumnType::Int)]));
        let a = Relation::partitioned("a", Schema::keyed_on_first(vec![("k", ColumnType::Int)]));
        let s = Statistics::from_tables(4, vec![stats_of(&b, 2), stats_of(&a, 1)]);
        let names: Vec<&str> = s.tables().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(s.table("b").unwrap().cardinality, 2);
        assert!(s.table("zzz").is_none());
    }
}
