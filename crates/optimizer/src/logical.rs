//! Logical query descriptions.
//!
//! A [`LogicalQuery`] is the declarative input of the optimizer: the
//! relations a query reads, the equi-join graph connecting them,
//! conjunctive single-relation predicates, a select list of scalar
//! expressions over the joined row, and an optional aggregation.  Columns
//! are addressed *globally* as [`ColRef`]s — `(relation slot, column
//! index)` pairs — because at this level no operator layout exists yet;
//! the planner lowers them to the positional references of
//! [`orchestra_engine::PhysicalPlan`] operators once a join order has
//! been chosen.

use orchestra_common::Value;
use orchestra_engine::{AggFunc, Predicate, ScalarExpr};
use std::collections::BTreeSet;

/// A global column reference: column `column` of the query's
/// `relation`-th relation slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColRef {
    /// Index of the relation slot within the [`LogicalQuery`].
    pub relation: usize,
    /// Column index within that relation's schema.
    pub column: usize,
}

/// Shorthand constructor for a [`ColRef`].
pub fn col(relation: usize, column: usize) -> ColRef {
    ColRef { relation, column }
}

/// A scalar expression over global columns — the logical counterpart of
/// [`ScalarExpr`], which the planner lowers once positions are known.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalExpr {
    /// A global column reference.
    Column(ColRef),
    /// A literal constant.
    Literal(Value),
    /// Addition.
    Add(Box<LogicalExpr>, Box<LogicalExpr>),
    /// Subtraction.
    Sub(Box<LogicalExpr>, Box<LogicalExpr>),
    /// Multiplication.
    Mul(Box<LogicalExpr>, Box<LogicalExpr>),
    /// String concatenation.
    Concat(Vec<LogicalExpr>),
}

impl LogicalExpr {
    /// Shorthand for a column reference.
    pub fn col(relation: usize, column: usize) -> LogicalExpr {
        LogicalExpr::Column(col(relation, column))
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> LogicalExpr {
        LogicalExpr::Literal(v.into())
    }

    /// Collect every [`ColRef`] the expression mentions.
    pub fn columns_into(&self, out: &mut BTreeSet<ColRef>) {
        match self {
            LogicalExpr::Column(c) => {
                out.insert(*c);
            }
            LogicalExpr::Literal(_) => {}
            LogicalExpr::Add(a, b) | LogicalExpr::Sub(a, b) | LogicalExpr::Mul(a, b) => {
                a.columns_into(out);
                b.columns_into(out);
            }
            LogicalExpr::Concat(parts) => {
                for p in parts {
                    p.columns_into(out);
                }
            }
        }
    }

    /// Lower to a positional [`ScalarExpr`] given the physical layout
    /// (position `i` of the input row holds global column `layout[i]`).
    /// Returns `None` if a referenced column is absent from the layout.
    pub fn lower(&self, layout: &[ColRef]) -> Option<ScalarExpr> {
        Some(match self {
            LogicalExpr::Column(c) => ScalarExpr::Column(layout.iter().position(|l| l == c)?),
            LogicalExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            LogicalExpr::Add(a, b) => {
                ScalarExpr::Add(Box::new(a.lower(layout)?), Box::new(b.lower(layout)?))
            }
            LogicalExpr::Sub(a, b) => {
                ScalarExpr::Sub(Box::new(a.lower(layout)?), Box::new(b.lower(layout)?))
            }
            LogicalExpr::Mul(a, b) => {
                ScalarExpr::Mul(Box::new(a.lower(layout)?), Box::new(b.lower(layout)?))
            }
            LogicalExpr::Concat(parts) => ScalarExpr::Concat(
                parts
                    .iter()
                    .map(|p| p.lower(layout))
                    .collect::<Option<Vec<_>>>()?,
            ),
        })
    }
}

/// One equi-join edge of the join graph: `left = right`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinEdge {
    /// Column of one relation.
    pub left: ColRef,
    /// Equal column of another relation.
    pub right: ColRef,
}

/// The aggregation of a query, expressed over *select-list positions*:
/// `group_by` and each aggregate input index into [`LogicalQuery::select`].
#[derive(Clone, Debug, PartialEq)]
pub struct Aggregation {
    /// Leading select-list positions forming the group key.
    pub group_by: Vec<usize>,
    /// Aggregate functions and the select-list position each consumes.
    pub aggs: Vec<(AggFunc, usize)>,
}

/// A declarative query over the distributed store: relations, equi-join
/// graph, conjunctive single-relation predicates, a select list, and an
/// optional aggregation.  Built incrementally; compiled to a
/// [`orchestra_engine::PhysicalPlan`] by [`crate::compile`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogicalQuery {
    /// Relation names, one per slot, in the order slots were added.
    pub relations: Vec<String>,
    /// Sargable conjuncts: `(relation slot, predicate over that
    /// relation's own column indices)`.
    pub predicates: Vec<(usize, Predicate)>,
    /// The equi-join graph.
    pub joins: Vec<JoinEdge>,
    /// The select list, evaluated over the joined row.
    pub select: Vec<LogicalExpr>,
    /// Optional aggregation over the select list.
    pub aggregation: Option<Aggregation>,
}

impl LogicalQuery {
    /// An empty query; add relations, filters, joins and a select list.
    pub fn new() -> LogicalQuery {
        LogicalQuery::default()
    }

    /// Add a relation slot, returning its index for [`ColRef`]s.
    pub fn relation(&mut self, name: impl Into<String>) -> usize {
        self.relations.push(name.into());
        self.relations.len() - 1
    }

    /// Add a conjunctive predicate over one relation's own columns.
    pub fn filter(&mut self, relation: usize, predicate: Predicate) -> &mut Self {
        self.predicates.push((relation, predicate));
        self
    }

    /// Add an equi-join edge `left = right`.
    pub fn join(&mut self, left: ColRef, right: ColRef) -> &mut Self {
        self.joins.push(JoinEdge { left, right });
        self
    }

    /// Set the select list.
    pub fn select(&mut self, exprs: Vec<LogicalExpr>) -> &mut Self {
        self.select = exprs;
        self
    }

    /// Set the aggregation (group-by positions and aggregate functions,
    /// both indexing into the select list).
    pub fn aggregate(&mut self, group_by: Vec<usize>, aggs: Vec<(AggFunc, usize)>) -> &mut Self {
        self.aggregation = Some(Aggregation { group_by, aggs });
        self
    }

    /// Every global column the select list references.
    pub fn select_columns(&self) -> BTreeSet<ColRef> {
        let mut out = BTreeSet::new();
        for e in &self.select {
            e.columns_into(&mut out);
        }
        out
    }
}

/// Collect the column indices a [`Predicate`] mentions.
pub fn predicate_columns(p: &Predicate, out: &mut BTreeSet<usize>) {
    match p {
        Predicate::True => {}
        Predicate::Compare { column, .. } | Predicate::Between { column, .. } => {
            out.insert(*column);
        }
        Predicate::CompareColumns { left, right, .. } => {
            out.insert(*left);
            out.insert(*right);
        }
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                predicate_columns(q, out);
            }
        }
        Predicate::Not(q) => predicate_columns(q, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_engine::CmpOp;

    #[test]
    fn builder_accumulates_query_parts() {
        let mut q = LogicalQuery::new();
        let r = q.relation("R");
        let s = q.relation("S");
        q.filter(r, Predicate::cmp(1, CmpOp::Eq, 7i64))
            .join(col(r, 0), col(s, 1))
            .select(vec![LogicalExpr::col(r, 0), LogicalExpr::col(s, 2)])
            .aggregate(vec![0], vec![(AggFunc::Sum, 1)]);
        assert_eq!(q.relations, vec!["R", "S"]);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].left, col(r, 0));
        assert_eq!(q.joins[0].right, col(s, 1));
        assert_eq!(q.select_columns().len(), 2);
        assert!(q.aggregation.is_some());
    }

    #[test]
    fn expressions_lower_against_a_layout() {
        let layout = [col(1, 3), col(0, 0)];
        let e = LogicalExpr::Mul(
            Box::new(LogicalExpr::col(0, 0)),
            Box::new(LogicalExpr::Sub(
                Box::new(LogicalExpr::lit(100i64)),
                Box::new(LogicalExpr::col(1, 3)),
            )),
        );
        let lowered = e.lower(&layout).unwrap();
        assert_eq!(
            lowered,
            ScalarExpr::Mul(
                Box::new(ScalarExpr::col(1)),
                Box::new(ScalarExpr::Sub(
                    Box::new(ScalarExpr::lit(100i64)),
                    Box::new(ScalarExpr::col(0)),
                )),
            )
        );
        // A column missing from the layout cannot be lowered.
        assert!(LogicalExpr::col(2, 0).lower(&layout).is_none());
    }

    #[test]
    fn predicate_column_collection_recurses() {
        let p = Predicate::And(vec![
            Predicate::cmp(3, CmpOp::Lt, 5i64),
            Predicate::Or(vec![
                Predicate::CompareColumns {
                    left: 1,
                    op: CmpOp::Eq,
                    right: 4,
                },
                Predicate::Not(Box::new(Predicate::cmp(0, CmpOp::Ge, 2i64))),
            ]),
        ]);
        let mut cols = BTreeSet::new();
        predicate_columns(&p, &mut cols);
        assert_eq!(cols, [0, 1, 3, 4].into_iter().collect());
    }
}
