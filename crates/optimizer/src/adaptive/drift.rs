//! Drift detection between compile-time and current statistics.
//!
//! A materialized view's delta legs are compiled against one statistics
//! snapshot and then reused epoch after epoch.  The monitor remembers the
//! per-relation cardinalities a compilation ran under (its *baseline*)
//! and scores every later snapshot by the largest absolute log2 ratio of
//! any relation's cardinality against that baseline — symmetric in
//! growth and shrinkage, and independent of absolute scale.
//!
//! Firing is debounced: drift must stay past the threshold for
//! `patience` consecutive observations before [`DriftMonitor::observe`]
//! reports a recompilation, and a firing resets the streak.  Oscillating
//! churn that crosses the threshold on alternate epochs therefore never
//! fires at all — the hysteresis that keeps a borderline workload from
//! triggering a recompile storm.

use crate::stats::Statistics;
use std::collections::BTreeMap;

/// Tunables of the drift monitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftConfig {
    /// Drift score past which an observation counts toward firing: the
    /// largest `|log2(current / baseline)|` over all relations.  `1.0`
    /// means a relation doubled or halved.
    pub threshold: f64,
    /// Consecutive over-threshold observations required to fire.
    pub patience: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 1.0,
            patience: 2,
        }
    }
}

/// Watches statistics snapshots for drift against a compile-time
/// baseline and decides when recompilation is worth its dissemination
/// cost.
#[derive(Clone, Debug)]
pub struct DriftMonitor {
    config: DriftConfig,
    baseline: BTreeMap<String, usize>,
    streak: usize,
    fires: u64,
}

impl DriftMonitor {
    /// A monitor with no baseline yet (the first [`Self::rebase`] sets it).
    pub fn new(config: DriftConfig) -> DriftMonitor {
        DriftMonitor {
            config,
            baseline: BTreeMap::new(),
            streak: 0,
            fires: 0,
        }
    }

    /// Record `stats` as the snapshot the current plans were compiled
    /// under; clears any accumulated streak.
    pub fn rebase(&mut self, stats: &Statistics) {
        self.baseline = stats
            .tables()
            .map(|t| (t.name.clone(), t.cardinality))
            .collect();
        self.streak = 0;
    }

    /// The drift score of `stats` against the baseline: the largest
    /// `|log2((current + 1) / (baseline + 1))|` over all relations (the
    /// +1 keeps empty relations finite).  Zero without a baseline.
    pub fn drift(&self, stats: &Statistics) -> f64 {
        let mut worst = 0.0f64;
        for table in stats.tables() {
            let base = match self.baseline.get(&table.name) {
                Some(b) => *b,
                None => continue,
            };
            let ratio = (table.cardinality as f64 + 1.0) / (base as f64 + 1.0);
            worst = worst.max(ratio.log2().abs());
        }
        worst
    }

    /// Score one snapshot and report whether the caller should recompile
    /// now.  Fires only after `patience` consecutive over-threshold
    /// observations; firing resets the streak (the caller is expected to
    /// recompile and [`Self::rebase`]).
    pub fn observe(&mut self, stats: &Statistics) -> bool {
        if self.baseline.is_empty() {
            self.rebase(stats);
            return false;
        }
        if self.drift(stats) > self.config.threshold {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        if self.streak >= self.config.patience {
            self.streak = 0;
            self.fires += 1;
            true
        } else {
            false
        }
    }

    /// How many times the monitor has fired.
    pub fn fires(&self) -> u64 {
        self.fires
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use orchestra_common::{ColumnType, Relation, Schema};

    fn snapshot(cardinality: usize) -> Statistics {
        let rel = Relation::partitioned(
            "R",
            Schema::keyed_on_first(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]),
        );
        Statistics::from_tables(4, vec![TableStats::from_relation(&rel, cardinality)])
    }

    #[test]
    fn sustained_drift_fires_once_per_rebase() {
        let mut m = DriftMonitor::new(DriftConfig {
            threshold: 1.0,
            patience: 2,
        });
        m.rebase(&snapshot(1000));
        assert!(!m.observe(&snapshot(1050)), "no drift, no fire");
        // The relation quadrupled: over threshold, but patience holds the
        // first observation back.
        assert!(!m.observe(&snapshot(4000)));
        assert!(m.observe(&snapshot(4000)), "second consecutive fires");
        assert_eq!(m.fires(), 1);
        // Until the caller rebases, the streak rebuilds from zero.
        assert!(!m.observe(&snapshot(4000)));
        m.rebase(&snapshot(4000));
        assert!(!m.observe(&snapshot(4100)), "rebase absorbs the drift");
        assert!(m.drift(&snapshot(4100)) < 0.1);
    }

    #[test]
    fn oscillating_churn_never_fires() {
        // Drift alternates above and below the threshold every epoch:
        // the streak resets each time it dips, so no recompile storm.
        let mut m = DriftMonitor::new(DriftConfig {
            threshold: 1.0,
            patience: 2,
        });
        m.rebase(&snapshot(1000));
        for _ in 0..20 {
            assert!(!m.observe(&snapshot(4000)), "one hot epoch");
            assert!(!m.observe(&snapshot(1100)), "back under threshold");
        }
        assert_eq!(m.fires(), 0);
    }

    #[test]
    fn shrinkage_counts_like_growth() {
        let mut m = DriftMonitor::new(DriftConfig {
            threshold: 1.0,
            patience: 1,
        });
        m.rebase(&snapshot(1000));
        assert!(m.observe(&snapshot(100)), "a 10x shrink is drift too");
    }

    #[test]
    fn first_observation_establishes_the_baseline() {
        let mut m = DriftMonitor::new(DriftConfig::default());
        assert!(!m.observe(&snapshot(1_000_000)));
        assert_eq!(m.drift(&snapshot(1_000_000)), 0.0);
    }
}
