//! Per-column equi-depth histograms maintained from signed deltas.
//!
//! A histogram starts in **exact mode**: a bounded map of per-value
//! counts, which answers equality and range fractions with no estimation
//! error at all — the right representation for the low-cardinality
//! categorical columns (TPC-H market segments, flags) whose fixed 10%
//! equality guess is the cost model's worst systematic error.  The first
//! update that would push the map past its cap converts a *numeric*
//! column into **bucket mode**: a bounded list of equi-depth `[lo, hi]`
//! buckets with split/merge maintenance, answering range fractions by
//! linear interpolation inside the straddling bucket.  A high-cardinality
//! *string* column goes **opaque** instead — the histogram keeps only its
//! signed row total and declines to answer, so the caller falls back to
//! the engine's textbook constants rather than trusting a bucket layout
//! that cannot interpolate.
//!
//! Every update carries a delta sign, so the histogram is maintained
//! incrementally from the same signed publication deltas the IVM path
//! derives — never by rescanning a base relation.

use orchestra_common::Value;
use orchestra_engine::CmpOp;
use std::collections::BTreeMap;

/// Default bound on bucket count (bucket mode) and exact-map entries.
pub const DEFAULT_BUCKETS: usize = 32;

/// One equi-depth bucket over a numeric domain (inclusive bounds).
#[derive(Clone, Debug, PartialEq)]
struct Bucket {
    lo: f64,
    hi: f64,
    count: i64,
}

/// The shape the histogram currently holds.
#[derive(Clone, Debug, PartialEq)]
enum Shape {
    /// Per-value counts, exact while distinct values stay under the cap.
    Exact(BTreeMap<Value, i64>),
    /// Equi-depth buckets over a numeric domain.
    Buckets(Vec<Bucket>),
    /// High-cardinality non-numeric column: totals only, no answers.
    Opaque,
}

/// An incrementally-maintained per-column distribution summary.
#[derive(Clone, Debug, PartialEq)]
pub struct EquiDepthHistogram {
    shape: Shape,
    max_buckets: usize,
    total: i64,
}

impl Default for EquiDepthHistogram {
    fn default() -> Self {
        EquiDepthHistogram::new(DEFAULT_BUCKETS)
    }
}

impl EquiDepthHistogram {
    /// A fresh histogram bounded at `max_buckets` buckets (and the same
    /// number of exact-mode entries).
    pub fn new(max_buckets: usize) -> EquiDepthHistogram {
        EquiDepthHistogram {
            shape: Shape::Exact(BTreeMap::new()),
            max_buckets: max_buckets.max(2),
            total: 0,
        }
    }

    /// Signed rows folded so far (inserts minus deletes).
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Is the histogram still answering from exact per-value counts?
    pub fn is_exact(&self) -> bool {
        matches!(self.shape, Shape::Exact(_))
    }

    /// Fold one value with a delta sign (`+1` insert, `-1` delete).
    pub fn update(&mut self, value: &Value, sign: i64) {
        if value.is_null() {
            return;
        }
        self.total = (self.total + sign).max(0);
        match &mut self.shape {
            Shape::Exact(counts) => {
                let entry = counts.entry(value.clone()).or_insert(0);
                *entry += sign;
                if *entry <= 0 {
                    counts.remove(value);
                }
                if counts.len() > self.max_buckets {
                    self.shape = if counts.keys().all(|v| v.as_f64().is_some()) {
                        Shape::Buckets(buckets_from_exact(counts, self.max_buckets))
                    } else {
                        Shape::Opaque
                    };
                }
            }
            Shape::Buckets(buckets) => {
                if let Some(x) = value.as_f64() {
                    bucket_update(buckets, x, sign, self.max_buckets, self.total);
                }
            }
            Shape::Opaque => {}
        }
    }

    /// Estimated fraction of rows with `column op value`, or `None` when
    /// this histogram cannot answer (empty, opaque, or an equality over
    /// interpolated buckets — the caller should fall back to
    /// distinct-count or textbook estimates).
    pub fn fraction(&self, op: CmpOp, value: &Value) -> Option<f64> {
        if self.total <= 0 {
            return None;
        }
        let total = self.total as f64;
        match &self.shape {
            Shape::Exact(counts) => {
                let matching: i64 = counts
                    .iter()
                    .filter(|(v, _)| op.eval(v, value))
                    .map(|(_, c)| *c)
                    .sum();
                Some((matching as f64 / total).clamp(0.0, 1.0))
            }
            Shape::Buckets(buckets) => {
                let x = value.as_f64()?;
                let below = rows_below(buckets, x);
                match op {
                    // Interpolated buckets cannot resolve a point mass.
                    CmpOp::Eq | CmpOp::Ne => None,
                    CmpOp::Lt | CmpOp::Le => Some((below / total).clamp(0.0, 1.0)),
                    CmpOp::Gt | CmpOp::Ge => Some((1.0 - below / total).clamp(0.0, 1.0)),
                }
            }
            Shape::Opaque => None,
        }
    }

    /// Estimated fraction of rows in `[low, high]` (inclusive).
    pub fn between_fraction(&self, low: &Value, high: &Value) -> Option<f64> {
        if self.total <= 0 {
            return None;
        }
        let total = self.total as f64;
        match &self.shape {
            Shape::Exact(counts) => {
                let matching: i64 = counts
                    .iter()
                    .filter(|(v, _)| *v >= low && *v <= high)
                    .map(|(_, c)| *c)
                    .sum();
                Some((matching as f64 / total).clamp(0.0, 1.0))
            }
            Shape::Buckets(buckets) => {
                let (lo, hi) = (low.as_f64()?, high.as_f64()?);
                if hi < lo {
                    return Some(0.0);
                }
                let span = rows_below(buckets, hi) - rows_below(buckets, lo);
                Some((span / total).clamp(0.0, 1.0))
            }
            Shape::Opaque => None,
        }
    }
}

/// Build an equi-depth bucket list from exact per-value counts: sorted
/// values are greedily packed so every bucket holds roughly `total /
/// max_buckets` rows.
fn buckets_from_exact(counts: &BTreeMap<Value, i64>, max_buckets: usize) -> Vec<Bucket> {
    let mut points: Vec<(f64, i64)> = counts
        .iter()
        .filter_map(|(v, c)| v.as_f64().map(|x| (x, *c)))
        .collect();
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: i64 = points.iter().map(|(_, c)| c).sum();
    let depth = (total / max_buckets as i64).max(1);
    let mut buckets: Vec<Bucket> = Vec::new();
    for (x, c) in points {
        let len = buckets.len();
        match buckets.last_mut() {
            Some(last) if last.count < depth && len <= max_buckets => {
                last.hi = x;
                last.count += c;
            }
            _ => buckets.push(Bucket {
                lo: x,
                hi: x,
                count: c,
            }),
        }
    }
    buckets
}

/// Fold one numeric point into the bucket list, splitting an overfull
/// bucket and merging the lightest adjacent pair when the bound is hit.
fn bucket_update(buckets: &mut Vec<Bucket>, x: f64, sign: i64, max_buckets: usize, total: i64) {
    if buckets.is_empty() {
        if sign > 0 {
            buckets.push(Bucket {
                lo: x,
                hi: x,
                count: sign,
            });
        }
        return;
    }
    // Locate the bucket holding `x`, extending the boundary buckets for
    // out-of-range values.
    let idx = if x < buckets[0].lo {
        if sign > 0 {
            buckets[0].lo = x;
        }
        0
    } else if x > buckets[buckets.len() - 1].hi {
        let last = buckets.len() - 1;
        if sign > 0 {
            buckets[last].hi = x;
        }
        last
    } else {
        buckets
            .iter()
            .position(|b| x >= b.lo && x <= b.hi)
            .unwrap_or_else(|| {
                // `x` falls in a gap between buckets: attach to the
                // nearest following bucket.
                buckets.iter().position(|b| x < b.lo).unwrap_or(0)
            })
    };
    buckets[idx].count = (buckets[idx].count + sign).max(0);

    // Split a bucket holding more than twice the target depth, at its
    // midpoint (halving the count — the uniform assumption).
    let depth = (total / max_buckets as i64).max(1);
    if buckets[idx].count > 2 * depth && buckets[idx].hi > buckets[idx].lo {
        let b = buckets[idx].clone();
        let mid = (b.lo + b.hi) / 2.0;
        let half = b.count / 2;
        buckets[idx] = Bucket {
            lo: b.lo,
            hi: mid,
            count: half,
        };
        buckets.insert(
            idx + 1,
            Bucket {
                lo: mid,
                hi: b.hi,
                count: b.count - half,
            },
        );
    }
    // Merge the lightest adjacent pair while over the bound.
    while buckets.len() > max_buckets {
        let mut best = 0;
        let mut best_count = i64::MAX;
        for i in 0..buckets.len() - 1 {
            let combined = buckets[i].count + buckets[i + 1].count;
            if combined < best_count {
                best_count = combined;
                best = i;
            }
        }
        let right = buckets.remove(best + 1);
        buckets[best].hi = right.hi;
        buckets[best].count += right.count;
    }
}

/// Estimated rows strictly below `x`: full buckets plus linear
/// interpolation inside the straddling one.
fn rows_below(buckets: &[Bucket], x: f64) -> f64 {
    let mut rows = 0.0;
    for b in buckets {
        if x >= b.hi {
            rows += b.count as f64;
        } else if x > b.lo {
            let width = b.hi - b.lo;
            let frac = if width > 0.0 { (x - b.lo) / width } else { 0.5 };
            rows += b.count as f64 * frac;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_fraction(rows: &[i64], op: CmpOp, v: i64) -> f64 {
        let matching = rows
            .iter()
            .filter(|r| op.eval(&Value::Int(**r), &Value::Int(v)))
            .count();
        matching as f64 / rows.len() as f64
    }

    /// A deterministic pinned stream: quadratic residues mod a prime,
    /// skewed toward small values.
    fn pinned_stream(n: i64) -> Vec<i64> {
        (0..n).map(|i| (i * i) % 997).collect()
    }

    #[test]
    fn exact_mode_matches_recomputation_exactly() {
        let rows: Vec<i64> = (0..200).map(|i| i % 5).collect();
        let mut h = EquiDepthHistogram::new(32);
        for r in &rows {
            h.update(&Value::Int(*r), 1);
        }
        assert!(h.is_exact());
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            for v in 0..6 {
                assert_eq!(
                    h.fraction(op, &Value::Int(v)).unwrap(),
                    exact_fraction(&rows, op, v),
                    "{op:?} {v}"
                );
            }
        }
    }

    #[test]
    fn exact_mode_folds_deletions() {
        let mut h = EquiDepthHistogram::new(32);
        for i in 0..100 {
            h.update(&Value::Int(i % 4), 1);
        }
        // Delete every row with value 0: its equality fraction is 0, the
        // others re-normalize against the shrunken total.
        for _ in 0..25 {
            h.update(&Value::Int(0), -1);
        }
        assert_eq!(h.total(), 75);
        assert_eq!(h.fraction(CmpOp::Eq, &Value::Int(0)).unwrap(), 0.0);
        let third = h.fraction(CmpOp::Eq, &Value::Int(1)).unwrap();
        assert!((third - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_mode_tracks_ranges_within_tolerance_on_a_pinned_stream() {
        let rows = pinned_stream(3000);
        let mut h = EquiDepthHistogram::new(32);
        for r in &rows {
            h.update(&Value::Int(*r), 1);
        }
        assert!(!h.is_exact(), "3000 skewed values must overflow the cap");
        for v in [50, 200, 500, 900] {
            let est = h.fraction(CmpOp::Lt, &Value::Int(v)).unwrap();
            let exact = exact_fraction(&rows, CmpOp::Lt, v);
            assert!(
                (est - exact).abs() < 0.08,
                "Lt {v}: est {est:.3} vs exact {exact:.3}"
            );
        }
        // Equality over interpolated buckets declines to answer.
        assert_eq!(h.fraction(CmpOp::Eq, &Value::Int(50)), None);
    }

    #[test]
    fn bucket_mode_absorbs_signed_churn() {
        let mut h = EquiDepthHistogram::new(16);
        for i in 0..2000 {
            h.update(&Value::Int(i), 1);
        }
        // Retract the lower half: the mass shifts upward.
        for i in 0..1000 {
            h.update(&Value::Int(i), -1);
        }
        assert_eq!(h.total(), 1000);
        let below_mid = h.fraction(CmpOp::Lt, &Value::Int(1000)).unwrap();
        assert!(below_mid < 0.35, "lower half retracted, got {below_mid:.3}");
    }

    #[test]
    fn between_matches_exact_in_exact_mode() {
        let mut h = EquiDepthHistogram::new(32);
        for i in 0..100 {
            h.update(&Value::Int(i % 10), 1);
        }
        let f = h.between_fraction(&Value::Int(2), &Value::Int(4)).unwrap();
        assert!((f - 0.3).abs() < 1e-12);
        assert_eq!(
            h.between_fraction(&Value::Int(4), &Value::Int(2)),
            Some(0.0)
        );
    }

    #[test]
    fn high_cardinality_strings_go_opaque_not_wrong() {
        let mut h = EquiDepthHistogram::new(8);
        for i in 0..100 {
            h.update(&Value::str(format!("payload-{i}")), 1);
        }
        assert_eq!(h.fraction(CmpOp::Eq, &Value::str("payload-1")), None);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn bucket_count_stays_bounded() {
        let mut h = EquiDepthHistogram::new(8);
        for i in 0..5000 {
            h.update(&Value::Int((i * 37) % 4001), 1);
        }
        if let Shape::Buckets(b) = &h.shape {
            assert!(b.len() <= 8, "bucket bound violated: {}", b.len());
        } else {
            panic!("expected bucket mode");
        }
    }

    #[test]
    fn empty_histogram_declines() {
        let h = EquiDepthHistogram::default();
        assert_eq!(h.fraction(CmpOp::Eq, &Value::Int(1)), None);
        assert_eq!(h.between_fraction(&Value::Int(0), &Value::Int(1)), None);
    }
}
