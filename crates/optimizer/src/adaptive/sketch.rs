//! KMV (k-minimum-values) distinct-count sketches over the in-tree SHA-1.
//!
//! The sketch keeps the `k` smallest 64-bit hashes of the values it has
//! seen, each with a signed multiplicity so deletions fold.  Below `k`
//! distinct values the count is **exact** (every hash is tracked); past
//! saturation the classic estimator `(k-1) / h_k` applies, where `h_k`
//! is the largest tracked hash normalized into `(0, 1]`.  Deletions are
//! graceful rather than perfect: retracting a tracked value frees its
//! slot, retracting an untracked one is a no-op, and a saturated sketch
//! whose tracked set shrinks keeps estimating from what remains — the
//! estimate degrades smoothly instead of going wrong.
//!
//! Hashing is the workspace's own [`orchestra_common::sha1`] over the
//! value's wire encoding, so the sketch is deterministic across runs and
//! platforms — a hard requirement for the byte-exact determinism gates.

use orchestra_common::{sha1, Value};
use std::collections::BTreeMap;

/// Default number of minimum hashes retained.
pub const DEFAULT_K: usize = 64;

/// A deterministic distinct-count sketch with signed multiplicities.
#[derive(Clone, Debug, PartialEq)]
pub struct KmvSketch {
    k: usize,
    /// The smallest hashes seen, each with its signed multiplicity.
    hashes: BTreeMap<u64, i64>,
    /// Has any hash ever been rejected or evicted?  Once true, the
    /// tracked set is a sample and the estimator takes over.
    saturated: bool,
}

/// The 64-bit hash of one value: the first eight bytes of the SHA-1 of
/// its wire encoding.
fn hash_value(value: &Value) -> u64 {
    let mut encoded = Vec::with_capacity(value.serialized_size());
    value.encode_to(&mut encoded);
    let digest = sha1::sha1(&encoded);
    u64::from_be_bytes(digest[..8].try_into().expect("sha1 digest is 20 bytes"))
}

impl Default for KmvSketch {
    fn default() -> Self {
        KmvSketch::new(DEFAULT_K)
    }
}

impl KmvSketch {
    /// A fresh sketch tracking the `k` smallest hashes.
    pub fn new(k: usize) -> KmvSketch {
        KmvSketch {
            k: k.max(2),
            hashes: BTreeMap::new(),
            saturated: false,
        }
    }

    /// Fold one value with a delta sign (`+1` insert, `-1` delete).
    pub fn update(&mut self, value: &Value, sign: i64) {
        if value.is_null() {
            return;
        }
        let h = hash_value(value);
        if sign > 0 {
            if let Some(count) = self.hashes.get_mut(&h) {
                *count += sign;
            } else if self.hashes.len() < self.k {
                self.hashes.insert(h, sign);
            } else {
                let largest = *self.hashes.keys().next_back().expect("k >= 2");
                if h < largest {
                    self.hashes.remove(&largest);
                    self.hashes.insert(h, sign);
                }
                self.saturated = true;
            }
        } else if let Some(count) = self.hashes.get_mut(&h) {
            *count += sign;
            if *count <= 0 {
                self.hashes.remove(&h);
            }
        }
    }

    /// The estimated number of distinct values, exact while unsaturated.
    pub fn distinct(&self) -> f64 {
        let tracked = self.hashes.len();
        if !self.saturated || tracked < 2 {
            return tracked as f64;
        }
        let largest = *self.hashes.keys().next_back().expect("tracked >= 2");
        // Normalize into (0, 1]; +1 keeps a zero hash off the origin.
        let h_k = (largest as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        ((tracked as f64 - 1.0) / h_k).max(tracked as f64)
    }

    /// Has the sketch ever rejected or evicted a hash (estimate mode)?
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut s = KmvSketch::new(64);
        for i in 0..50 {
            s.update(&Value::Int(i), 1);
            s.update(&Value::Int(i), 1); // duplicates do not inflate
        }
        assert!(!s.is_saturated());
        assert_eq!(s.distinct(), 50.0);
    }

    #[test]
    fn deletions_fold_exactly_below_k() {
        let mut s = KmvSketch::new(64);
        for i in 0..40 {
            s.update(&Value::Int(i), 1);
        }
        for i in 0..10 {
            s.update(&Value::Int(i), -1);
        }
        assert_eq!(s.distinct(), 30.0);
        // Deleting an unseen value is a no-op.
        s.update(&Value::Int(999), -1);
        assert_eq!(s.distinct(), 30.0);
    }

    #[test]
    fn saturated_estimate_stays_within_error_bounds() {
        // k = 64 gives an expected relative standard error of about
        // 1/sqrt(k-2) ~ 13%; the deterministic SHA-1 stream is pinned, so
        // a generous 35% bound can never flake.
        for n in [500i64, 2000, 10000] {
            let mut s = KmvSketch::new(64);
            for i in 0..n {
                s.update(&Value::Int(i), 1);
            }
            assert!(s.is_saturated());
            let est = s.distinct();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.35, "n={n}: estimate {est:.0}, error {err:.3}");
        }
    }

    #[test]
    fn estimates_are_deterministic_and_type_sensitive() {
        let build = |n: i64| {
            let mut s = KmvSketch::new(16);
            for i in 0..n {
                s.update(&Value::str(format!("v{i}")), 1);
            }
            s.distinct()
        };
        assert_eq!(build(1000), build(1000));
        // Int(1) and Str("1") encode differently and hash apart.
        let mut s = KmvSketch::new(16);
        s.update(&Value::Int(1), 1);
        s.update(&Value::str("1"), 1);
        assert_eq!(s.distinct(), 2.0);
    }

    #[test]
    fn saturated_deletions_degrade_gracefully() {
        let mut s = KmvSketch::new(8);
        for i in 0..100 {
            s.update(&Value::Int(i), 1);
        }
        let before = s.distinct();
        assert!(before > 8.0);
        // Retract values until tracked slots free up: the estimate keeps
        // answering and never goes negative or NaN.
        for i in 0..100 {
            s.update(&Value::Int(i), -1);
        }
        let after = s.distinct();
        assert!(after.is_finite() && after >= 0.0);
        assert!(after <= before);
    }
}
