//! Adaptive statistics: incrementally-maintained histograms and
//! sketches, drift-triggered re-optimization, and measured-traffic
//! feedback.
//!
//! The base [`Statistics`] snapshot carries one cardinality per relation
//! and catalog-derived column widths — enough to compile a first plan,
//! blind to everything execution later reveals.  This module closes the
//! loop:
//!
//! ```text
//!   publication delta ──▶ AdaptiveStats::absorb   (histograms, KMV
//!         │                                        sketches, widths,
//!         │                                        delta-size EWMA)
//!         ▼
//!   overlay() ──▶ richer Statistics ──▶ compile / compile_delta_legs_with
//!         │                                   │
//!         ▼                                   ▼
//!   DriftMonitor::observe ──fire──▶ recompile legs, rebase
//!         ▲                                   │
//!         │                                   ▼
//!   CostFeedback::observe_* ◀── measured QueryReport bytes & rows
//! ```
//!
//! [`AdaptiveStats::absorb`] folds the **same signed deltas** the IVM
//! path derives — it reads [`DistributedStorage::delta`], which memoizes
//! per `(relation, from, to)` interval, so statistics maintenance after a
//! registry refresh is a memo hit, never a second derivation and never a
//! base-relation rescan.

pub mod drift;
pub mod feedback;
pub mod histogram;
pub mod sketch;

pub use drift::{DriftConfig, DriftMonitor};
pub use feedback::{CostChannel, CostFeedback};
pub use histogram::EquiDepthHistogram;
pub use sketch::KmvSketch;

use crate::stats::Statistics;
use orchestra_common::{Epoch, Result, Tuple};
use orchestra_storage::DistributedStorage;
use std::collections::BTreeMap;

/// EWMA smoothing factor for per-relation delta-size estimates.
const DELTA_EWMA_ALPHA: f64 = 0.3;

/// The maintained summaries of one column.
#[derive(Clone, Debug)]
struct ColumnObs {
    histogram: EquiDepthHistogram,
    sketch: KmvSketch,
    /// Signed sum of observed serialized value sizes, and the signed row
    /// count behind it — their ratio is the observed mean width.
    width_sum: f64,
    width_rows: i64,
}

impl ColumnObs {
    fn new() -> ColumnObs {
        ColumnObs {
            histogram: EquiDepthHistogram::default(),
            sketch: KmvSketch::default(),
            width_sum: 0.0,
            width_rows: 0,
        }
    }

    fn fold(&mut self, value: &orchestra_common::Value, sign: i64) {
        self.histogram.update(value, sign);
        self.sketch.update(value, sign);
        self.width_sum += sign as f64 * value.serialized_size() as f64;
        self.width_rows += sign;
    }

    fn mean_width(&self) -> Option<f64> {
        if self.width_rows > 0 && self.width_sum > 0.0 {
            Some(self.width_sum / self.width_rows as f64)
        } else {
            None
        }
    }
}

/// Incrementally-maintained per-relation statistics, fed exclusively by
/// signed publication deltas.
#[derive(Clone, Debug, Default)]
pub struct AdaptiveStats {
    relations: BTreeMap<String, Vec<ColumnObs>>,
    delta_ewma: BTreeMap<String, f64>,
}

impl AdaptiveStats {
    /// Fresh, empty state: overlays are identity until deltas arrive.
    pub fn new() -> AdaptiveStats {
        AdaptiveStats::default()
    }

    /// Fold the signed delta of every relation that changed in
    /// `(from, to]` into the maintained summaries.  Reads the storage
    /// layer's memoized delta derivation, so absorbing after a registry
    /// refresh of the same interval derives nothing new.  Returns the
    /// total signed rows folded.
    pub fn absorb(
        &mut self,
        storage: &DistributedStorage,
        from: Epoch,
        to: Epoch,
    ) -> Result<usize> {
        let mut folded = 0;
        for relation in storage.changed_relations(from, to) {
            let delta = storage.delta(&relation, from, to)?;
            let signed_rows = delta.signed_row_count();
            folded += signed_rows;
            let ewma = self.delta_ewma.entry(relation.clone()).or_insert(0.0);
            *ewma = if *ewma == 0.0 {
                signed_rows as f64
            } else {
                (1.0 - DELTA_EWMA_ALPHA) * *ewma + DELTA_EWMA_ALPHA * signed_rows as f64
            };
            let columns = self.relations.entry(relation).or_default();
            for partition in &delta.partitions {
                for tuple in &partition.inserts {
                    fold_tuple(columns, tuple, 1);
                }
                for tuple in &partition.deletes {
                    fold_tuple(columns, tuple, -1);
                }
                for (old, new) in &partition.modifies {
                    fold_tuple(columns, old, -1);
                    fold_tuple(columns, new, 1);
                }
            }
        }
        Ok(folded)
    }

    /// A copy of `base` enriched with everything the deltas taught us:
    /// per-column histograms and distinct counts attached, and observed
    /// mean widths replacing the catalog's fixed per-type guesses.
    /// Relations and columns never observed pass through untouched.
    pub fn overlay(&self, base: &Statistics) -> Statistics {
        let mut stats = base.clone();
        for (name, columns) in &self.relations {
            let Some(table) = stats.table_mut(name) else {
                continue;
            };
            for (i, obs) in columns.iter().enumerate() {
                if i >= table.arity {
                    break;
                }
                if let Some(width) = obs.mean_width() {
                    table.column_widths[i] = width;
                }
                if obs.histogram.total() > 0 {
                    table.histograms[i] = Some(obs.histogram.clone());
                }
                let distinct = obs.sketch.distinct();
                if distinct > 0.0 {
                    table.distinct_counts[i] = Some(distinct);
                }
            }
        }
        stats
    }

    /// The observed per-relation delta-size estimate (EWMA of signed row
    /// counts), rounded for use as a what-if cardinality.  Relations
    /// never observed are absent — leg compilation keeps its cold-start
    /// nominal default for those.
    pub fn delta_rows_estimate(&self) -> BTreeMap<String, usize> {
        self.delta_ewma
            .iter()
            .filter(|(_, e)| **e > 0.0)
            .map(|(name, e)| (name.clone(), (e.round() as usize).max(1)))
            .collect()
    }

    /// Has any delta been absorbed for `relation`?
    pub fn observed(&self, relation: &str) -> bool {
        self.relations.contains_key(relation)
    }
}

/// Fold one signed tuple into the per-column summaries, growing the
/// column list to the tuple's arity on first contact.
fn fold_tuple(columns: &mut Vec<ColumnObs>, tuple: &Tuple, sign: i64) {
    while columns.len() < tuple.arity() {
        columns.push(ColumnObs::new());
    }
    for (i, obs) in columns.iter_mut().enumerate().take(tuple.arity()) {
        obs.fold(tuple.value(i), sign);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::{ColumnType, NodeId, Relation, Schema, Value};
    use orchestra_storage::{StorageConfig, UpdateBatch};
    use orchestra_substrate::{AllocationScheme, RoutingTable};

    fn storage() -> DistributedStorage {
        let routing = RoutingTable::build(
            &(0..4).map(NodeId).collect::<Vec<_>>(),
            AllocationScheme::Balanced,
            3,
        );
        let mut s = DistributedStorage::new(routing, StorageConfig::default());
        s.register_relation(Relation::partitioned(
            "R",
            Schema::keyed_on_first(vec![
                ("k", ColumnType::Int),
                ("flag", ColumnType::Str),
                ("x", ColumnType::Int),
            ]),
        ));
        s
    }

    fn row(k: i64, flag: &str, x: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::str(flag), Value::Int(x)])
    }

    #[test]
    fn absorb_builds_histograms_and_widths_from_deltas_only() {
        let mut s = storage();
        let e0 = s.publish(&UpdateBatch::new()).unwrap();
        let mut b = UpdateBatch::new();
        for k in 0..200 {
            b.insert("R", row(k, if k % 4 == 0 { "HOT" } else { "COLD" }, k % 50));
        }
        let e1 = s.publish(&b).unwrap();

        let mut adaptive = AdaptiveStats::new();
        let folded = adaptive.absorb(&s, e0, e1).unwrap();
        assert_eq!(folded, 200);

        let base = Statistics::collect(&s, e1);
        let enriched = adaptive.overlay(&base);
        let table = enriched.table("R").unwrap();
        // The flag column observed ~4-5 byte strings, far from the
        // catalog's 30-byte guess.
        assert!(table.column_widths[1] < 15.0, "{}", table.column_widths[1]);
        // The histogram sees the exact 1-in-4 equality fraction.
        let hist = table.histograms[1].as_ref().unwrap();
        let frac = hist
            .fraction(orchestra_engine::CmpOp::Eq, &Value::str("HOT"))
            .unwrap();
        assert!((frac - 0.25).abs() < 1e-12);
        // Distinct counts: 200 keys, 2 flags, 50 x-values.
        assert_eq!(table.distinct_counts[1], Some(2.0));
        assert_eq!(table.distinct_counts[2], Some(50.0));
        // The base snapshot itself is untouched.
        assert!(base.table("R").unwrap().histograms[1].is_none());
    }

    #[test]
    fn absorb_folds_retractions_and_tracks_delta_ewma() {
        let mut s = storage();
        let e0 = s.publish(&UpdateBatch::new()).unwrap();
        let mut b0 = UpdateBatch::new();
        for k in 0..100 {
            b0.insert("R", row(k, "A", k));
        }
        let e1 = s.publish(&b0).unwrap();
        let mut adaptive = AdaptiveStats::new();
        adaptive.absorb(&s, e0, e1).unwrap();

        let mut b1 = UpdateBatch::new();
        for k in 0..10 {
            b1.delete("R", vec![Value::Int(k)]);
        }
        let e2 = s.publish(&b1).unwrap();
        adaptive.absorb(&s, e1, e2).unwrap();

        let base = Statistics::collect(&s, e2);
        let table = adaptive.overlay(&base).table("R").unwrap().clone();
        assert_eq!(table.histograms[0].as_ref().unwrap().total(), 90);

        // EWMA: seeded at 100, then pulled toward the 10-row delta.
        let est = adaptive.delta_rows_estimate();
        let r = est["R"];
        assert!(r < 100 && r > 10, "EWMA between the two deltas: {r}");
    }

    #[test]
    fn absorb_after_a_prior_consumer_is_a_memo_hit() {
        let mut s = storage();
        let mut b0 = UpdateBatch::new();
        for k in 0..50 {
            b0.insert("R", row(k, "A", k));
        }
        let e1 = s.publish(&b0).unwrap();
        let mut b1 = UpdateBatch::new();
        b1.insert("R", row(900, "B", 1));
        let e2 = s.publish(&b1).unwrap();

        // A first consumer (standing in for the registry refresh)
        // derives the interval.
        s.delta("R", e1, e2).unwrap();
        let before = s.delta_derivations();
        let mut adaptive = AdaptiveStats::new();
        adaptive.absorb(&s, e1, e2).unwrap();
        assert_eq!(
            s.delta_derivations(),
            before,
            "statistics maintenance must ride the memoized derivation"
        );
        assert!(adaptive.observed("R"));
    }

    #[test]
    fn unchanged_relations_are_skipped_entirely() {
        let mut s = storage();
        let e0 = s.publish(&UpdateBatch::new()).unwrap();
        let mut b0 = UpdateBatch::new();
        b0.insert("R", row(1, "A", 1));
        let e1 = s.publish(&b0).unwrap();
        let mut adaptive = AdaptiveStats::new();
        let folded = adaptive.absorb(&s, e0, e1).unwrap();
        assert_eq!(folded, 1);
        let folded = adaptive.absorb(&s, e1, e1).unwrap();
        assert_eq!(folded, 0, "an empty interval folds nothing");
    }
}
