//! Measured-vs-predicted feedback into the cost model.
//!
//! Every executed plan yields ground truth the estimator never had:
//! actual shipped bytes ([`QueryReport::total_bytes`]) and actual output
//! cardinalities.  [`CostFeedback`] folds both back in:
//!
//! * **Byte calibration** is kept *per channel* — ad-hoc plans,
//!   incremental delta legs, and full recomputations systematically err
//!   in different directions (a delta leg pays per-batch framing that
//!   dwarfs its few rows; a broadcast duplicates CPU at every node; a
//!   recompute amortizes both).  One global ratio would scale both sides
//!   of every incremental-vs-recompute comparison identically and move
//!   no decision at all; per-channel EWMA ratios are what let the
//!   predicted crossover migrate toward the measured one.
//! * **Cardinality calibration** keeps a *signed* EWMA of
//!   `log2(actual / predicted)` over observed output row counts —
//!   estimators err multiplicatively and consistently (a join formula
//!   that overshoots once overshoots every epoch), so the learned
//!   log-ratio applied to the next prediction
//!   ([`CostFeedback::calibrate_rows`]) cancels the bias.  The
//!   **cardinality error** is then a first-class number: an EWMA of the
//!   *calibrated* prediction's `|log2(actual / predicted)|`, the figure
//!   the adaptivity experiment requires to shrink as feedback
//!   accumulates.
//! * **Broadcast enablement**: once enough ad-hoc observations have
//!   calibrated the model, [`CostFeedback::planner_options`] turns
//!   [`PlannerOptions::broadcast_joins`] on for ad-hoc compilation — the
//!   cautious default stays until the model has earned trust.
//!
//! [`QueryReport::total_bytes`]: orchestra_engine::QueryReport

use crate::planner::PlannerOptions;

/// Which execution path produced an observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostChannel {
    /// An ad-hoc (freshly compiled, full-input) query plan.
    Adhoc,
    /// An incremental maintenance refresh (sum of its delta legs).
    Incremental,
    /// A full recomputation of a maintenance plan.
    Recompute,
}

impl CostChannel {
    fn index(self) -> usize {
        match self {
            CostChannel::Adhoc => 0,
            CostChannel::Incremental => 1,
            CostChannel::Recompute => 2,
        }
    }
}

/// One channel's running calibration.
#[derive(Clone, Copy, Debug)]
struct Channel {
    /// EWMA of `actual / predicted` bytes; 1.0 until observed.
    ratio: f64,
    samples: u64,
}

/// Ad-hoc observations required before broadcast joins are trusted for
/// ad-hoc plans.
const BROADCAST_MIN_SAMPLES: u64 = 3;

/// EWMA smoothing factor for all feedback signals.
const ALPHA: f64 = 0.3;

/// The feedback state folding measured traffic and cardinalities back
/// into the cost model.
#[derive(Clone, Debug)]
pub struct CostFeedback {
    channels: [Channel; 3],
    cardinality_error_ewma: f64,
    /// Signed EWMA of `log2((actual + 1) / (predicted + 1))` — the
    /// estimator's learned multiplicative bias, in bits.
    rows_log_ratio: f64,
    cardinality_samples: u64,
}

impl Default for CostFeedback {
    fn default() -> Self {
        CostFeedback::new()
    }
}

impl CostFeedback {
    /// Fresh feedback state: every ratio 1.0, no samples.
    pub fn new() -> CostFeedback {
        CostFeedback {
            channels: [Channel {
                ratio: 1.0,
                samples: 0,
            }; 3],
            cardinality_error_ewma: 0.0,
            rows_log_ratio: 0.0,
            cardinality_samples: 0,
        }
    }

    /// Fold one measured byte count against its prediction.
    pub fn observe_bytes(&mut self, channel: CostChannel, predicted: f64, actual: f64) {
        if predicted <= 0.0 || !predicted.is_finite() || !actual.is_finite() {
            return;
        }
        let c = &mut self.channels[channel.index()];
        let observed = actual / predicted;
        c.ratio = if c.samples == 0 {
            observed
        } else {
            (1.0 - ALPHA) * c.ratio + ALPHA * observed
        };
        c.samples += 1;
    }

    /// A predicted byte count corrected by the channel's learned ratio.
    pub fn calibrate(&self, channel: CostChannel, predicted: f64) -> f64 {
        predicted * self.channels[channel.index()].ratio
    }

    /// The channel's learned `actual / predicted` ratio (1.0 unobserved).
    pub fn ratio(&self, channel: CostChannel) -> f64 {
        self.channels[channel.index()].ratio
    }

    /// Observations folded into the channel.
    pub fn samples(&self, channel: CostChannel) -> u64 {
        self.channels[channel.index()].samples
    }

    /// Fold one measured output cardinality against its prediction.
    ///
    /// The error EWMA scores the prediction *after* the bias learned
    /// from earlier observations ([`Self::calibrate_rows`]) — the
    /// number the adaptive loop actually acts on — then folds this
    /// observation's raw ratio into the bias, so a consistently skewed
    /// estimator converges toward zero error.
    pub fn observe_rows(&mut self, predicted: f64, actual: f64) {
        if !predicted.is_finite() || !actual.is_finite() || actual < 0.0 {
            return;
        }
        let calibrated = self.calibrate_rows(predicted);
        let err = ((actual + 1.0) / (calibrated + 1.0)).log2().abs();
        let raw = ((actual + 1.0) / (predicted.max(0.0) + 1.0)).log2();
        if self.cardinality_samples == 0 {
            self.cardinality_error_ewma = err;
            self.rows_log_ratio = raw;
        } else {
            self.cardinality_error_ewma = (1.0 - ALPHA) * self.cardinality_error_ewma + ALPHA * err;
            self.rows_log_ratio = (1.0 - ALPHA) * self.rows_log_ratio + ALPHA * raw;
        }
        self.cardinality_samples += 1;
    }

    /// A predicted output cardinality corrected by the learned signed
    /// log-ratio bias (the identity until the first observation).
    pub fn calibrate_rows(&self, predicted: f64) -> f64 {
        if self.cardinality_samples == 0 {
            return predicted.max(0.0);
        }
        ((predicted.max(0.0) + 1.0) * self.rows_log_ratio.exp2() - 1.0).max(0.0)
    }

    /// The running predicted-vs-actual cardinality error: an EWMA of
    /// the calibrated prediction's `|log2(actual / predicted)|`
    /// (0.0 = perfect).
    pub fn cardinality_error(&self) -> f64 {
        self.cardinality_error_ewma
    }

    /// Cardinality observations folded so far.
    pub fn cardinality_samples(&self) -> u64 {
        self.cardinality_samples
    }

    /// Has the ad-hoc channel seen enough traffic to trust broadcast
    /// joins in ad-hoc plans?
    pub fn broadcast_ready(&self) -> bool {
        self.channels[CostChannel::Adhoc.index()].samples >= BROADCAST_MIN_SAMPLES
    }

    /// The planner options ad-hoc compilation should use right now:
    /// defaults until calibrated, broadcast joins once
    /// [`Self::broadcast_ready`].
    pub fn planner_options(&self) -> PlannerOptions {
        PlannerOptions {
            broadcast_joins: self.broadcast_ready(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_calibrate_independently() {
        let mut f = CostFeedback::new();
        // Incremental legs ship 3x the prediction, recomputes 0.8x.
        f.observe_bytes(CostChannel::Incremental, 100.0, 300.0);
        f.observe_bytes(CostChannel::Recompute, 1000.0, 800.0);
        assert!((f.ratio(CostChannel::Incremental) - 3.0).abs() < 1e-12);
        assert!((f.ratio(CostChannel::Recompute) - 0.8).abs() < 1e-12);
        assert_eq!(f.ratio(CostChannel::Adhoc), 1.0);
        // The calibrated crossover moves: a raw tie (100 vs 100) becomes
        // a 300-vs-80 recompute win after calibration.
        let inc = f.calibrate(CostChannel::Incremental, 100.0);
        let rec = f.calibrate(CostChannel::Recompute, 100.0);
        assert!(rec < inc);
    }

    #[test]
    fn first_sample_seeds_then_ewma_smooths() {
        let mut f = CostFeedback::new();
        f.observe_bytes(CostChannel::Adhoc, 100.0, 200.0);
        assert_eq!(f.ratio(CostChannel::Adhoc), 2.0);
        f.observe_bytes(CostChannel::Adhoc, 100.0, 100.0);
        let r = f.ratio(CostChannel::Adhoc);
        assert!(r < 2.0 && r > 1.0, "smoothed between samples: {r}");
    }

    #[test]
    fn cardinality_error_shrinks_under_consistent_estimator_bias() {
        // The estimator overshoots by ~100x every single time — the
        // realistic failure mode.  The learned log-ratio cancels the
        // bias, so the calibrated error converges toward zero even
        // though the raw predictions never improve.
        let mut f = CostFeedback::new();
        f.observe_rows(1000.0, 10.0);
        let cold = f.cardinality_error();
        assert!(
            cold > 6.0,
            "uncalibrated first error is the raw one: {cold}"
        );
        for _ in 0..10 {
            f.observe_rows(1000.0, 10.0);
        }
        assert!(
            f.cardinality_error() < cold * 0.2,
            "{}",
            f.cardinality_error()
        );
        assert_eq!(f.cardinality_samples(), 11);
        // And the calibrated prediction itself lands near the truth.
        let calibrated = f.calibrate_rows(1000.0);
        assert!((calibrated - 10.0).abs() < 5.0, "{calibrated}");
    }

    #[test]
    fn rows_calibration_is_identity_until_observed_and_ignores_garbage() {
        let mut f = CostFeedback::new();
        assert_eq!(f.calibrate_rows(500.0), 500.0);
        f.observe_rows(f64::NAN, 10.0);
        f.observe_rows(10.0, f64::INFINITY);
        f.observe_rows(10.0, -3.0);
        assert_eq!(f.cardinality_samples(), 0);
        assert_eq!(f.calibrate_rows(500.0), 500.0);
    }

    #[test]
    fn broadcast_turns_on_only_after_enough_adhoc_samples() {
        let mut f = CostFeedback::new();
        assert!(!f.planner_options().broadcast_joins);
        for _ in 0..BROADCAST_MIN_SAMPLES {
            f.observe_bytes(CostChannel::Adhoc, 50.0, 55.0);
        }
        assert!(f.planner_options().broadcast_joins);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut f = CostFeedback::new();
        f.observe_bytes(CostChannel::Adhoc, 0.0, 100.0);
        f.observe_bytes(CostChannel::Adhoc, -5.0, 100.0);
        f.observe_bytes(CostChannel::Adhoc, 100.0, f64::NAN);
        assert_eq!(f.samples(CostChannel::Adhoc), 0);
        assert_eq!(f.ratio(CostChannel::Adhoc), 1.0);
    }
}
