//! TPC-H Q3 and Q6 correctness, failure-free and under mid-query
//! failures: the distributed answer — with one node killed mid-query and
//! recovered under both Section V-D strategies — must equal a
//! straightforward single-node computation over the generated relations,
//! tuple for tuple.

use orchestra_common::NodeId;
use orchestra_engine::{EngineConfig, FailureSpec, QueryExecutor, QueryReport, RecoveryStrategy};
use orchestra_simnet::SimTime;
use orchestra_workloads::{deploy, TpchQuery, TpchWorkload, Workload};

const NODES: u16 = 6;
const INITIATOR: NodeId = NodeId(0);
const VICTIM: NodeId = NodeId(4);

fn config(strategy: RecoveryStrategy) -> EngineConfig {
    EngineConfig {
        strategy,
        ..EngineConfig::default()
    }
}

/// Run `workload` failure-free, then once per strategy with `VICTIM`
/// killed halfway through the baseline running time, asserting every
/// answer equals the single-node reference.
fn assert_matches_reference_under_failures(workload: &dyn Workload) -> QueryReport {
    let (storage, epoch) = deploy(workload, NODES).unwrap();
    let expected = workload.reference();
    assert!(
        !expected.is_empty(),
        "{}: the reference answer must not be vacuous",
        workload.name()
    );

    let plan = workload.reference_plan();
    let baseline = QueryExecutor::new(&storage, EngineConfig::default())
        .execute(&plan, epoch, INITIATOR)
        .unwrap();
    assert_eq!(
        baseline.rows,
        expected,
        "{}: failure-free answer must match the reference",
        workload.name()
    );

    let failure = FailureSpec::at_time(
        VICTIM,
        SimTime::from_micros(baseline.running_time.as_micros() / 2),
    );
    for strategy in [RecoveryStrategy::Restart, RecoveryStrategy::Incremental] {
        let report = QueryExecutor::new(&storage, config(strategy))
            .execute_with_failure(&plan, epoch, INITIATOR, failure)
            .unwrap();
        assert!(
            report.recovered,
            "{} under {strategy:?}: the failure must actually bite",
            workload.name()
        );
        assert_eq!(
            report.rows,
            expected,
            "{} under {strategy:?}: recovered answer must match the reference",
            workload.name()
        );
        assert!(
            report.running_time > baseline.running_time,
            "{} under {strategy:?}: recovery cannot be free",
            workload.name()
        );
    }
    baseline
}

#[test]
fn q3_distributed_equals_reference_with_and_without_failure() {
    let workload = TpchWorkload::scaled(TpchQuery::Q3, 21, 400);
    let baseline = assert_matches_reference_under_failures(&workload);
    // Q3's two joins rehash on non-partitioning keys, so real data must
    // have crossed the wire.
    assert!(baseline.total_bytes > 0);
}

#[test]
fn q6_distributed_equals_reference_with_and_without_failure() {
    let workload = TpchWorkload::scaled(TpchQuery::Q6, 23, 400);
    let baseline = assert_matches_reference_under_failures(&workload);
    // Q6 returns a single ungrouped revenue row.
    assert_eq!(baseline.rows.len(), 1);
}
