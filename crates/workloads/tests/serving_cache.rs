//! End-to-end soundness of the epoch-keyed result cache over the real
//! catalogue: every workload's cached answer must equal a fresh run, a
//! publication must force re-execution (no stale epoch ever served), a
//! capacity-squeezed cache must evict without corrupting its
//! accounting, and an answer recovered from a mid-query node failure
//! must be the one later hits return.

use orchestra_common::NodeId;
use orchestra_engine::{
    AdmissionPolicy, EngineConfig, EvictionPolicy, FailureSpec, QuerySession, ResultCache,
    SchedulerConfig, SessionScheduler,
};
use orchestra_optimizer::{estimate_plan_cost, fingerprint, Statistics};
use orchestra_simnet::SimTime;
use orchestra_workloads::{deploy, deploy_all, epoch_stream, mixed_stream, EpochSpec, Workload};

const NODES: u16 = 6;

fn build_sessions(
    workloads: &[&dyn Workload],
    storage: &orchestra_storage::DistributedStorage,
    epoch: orchestra_common::Epoch,
) -> Vec<QuerySession> {
    let stats = Statistics::collect(storage, epoch);
    workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let plan = orchestra_optimizer::compile(&w.logical(), &stats).unwrap();
            let cost = estimate_plan_cost(&plan, &stats).unwrap().total();
            QuerySession {
                name: w.name(),
                plan,
                epoch,
                initiator: NodeId((i % NODES as usize) as u16),
                arrival: SimTime::ZERO,
                fingerprint: Some(fingerprint(&w.logical())),
                estimated_cost: cost,
                overrides: Default::default(),
                plan_resident: false,
            }
        })
        .collect()
}

fn scheduler(queue: usize) -> SessionScheduler {
    SessionScheduler::new(SchedulerConfig {
        max_concurrent: 2,
        queue_capacity: queue,
        policy: AdmissionPolicy::Fifo,
        slo: None,
    })
}

/// Every catalogue workload, served cold then warm: the warm answer
/// must come from the cache and equal both the cold answer and the
/// single-node reference.
#[test]
fn every_cached_catalogue_answer_equals_a_fresh_run() {
    let catalogue = mixed_stream(23, 120, 1);
    let workloads: Vec<&dyn Workload> = catalogue.iter().map(|w| w.as_ref()).collect();
    let (storage, epoch) = deploy_all(&workloads, NODES).unwrap();
    let sessions = build_sessions(&workloads, &storage, epoch);
    let scheduler = scheduler(sessions.len());
    let mut cache = ResultCache::new(sessions.len(), EvictionPolicy::Lru);
    let config = EngineConfig::default();

    let cold = scheduler
        .run_serving(&storage, &config, &sessions, &mut cache)
        .unwrap();
    assert_eq!(cold.cache.hits, 0);
    assert_eq!(cold.cache.insertions, workloads.len() as u64);

    let warm = scheduler
        .run_serving(&storage, &config, &sessions, &mut cache)
        .unwrap();
    assert_eq!(warm.cache.hits, workloads.len() as u64);
    assert!(warm.cache.bytes_saved > 0);
    assert_eq!(warm.total_bytes, 0, "a fully warm run ships nothing");
    for (i, sr) in warm.sessions.iter().enumerate() {
        assert!(sr.served_from_cache, "{} must hit", sr.name);
        assert_eq!(sr.latency, SimTime::ZERO);
        assert_eq!(
            sr.report.rows, cold.sessions[i].report.rows,
            "{}: cached answer differs from the fresh run",
            sr.name
        );
        assert_eq!(
            sr.report.rows,
            workloads[i].reference(),
            "{}: cached answer differs from the reference",
            sr.name
        );
    }
}

/// A publication bumps the epoch key: a warm cache for the old epoch
/// must not answer the new one — the query re-executes and returns the
/// *post-delta* answer.
#[test]
fn a_publication_forces_reexecution_never_a_stale_answer() {
    let workload = orchestra_workloads::CopyScenario { seed: 9, rows: 100 };
    let (mut storage, e0) = deploy(&workload, NODES).unwrap();
    let w: [&dyn Workload; 1] = [&workload];
    let sessions = build_sessions(&w, &storage, e0);
    let scheduler = scheduler(1);
    let mut cache = ResultCache::new(4, EvictionPolicy::Lru);
    let config = EngineConfig::default();

    let cold = scheduler
        .run_serving(&storage, &config, &sessions, &mut cache)
        .unwrap();
    assert_eq!(cold.sessions[0].report.rows, workload.reference());

    // Publish a delta epoch; the answer changes.
    let stream = epoch_stream(&workload, 5, &[EpochSpec::new(4, 2, 1)]).unwrap();
    let e1 = storage.publish(stream.batch(0)).unwrap();
    assert_ne!(
        stream.reference(0),
        workload.reference(),
        "the delta must change the answer for this test to bite"
    );

    let sessions_e1 = build_sessions(&w, &storage, e1);
    let fresh = scheduler
        .run_serving(&storage, &config, &sessions_e1, &mut cache)
        .unwrap();
    let sr = &fresh.sessions[0];
    assert!(!sr.served_from_cache, "a new epoch must miss");
    assert_eq!(
        sr.report.rows,
        stream.reference(0),
        "the re-executed answer must reflect the publication"
    );
    // Both epochs now coexist under distinct keys: the old epoch still
    // hits with the *old* answer, the new one with the new.
    let warm_old = scheduler
        .run_serving(&storage, &config, &sessions, &mut cache)
        .unwrap();
    assert!(warm_old.sessions[0].served_from_cache);
    assert_eq!(warm_old.sessions[0].report.rows, workload.reference());
    let warm_new = scheduler
        .run_serving(&storage, &config, &sessions_e1, &mut cache)
        .unwrap();
    assert!(warm_new.sessions[0].served_from_cache);
    assert_eq!(warm_new.sessions[0].report.rows, stream.reference(0));
}

/// A cache squeezed far below the distinct-query universe must keep its
/// books straight while evicting: sizes bounded, counters additive, and
/// every answer — hit or re-executed after eviction — still correct.
#[test]
fn eviction_under_capacity_pressure_never_corrupts_accounting() {
    let catalogue = mixed_stream(23, 100, 1);
    let workloads: Vec<&dyn Workload> = catalogue.iter().map(|w| w.as_ref()).collect();
    let (storage, epoch) = deploy_all(&workloads, NODES).unwrap();
    let sessions = build_sessions(&workloads, &storage, epoch);
    let scheduler = scheduler(sessions.len());
    let config = EngineConfig::default();

    for policy in [EvictionPolicy::Lru, EvictionPolicy::CostAware] {
        let mut cache = ResultCache::new(2, policy);
        for round in 0..3 {
            let report = scheduler
                .run_serving(&storage, &config, &sessions, &mut cache)
                .unwrap();
            for (i, sr) in report.sessions.iter().enumerate() {
                assert_eq!(
                    sr.report.rows,
                    workloads[i].reference(),
                    "{policy:?} round {round}: {} answer",
                    sr.name
                );
            }
            assert!(
                cache.len() <= 2,
                "{policy:?}: capacity must bound the cache"
            );
        }
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            15,
            "{policy:?}: 3 rounds × 5 lookups"
        );
        assert_eq!(
            stats.insertions,
            stats.evictions + cache.len() as u64,
            "{policy:?}: every insertion is either resident or evicted"
        );
        assert!(stats.evictions > 0, "{policy:?}: pressure must evict");
        let entry_hits: u64 = cache.entries().iter().map(|e| e.hits).sum();
        assert!(
            entry_hits <= stats.hits,
            "{policy:?}: resident per-entry hits cannot exceed lifetime hits"
        );
    }
}

/// A node failure mid-query must not poison the cache: the fill happens
/// only after recovery completes, so the very next request hits and
/// returns the recovered (correct) answer with zero latency.
#[test]
fn a_hit_after_a_mid_query_failure_returns_the_recovered_answer() {
    let workload =
        orchestra_workloads::TpchWorkload::scaled(orchestra_workloads::TpchQuery::Q6, 23, 160);
    let (storage, epoch) = deploy(&workload, NODES).unwrap();
    let w: [&dyn Workload; 1] = [&workload];
    let sessions = build_sessions(&w, &storage, epoch);
    let scheduler = scheduler(1);
    let config = EngineConfig::default();

    // A failure-free run fixes the makespan the failure lands inside.
    let baseline = scheduler.run(&storage, &config, &sessions).unwrap();
    let failure = FailureSpec::at_time(
        NodeId(NODES - 1), // never the initiator (sessions start at node 0)
        SimTime::from_micros(baseline.makespan.as_micros() / 2),
    );

    let mut cache = ResultCache::new(2, EvictionPolicy::Lru);
    let failed = scheduler
        .run_serving_with_failure(&storage, &config, &sessions, failure, &mut cache)
        .unwrap();
    assert!(
        failed.sessions[0].report.recovered,
        "the failure must actually interrupt the query"
    );
    assert_eq!(failed.sessions[0].report.rows, workload.reference());
    assert_eq!(
        failed.cache.insertions, 1,
        "only the recovered answer fills"
    );

    let warm = scheduler
        .run_serving(&storage, &config, &sessions, &mut cache)
        .unwrap();
    assert!(warm.sessions[0].served_from_cache);
    assert_eq!(warm.sessions[0].latency, SimTime::ZERO);
    assert_eq!(
        warm.sessions[0].report.rows,
        workload.reference(),
        "the hit must return the recovered answer"
    );
}
