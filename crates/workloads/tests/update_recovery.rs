//! Modify/Delete coverage for distributed queries under failure.
//!
//! The publication tests elsewhere are insert-dominated; here a
//! multi-epoch stream applies *modifies and deletes* to the TPC-H
//! relations and to the STBenchmark source, and the catalogue queries
//! must reproduce the per-epoch reference answers exactly — including
//! when a node dies mid-query, under both Section V-D recovery
//! strategies.  This pins down that superseded tuple versions are never
//! resurrected (a modify must not yield both the old and the new row)
//! and that deleted rows never leak back through a recovery rescan.

use orchestra_common::NodeId;
use orchestra_engine::{EngineConfig, FailureSpec, QueryExecutor, RecoveryStrategy};
use orchestra_simnet::SimTime;
use orchestra_storage::Update;
use orchestra_workloads::{
    compiled_plan, deploy, epoch_stream, CopyScenario, EpochSpec, TpchQuery, TpchWorkload, Workload,
};

const NODES: u16 = 6;
const VICTIM: NodeId = NodeId(4);
const INITIATOR: NodeId = NodeId(0);

/// Run `plan` at `epoch` three ways — failure-free, and with a
/// mid-query failure under each strategy — asserting all three equal
/// `expected`.
fn assert_exact_under_failures(
    storage: &orchestra_storage::DistributedStorage,
    plan: &orchestra_engine::PhysicalPlan,
    epoch: orchestra_common::Epoch,
    expected: &[orchestra_common::Tuple],
    context: &str,
) {
    let baseline = QueryExecutor::new(storage, EngineConfig::default())
        .execute(plan, epoch, INITIATOR)
        .unwrap();
    assert_eq!(baseline.rows, expected, "{context}: failure-free answer");
    let halfway = SimTime::from_micros(baseline.running_time.as_micros() / 2);
    for strategy in [RecoveryStrategy::Restart, RecoveryStrategy::Incremental] {
        let config = EngineConfig {
            strategy,
            ..EngineConfig::default()
        };
        let report = QueryExecutor::new(storage, config)
            .execute_with_failure(
                plan,
                epoch,
                INITIATOR,
                FailureSpec::at_time(VICTIM, halfway),
            )
            .unwrap();
        assert_eq!(
            report.rows, expected,
            "{context}: {strategy:?} after a mid-query failure"
        );
    }
}

#[test]
fn tpch_queries_survive_modify_delete_epochs_with_mid_query_failures() {
    // One dataset serves Q1 (aggregation), Q3 (joins) and Q6 (ungrouped
    // sum); the stream modifies and deletes rows of all three relations
    // every epoch.
    let q1 = TpchWorkload::scaled(TpchQuery::Q1, 31, 300);
    let q3 = TpchWorkload::scaled(TpchQuery::Q3, 31, 300);
    let q6 = TpchWorkload::scaled(TpchQuery::Q6, 31, 300);
    let (mut storage, base_epoch) = deploy(&q3, NODES).unwrap();
    let stream = epoch_stream(&q3, 7, &[EpochSpec::new(3, 12, 6); 3]).unwrap();

    for i in 0..stream.len() {
        let batch = stream.batch(i);
        // The coverage target: these batches are modify/delete-heavy.
        let kinds = |pred: fn(&Update) -> bool| {
            batch
                .relations()
                .flat_map(|r| batch.updates_for(r))
                .filter(|u| pred(u))
                .count()
        };
        assert_eq!(kinds(|u| matches!(u, Update::Modify(_))), 3 * 12);
        assert_eq!(kinds(|u| matches!(u, Update::Delete(_))), 3 * 6);

        let epoch = storage.publish(batch).unwrap();
        assert_eq!(epoch.0, base_epoch.0 + 1 + i as u64);
        for workload in [&q1 as &dyn Workload, &q3, &q6] {
            let plan = compiled_plan(workload, &storage, epoch).unwrap();
            let expected = workload.reference_for(stream.tables(i));
            assert_exact_under_failures(
                &storage,
                &plan,
                epoch,
                &expected,
                &format!("{} at epoch {epoch}", workload.name()),
            );
        }
    }

    // Sanity: the churn genuinely changed the answers epoch over epoch.
    assert_ne!(q3.reference_for(stream.tables(0)), q3.reference());
    assert_ne!(
        q3.reference_for(stream.tables(stream.len() - 1)),
        q3.reference_for(stream.tables(0))
    );
}

#[test]
fn superseded_and_deleted_rows_never_resurface_after_recovery() {
    // The Copy scenario ships every visible row, so a single resurrected
    // or leaked tuple version is immediately visible in the answer.
    let copy = CopyScenario { seed: 5, rows: 150 };
    let (mut storage, _) = deploy(&copy, NODES).unwrap();
    let stream = epoch_stream(&copy, 9, &[EpochSpec::new(0, 20, 10); 2]).unwrap();
    for i in 0..stream.len() {
        let epoch = storage.publish(stream.batch(i)).unwrap();
        let plan = compiled_plan(&copy, &storage, epoch).unwrap();
        let expected = copy.reference_for(stream.tables(i));
        assert_eq!(
            expected.len(),
            150 - 10 * (i + 1),
            "each epoch deletes 10 source rows"
        );
        assert_exact_under_failures(
            &storage,
            &plan,
            epoch,
            &expected,
            &format!("stbenchmark-copy at epoch {epoch}"),
        );
    }
}
