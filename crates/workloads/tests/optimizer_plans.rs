//! The optimizer path end to end: every workload's logical query,
//! compiled by the System-R planner against live coordinator statistics,
//! must execute to the exact single-node reference answer — failure-free
//! and with a node killed mid-query under both Section V-D recovery
//! strategies — and its estimated cost must never exceed the hand-built
//! oracle plan's under the shared network cost model.

use orchestra_common::{Epoch, NodeId};
use orchestra_engine::{EngineConfig, FailureSpec, PhysicalPlan, QueryExecutor, RecoveryStrategy};
use orchestra_optimizer::{estimate_plan_cost, Statistics};
use orchestra_simnet::SimTime;
use orchestra_storage::DistributedStorage;
use orchestra_workloads::{
    compiled_plan, deploy, ConcatenateScenario, CopyScenario, TpchQuery, TpchWorkload, Workload,
};

const NODES: u16 = 6;
const INITIATOR: NodeId = NodeId(0);
const VICTIM: NodeId = NodeId(4);

fn deploy_and_compile(workload: &dyn Workload) -> (DistributedStorage, Epoch, PhysicalPlan) {
    let (storage, epoch) = deploy(workload, NODES).unwrap();
    let plan = compiled_plan(workload, &storage, epoch).unwrap();
    (storage, epoch, plan)
}

/// Execute the optimizer-compiled plan failure-free and — when
/// `with_failures` — once per recovery strategy with `VICTIM` killed
/// halfway through the baseline, asserting every answer equals the
/// reference.  Also asserts the compiled plan's estimated cost is no
/// worse than the hand-built oracle's.
fn assert_compiled_plan_is_correct_and_no_costlier(workload: &dyn Workload, with_failures: bool) {
    let (storage, epoch, plan) = deploy_and_compile(workload);
    let expected = workload.reference();
    assert!(
        !expected.is_empty(),
        "{}: the reference answer must not be vacuous",
        workload.name()
    );

    let stats = Statistics::collect(&storage, epoch);
    let optimized_cost = estimate_plan_cost(&plan, &stats).unwrap();
    let hand_cost = estimate_plan_cost(&workload.reference_plan(), &stats).unwrap();
    assert!(
        optimized_cost.total() <= hand_cost.total(),
        "{}: optimizer chose a plan estimated at {} bytes, worse than the hand-built {} bytes:\n{}",
        workload.name(),
        optimized_cost.total(),
        hand_cost.total(),
        plan.render()
    );

    let baseline = QueryExecutor::new(&storage, EngineConfig::default())
        .execute(&plan, epoch, INITIATOR)
        .unwrap();
    assert_eq!(
        baseline.rows,
        expected,
        "{}: optimizer-compiled plan must reproduce the reference:\n{}",
        workload.name(),
        plan.render()
    );

    if !with_failures {
        return;
    }
    let failure = FailureSpec::at_time(
        VICTIM,
        SimTime::from_micros(baseline.running_time.as_micros() / 2),
    );
    for strategy in [RecoveryStrategy::Restart, RecoveryStrategy::Incremental] {
        let config = EngineConfig {
            strategy,
            ..EngineConfig::default()
        };
        let report = QueryExecutor::new(&storage, config)
            .execute_with_failure(&plan, epoch, INITIATOR, failure)
            .unwrap();
        assert!(
            report.recovered,
            "{} under {strategy:?}: the failure must actually bite",
            workload.name()
        );
        assert_eq!(
            report.rows,
            expected,
            "{} under {strategy:?}: recovered optimizer plan must match the reference:\n{}",
            workload.name(),
            plan.render()
        );
    }
}

#[test]
fn q1_compiled_plan_is_correct_under_failures_and_no_costlier() {
    let w = TpchWorkload::scaled(TpchQuery::Q1, 7, 300);
    assert_compiled_plan_is_correct_and_no_costlier(&w, true);
}

#[test]
fn q3_compiled_plan_is_correct_under_failures_and_no_costlier() {
    let w = TpchWorkload::scaled(TpchQuery::Q3, 21, 400);
    assert_compiled_plan_is_correct_and_no_costlier(&w, true);
}

#[test]
fn q6_compiled_plan_is_correct_under_failures_and_no_costlier() {
    let w = TpchWorkload::scaled(TpchQuery::Q6, 23, 400);
    assert_compiled_plan_is_correct_and_no_costlier(&w, true);
}

#[test]
fn stbenchmark_compiled_plans_are_correct_and_no_costlier() {
    let copy = CopyScenario {
        seed: 11,
        rows: 120,
    };
    let concat = ConcatenateScenario { seed: 13, rows: 80 };
    let workloads: [&dyn Workload; 2] = [&copy, &concat];
    for w in workloads {
        assert_compiled_plan_is_correct_and_no_costlier(w, false);
    }
}

#[test]
fn q3_compiled_plan_repartitions_less_than_the_hand_built_oracle() {
    // The hand-built Q3 plan rehashes both inputs of both joins (4
    // rehashes) and never prunes columns; the optimizer exploits the
    // relations' key partitioning and early projection, so it must come
    // out strictly cheaper under the shared cost model.
    let w = TpchWorkload::scaled(TpchQuery::Q3, 21, 400);
    let (storage, epoch, plan) = deploy_and_compile(&w);
    assert!(plan.rehash_count() < w.reference_plan().rehash_count());
    let stats = Statistics::collect(&storage, epoch);
    let optimized = estimate_plan_cost(&plan, &stats).unwrap();
    let hand = estimate_plan_cost(&w.reference_plan(), &stats).unwrap();
    assert!(
        optimized.total() < hand.total(),
        "optimized {} vs hand-built {}",
        optimized.total(),
        hand.total()
    );
}

#[test]
fn compilation_is_deterministic_against_live_statistics() {
    // Same workload, same deployed statistics: repeated compilations
    // must render byte-identically (System-R enumeration is ordered).
    let w = TpchWorkload::scaled(TpchQuery::Q3, 21, 400);
    let (storage, epoch) = deploy(&w, NODES).unwrap();
    let first = compiled_plan(&w, &storage, epoch).unwrap().render();
    for _ in 0..3 {
        let again = compiled_plan(&w, &storage, epoch).unwrap().render();
        assert_eq!(first, again);
    }
}
