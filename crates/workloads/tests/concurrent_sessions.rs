//! End-to-end coverage of the multi-query session scheduler over real
//! catalogue workloads: three concurrent optimizer-compiled sessions
//! (TPC-H Q3, TPC-H Q6, STBenchmark Copy) share one simulated cluster,
//! a node failure strikes mid-makespan, and every session must recover
//! to its exact single-node reference answer under both Section V-D
//! strategies.

use orchestra_common::NodeId;
use orchestra_engine::{
    AdmissionPolicy, EngineConfig, FailureSpec, QuerySession, RecoveryStrategy, SchedulerConfig,
    SessionScheduler,
};
use orchestra_optimizer::{estimate_plan_cost, Statistics};
use orchestra_simnet::SimTime;
use orchestra_workloads::{deploy_all, CopyScenario, TpchQuery, TpchWorkload, Workload};

const NODES: u16 = 6;
/// The victim is never an initiator (initiators are 0..3).
const VICTIM: NodeId = NodeId(5);

fn mixed_workloads() -> (TpchWorkload, TpchWorkload, CopyScenario) {
    (
        TpchWorkload::scaled(TpchQuery::Q3, 17, 200),
        TpchWorkload::scaled(TpchQuery::Q6, 17, 200),
        CopyScenario {
            seed: 17,
            rows: 150,
        },
    )
}

fn build_sessions(
    workloads: &[&dyn Workload],
    storage: &orchestra_storage::DistributedStorage,
    epoch: orchestra_common::Epoch,
) -> Vec<QuerySession> {
    let stats = Statistics::collect(storage, epoch);
    workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let plan = orchestra_optimizer::compile(&w.logical(), &stats).unwrap();
            let cost = estimate_plan_cost(&plan, &stats).unwrap().total();
            QuerySession {
                name: w.name(),
                plan,
                epoch,
                initiator: NodeId(i as u16),
                arrival: SimTime::ZERO,
                fingerprint: Some(orchestra_optimizer::fingerprint(&w.logical())),
                estimated_cost: cost,
                overrides: Default::default(),
                plan_resident: false,
            }
        })
        .collect()
}

#[test]
fn three_concurrent_sessions_recover_to_their_references_under_both_strategies() {
    let (q3, q6, copy) = mixed_workloads();
    let workloads: [&dyn Workload; 3] = [&q3, &q6, &copy];
    let (storage, epoch) = deploy_all(&workloads, NODES).unwrap();
    let sessions = build_sessions(&workloads, &storage, epoch);
    let scheduler = SessionScheduler::new(SchedulerConfig {
        max_concurrent: 3,
        queue_capacity: 3,
        policy: AdmissionPolicy::Fifo,
        slo: None,
    });

    // Failure-free baseline fixes the makespan the failure lands inside.
    let baseline = scheduler
        .run(&storage, &EngineConfig::default(), &sessions)
        .unwrap();
    assert_eq!(baseline.peak_concurrency, 3);
    for (i, sr) in baseline.sessions.iter().enumerate() {
        assert_eq!(
            sr.report.rows,
            workloads[i].reference(),
            "failure-free {} answer",
            sr.name
        );
    }

    for strategy in [RecoveryStrategy::Restart, RecoveryStrategy::Incremental] {
        let config = EngineConfig {
            strategy,
            ..EngineConfig::default()
        };
        let failure = FailureSpec::at_time(
            VICTIM,
            SimTime::from_micros(baseline.makespan.as_micros() / 2),
        );
        let workload = scheduler
            .run_with_failure(&storage, &config, &sessions, failure)
            .unwrap();
        let recovered = workload
            .sessions
            .iter()
            .filter(|sr| sr.report.recovered)
            .count();
        assert!(
            recovered >= 1,
            "{strategy:?}: a mid-makespan failure must interrupt in-flight sessions"
        );
        for (i, sr) in workload.sessions.iter().enumerate() {
            assert_eq!(
                sr.report.rows,
                workloads[i].reference(),
                "{strategy:?}: {} must recover to its reference answer",
                sr.name
            );
        }
        assert!(
            workload.makespan > baseline.makespan,
            "{strategy:?}: recovery must cost virtual time"
        );
    }
}

#[test]
fn scheduled_answers_match_whichever_admission_policy_runs() {
    let (q3, q6, copy) = mixed_workloads();
    let workloads: [&dyn Workload; 3] = [&q3, &q6, &copy];
    let (storage, epoch) = deploy_all(&workloads, NODES).unwrap();
    let sessions = build_sessions(&workloads, &storage, epoch);
    for policy in [AdmissionPolicy::Fifo, AdmissionPolicy::ShortestCostFirst] {
        let scheduler = SessionScheduler::new(SchedulerConfig {
            max_concurrent: 2,
            queue_capacity: 3,
            policy,
            slo: None,
        });
        let workload = scheduler
            .run(&storage, &EngineConfig::default(), &sessions)
            .unwrap();
        assert!(workload.peak_concurrency <= 2);
        for (i, sr) in workload.sessions.iter().enumerate() {
            assert_eq!(
                sr.report.rows,
                workloads[i].reference(),
                "{policy:?}: {} answer",
                sr.name
            );
        }
    }
}
