//! Deterministic multi-epoch update streams.
//!
//! The CDSS lifecycle the paper opens with is *publication*: participants
//! accumulate updates locally and occasionally publish them, after which
//! queries must see the new epoch.  [`epoch_stream`] generates that
//! lifecycle for any catalogue [`Workload`]: a sequence of
//! [`orchestra_storage::UpdateBatch`]es (one per epoch, sized by an
//! [`EpochSpec`] of inserts/modifies/deletes per relation) together with
//! the evolved [`TableSet`] and the workload's exact reference answer
//! *at every epoch* — the oracle maintained views and recovery tests are
//! cross-checked against.
//!
//! Generation is domain-preserving without knowing any schema's value
//! domains: a fresh insert clones a randomly chosen existing row under a
//! fresh key, and a modify replaces a victim row's payload with a random
//! donor row's payload under the victim's key.  Foreign keys, segment
//! strings and date ranges therefore stay inside the distributions the
//! base generators produced, so joins and predicates keep selecting
//! non-trivial subsets as the relations evolve.  The same
//! `(workload, seed, specs)` always yields the same stream.

use crate::{tables_of, TableSet, Workload};
use orchestra_common::{rng, ColumnType, OrchestraError, Result, Tuple, Value};
use orchestra_storage::UpdateBatch;

/// How much churn one epoch applies to *each* relation of the workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochSpec {
    /// Brand-new rows (fresh keys) per relation.
    pub inserts: usize,
    /// Existing rows whose payload is replaced, per relation.
    pub modifies: usize,
    /// Existing rows removed, per relation.
    pub deletes: usize,
}

impl EpochSpec {
    /// An epoch applying `inserts`/`modifies`/`deletes` to each relation.
    pub fn new(inserts: usize, modifies: usize, deletes: usize) -> EpochSpec {
        EpochSpec {
            inserts,
            modifies,
            deletes,
        }
    }

    /// Signed delta rows this spec expands to per relation (an insert or
    /// delete is one signed row, a modify is a `-old`/`+new` pair).
    pub fn signed_rows(&self) -> usize {
        self.inserts + self.deletes + 2 * self.modifies
    }
}

/// A generated multi-epoch stream: the publishable batches plus, for
/// every epoch, the evolved table contents and the workload's exact
/// reference answer.  Index 0 is the state *after* the first generated
/// batch (the workload's base batch is epoch −1 relative to the stream).
#[derive(Clone, Debug)]
pub struct EpochStream {
    batches: Vec<UpdateBatch>,
    tables: Vec<TableSet>,
    references: Vec<Vec<Tuple>>,
}

impl EpochStream {
    /// Number of generated epochs.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Is the stream empty?
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// The batch to publish as the stream's `i`-th epoch.
    pub fn batch(&self, i: usize) -> &UpdateBatch {
        &self.batches[i]
    }

    /// The full table contents after the `i`-th batch.
    pub fn tables(&self, i: usize) -> &TableSet {
        &self.tables[i]
    }

    /// The workload's exact answer after the `i`-th batch.
    pub fn reference(&self, i: usize) -> &[Tuple] {
        &self.references[i]
    }
}

/// Generate a deterministic epoch stream for `workload`: one batch per
/// entry of `specs`, each applying that spec's churn to every relation.
///
/// Requires single-column integer keys (true of every catalogue
/// relation) so fresh keys can be synthesized past the current maximum.
pub fn epoch_stream(
    workload: &dyn Workload,
    seed: u64,
    specs: &[EpochSpec],
) -> Result<EpochStream> {
    let relations = workload.relations();
    for relation in &relations {
        let schema = relation.schema();
        if schema.key_len() != 1 || schema.column_type(0) != ColumnType::Int {
            return Err(OrchestraError::Execution(format!(
                "epoch streams need single-column integer keys; {} has key length {}",
                relation.name(),
                schema.key_len()
            )));
        }
    }

    let mut tables = tables_of(&workload.batch());
    let mut stream = EpochStream {
        batches: Vec::with_capacity(specs.len()),
        tables: Vec::with_capacity(specs.len()),
        references: Vec::with_capacity(specs.len()),
    };
    for (epoch_idx, spec) in specs.iter().enumerate() {
        let mut batch = UpdateBatch::new();
        for relation in &relations {
            let name = relation.name();
            let rows = tables.entry(name.to_string()).or_default();
            let mut r = rng::seeded_stream(seed, &format!("epoch-{epoch_idx}-{name}"));

            // Fresh inserts: a random donor row's payload under a key
            // past the current maximum, so no key is ever inserted twice.
            let first_key = rows
                .iter()
                .map(|t| t.value(0).as_int().unwrap_or(0))
                .max()
                .unwrap_or(0)
                + 1;
            for next_key in first_key..first_key + spec.inserts as i64 {
                let mut values = if rows.is_empty() {
                    // A drained relation has no donor: synthesize a
                    // schema-shaped row from type defaults.
                    let schema = relation.schema();
                    (0..schema.arity())
                        .map(|c| match schema.column_type(c) {
                            ColumnType::Int => Value::Int(0),
                            ColumnType::Double => Value::Double(0.0),
                            ColumnType::Str => Value::str(""),
                        })
                        .collect()
                } else {
                    rows[r.random_range(0..rows.len())].values().to_vec()
                };
                values[0] = Value::Int(next_key);
                let row = Tuple::new(values);
                batch.insert(name, row.clone());
                rows.push(row);
            }

            // Modifies and deletes draw *disjoint* victims from the
            // pre-insert population: publishing two updates for one key
            // in one batch is not a meaningful participant log.
            let population = rows.len() - spec.inserts;
            let mut victims: Vec<usize> = (0..population).collect();
            // Partial Fisher–Yates: shuffle as many victims as needed.
            let needed = (spec.modifies + spec.deletes).min(population);
            for i in 0..needed {
                let j = i + r.random_range(0..(victims.len() - i)) as usize;
                victims.swap(i, j);
            }
            let modifies = spec.modifies.min(needed);
            for &victim in victims.iter().take(modifies) {
                let donor = r.random_range(0..population);
                let mut values = rows[donor].values().to_vec();
                values[0] = rows[victim].value(0).clone();
                let row = Tuple::new(values);
                batch.modify(name, row.clone());
                rows[victim] = row;
            }
            let mut doomed: Vec<usize> = victims
                .iter()
                .copied()
                .skip(modifies)
                .take(needed - modifies)
                .collect();
            // Remove highest index first so earlier indices stay valid.
            doomed.sort_unstable_by(|a, b| b.cmp(a));
            for victim in doomed {
                let row = rows.remove(victim);
                batch.delete(name, row.values()[..1].to_vec());
            }
        }
        stream.references.push(workload.reference_for(&tables));
        stream.tables.push(tables.clone());
        stream.batches.push(batch);
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{deploy, TpchQuery, TpchWorkload};
    use orchestra_common::NodeId;
    use orchestra_engine::{EngineConfig, QueryExecutor};

    #[test]
    fn streams_are_deterministic_and_sized_by_their_specs() {
        let w = TpchWorkload::scaled(TpchQuery::Q1, 7, 120);
        let specs = [EpochSpec::new(5, 3, 2), EpochSpec::new(0, 10, 0)];
        let a = epoch_stream(&w, 9, &specs).unwrap();
        let b = epoch_stream(&w, 9, &specs).unwrap();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        for i in 0..2 {
            assert_eq!(a.batch(i), b.batch(i), "epoch {i}");
            assert_eq!(a.reference(i), b.reference(i), "epoch {i}");
        }
        // Each relation gets the spec's churn: 3 relations × (5+3+2).
        assert_eq!(a.batch(0).len(), 3 * 10);
        assert_eq!(a.batch(1).len(), 3 * 10);
        // Cardinalities evolve: +5 −2 per relation in epoch 0.
        assert_eq!(a.tables(0)["lineitem"].len(), 120 + 5 - 2);
        // A different seed yields a different stream.
        let c = epoch_stream(&w, 10, &specs).unwrap();
        assert_ne!(a.batch(0), c.batch(0));
    }

    #[test]
    fn per_epoch_references_match_the_published_store() {
        // Publish the stream into a real cluster and check that a fresh
        // distributed run at every epoch equals the stream's reference.
        let w = TpchWorkload::scaled(TpchQuery::Q3, 11, 160);
        let (mut storage, base_epoch) = deploy(&w, 5).unwrap();
        let stream = epoch_stream(&w, 3, &[EpochSpec::new(6, 4, 3); 3]).unwrap();
        let exec_config = EngineConfig::default();
        for i in 0..stream.len() {
            let epoch = storage.publish(stream.batch(i)).unwrap();
            assert_eq!(epoch.0, base_epoch.0 + 1 + i as u64);
            let report = QueryExecutor::new(&storage, exec_config.clone())
                .execute(&w.reference_plan(), epoch, NodeId(0))
                .unwrap();
            assert_eq!(
                report.rows,
                stream.reference(i),
                "distributed answer diverged from the stream reference at epoch {i}"
            );
        }
    }

    #[test]
    fn draining_a_relation_and_refilling_it_keeps_the_schema_shape() {
        // Delete every source row, then insert into the empty relation:
        // synthesized rows must match the schema's arity, and the
        // stream must stay publishable and exact.
        let w = crate::CopyScenario { seed: 2, rows: 6 };
        let stream =
            epoch_stream(&w, 4, &[EpochSpec::new(0, 0, 6), EpochSpec::new(3, 0, 0)]).unwrap();
        assert!(stream.tables(0)["st_source"].is_empty());
        assert_eq!(stream.reference(0), Vec::<Tuple>::new());
        let refilled = &stream.tables(1)["st_source"];
        assert_eq!(refilled.len(), 3);
        assert!(refilled.iter().all(|t| t.arity() == 2));
        let (mut storage, _) = crate::deploy(&w, 3).unwrap();
        for i in 0..stream.len() {
            storage.publish(stream.batch(i)).unwrap();
        }
        assert_eq!(stream.reference(1).len(), 3);
    }

    #[test]
    fn modifies_keep_keys_and_deletes_shrink() {
        let w = TpchWorkload::scaled(TpchQuery::Q6, 5, 80);
        let stream = epoch_stream(&w, 1, &[EpochSpec::new(0, 8, 8)]).unwrap();
        let batch = stream.batch(0);
        let updates = batch.updates_for("lineitem");
        assert_eq!(updates.len(), 16);
        // All touched keys are distinct within the batch.
        let mut keys: Vec<i64> = updates
            .iter()
            .map(|u| u.key(1)[0].as_int().unwrap())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 16, "modifies and deletes must be disjoint");
        assert_eq!(stream.tables(0)["lineitem"].len(), 72);
        assert_eq!(EpochSpec::new(0, 8, 8).signed_rows(), 24);
    }
}
