//! Scaled-down TPC-H-style relations and the Q1/Q3/Q6 physical plans
//! (paper Section VI-C).
//!
//! [`TpchDataset`] generates deterministic `lineitem`, `orders` and
//! `customer` relations at a configurable scale.  Monetary amounts are
//! integer cents and discounts integer percentage points, so every
//! aggregate the queries compute is exact integer arithmetic — the
//! distributed answer and the single-node reference are comparable tuple
//! for tuple with no floating-point order sensitivity (`AVG` divides two
//! exact integers once, at finalisation).  Revenue terms therefore come
//! out in "cent-percent" units: `extendedprice * (100 - discount)` for
//! Q1/Q3 and `extendedprice * discount` for Q6.
//!
//! The three queries exercise the three plan shapes of the paper's OLAP
//! evaluation:
//!
//! * **Q1** — sargable scan, compute-function, distributed two-phase
//!   aggregation (`Partial` per node, `Final` at the initiator);
//! * **Q3** — two pipelined hash joins over rehashed inputs, then
//!   two-phase aggregation;
//! * **Q6** — sargable scan, compute-function, single-shot aggregation
//!   at the initiator.

use crate::Workload;
use orchestra_common::{rng, ColumnType, Relation, Schema, Tuple, Value};
use orchestra_engine::{AggFunc, AggMode, CmpOp, PhysicalPlan, PlanBuilder, Predicate, ScalarExpr};
use orchestra_optimizer::{col, LogicalExpr, LogicalQuery};
use orchestra_storage::UpdateBatch;
use std::collections::{BTreeMap, HashMap, HashSet};

/// TPC-H market segments (`c_mktsegment`).
pub const MKT_SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const LINE_STATUSES: [&str; 2] = ["O", "F"];

/// Dates are day numbers in `[0, DATE_DAYS)`.
const DATE_DAYS: u64 = 2400;

/// Q1: `l_shipdate <= 2300` (the "shipped by the cutoff" predicate).
const Q1_SHIPDATE_CUTOFF: i64 = 2300;
/// Q3: customers in this segment, orders before / lineitems shipped
/// after the pivot date.
const Q3_SEGMENT: &str = "BUILDING";
const Q3_PIVOT_DATE: i64 = 1200;
/// Q6: shipdate window, discount window, quantity bound.
const Q6_DATE_LO: i64 = 300;
const Q6_DATE_HI: i64 = 1100;
const Q6_DISCOUNT_LO: i64 = 2;
const Q6_DISCOUNT_HI: i64 = 6;
const Q6_QUANTITY_LT: i64 = 30;

/// Deterministic, scaled-down TPC-H-style data: `customer(c_custkey,
/// c_mktsegment)`, `orders(o_orderkey, o_custkey, o_orderdate,
/// o_shippriority)` and `lineitem(l_id, l_orderkey, l_quantity,
/// l_extendedprice, l_discount, l_tax, l_returnflag, l_linestatus,
/// l_shipdate)`.  The same `(seed, cardinalities)` always yields the
/// same rows.
#[derive(Clone, Copy, Debug)]
pub struct TpchDataset {
    /// Seed of the deterministic generators.
    pub seed: u64,
    /// Number of `customer` rows.
    pub customers: usize,
    /// Number of `orders` rows.
    pub orders: usize,
    /// Number of `lineitem` rows.
    pub lineitems: usize,
}

impl TpchDataset {
    /// A dataset scaled from its `lineitem` cardinality with the usual
    /// relative sizes (4 lineitems per order, 10 per customer).
    pub fn scaled(seed: u64, lineitems: usize) -> TpchDataset {
        TpchDataset {
            seed,
            customers: (lineitems / 10).max(1),
            orders: (lineitems / 4).max(1),
            lineitems,
        }
    }

    /// The three relation schemas, ready to register.
    pub fn relations() -> Vec<Relation> {
        vec![
            Relation::partitioned(
                "customer",
                Schema::keyed_on_first(vec![
                    ("c_custkey", ColumnType::Int),
                    ("c_mktsegment", ColumnType::Str),
                ]),
            ),
            Relation::partitioned(
                "orders",
                Schema::keyed_on_first(vec![
                    ("o_orderkey", ColumnType::Int),
                    ("o_custkey", ColumnType::Int),
                    ("o_orderdate", ColumnType::Int),
                    ("o_shippriority", ColumnType::Int),
                ]),
            ),
            Relation::partitioned(
                "lineitem",
                Schema::keyed_on_first(vec![
                    ("l_id", ColumnType::Int),
                    ("l_orderkey", ColumnType::Int),
                    ("l_quantity", ColumnType::Int),
                    ("l_extendedprice", ColumnType::Int),
                    ("l_discount", ColumnType::Int),
                    ("l_tax", ColumnType::Int),
                    ("l_returnflag", ColumnType::Str),
                    ("l_linestatus", ColumnType::Str),
                    ("l_shipdate", ColumnType::Int),
                ]),
            ),
        ]
    }

    /// The generated `customer` rows.
    pub fn customer_rows(&self) -> Vec<Tuple> {
        let mut r = rng::seeded_stream(self.seed, "customer");
        (0..self.customers)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(MKT_SEGMENTS[r.random_range(0..MKT_SEGMENTS.len())]),
                ])
            })
            .collect()
    }

    /// The generated `orders` rows.
    pub fn order_rows(&self) -> Vec<Tuple> {
        let mut r = rng::seeded_stream(self.seed, "orders");
        (0..self.orders)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Int(r.random_range(0..self.customers as u64) as i64),
                    Value::Int(r.random_range(0..DATE_DAYS) as i64),
                    Value::Int(0),
                ])
            })
            .collect()
    }

    /// The generated `lineitem` rows.
    pub fn lineitem_rows(&self) -> Vec<Tuple> {
        let mut r = rng::seeded_stream(self.seed, "lineitem");
        (0..self.lineitems)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Int(r.random_range(0..self.orders as u64) as i64),
                    Value::Int(r.random_range(1..=50u64) as i64),
                    Value::Int(r.random_range(1_000..=100_000u64) as i64),
                    Value::Int(r.random_range(0..=10u64) as i64),
                    Value::Int(r.random_range(0..=8u64) as i64),
                    Value::str(RETURN_FLAGS[r.random_range(0..RETURN_FLAGS.len())]),
                    Value::str(LINE_STATUSES[r.random_range(0..LINE_STATUSES.len())]),
                    Value::Int(r.random_range(0..DATE_DAYS) as i64),
                ])
            })
            .collect()
    }

    /// All rows as one publishable batch.
    pub fn batch(&self) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for row in self.customer_rows() {
            batch.insert("customer", row);
        }
        for row in self.order_rows() {
            batch.insert("orders", row);
        }
        for row in self.lineitem_rows() {
            batch.insert("lineitem", row);
        }
        batch
    }

    // ------------------------------------------------------------------
    // Q1: pricing summary report
    // ------------------------------------------------------------------

    /// Q1 as a logical query: the shipdate conjunct, the select list of
    /// grouping attributes plus the discounted-price term, and the five
    /// aggregates over it.
    pub fn q1_logical(&self) -> LogicalQuery {
        let mut q = LogicalQuery::new();
        let l = q.relation("lineitem");
        q.filter(l, Predicate::cmp(8, CmpOp::Le, Q1_SHIPDATE_CUTOFF))
            .select(vec![
                LogicalExpr::col(l, 6),
                LogicalExpr::col(l, 7),
                LogicalExpr::col(l, 2),
                LogicalExpr::col(l, 3),
                LogicalExpr::Mul(
                    Box::new(LogicalExpr::col(l, 3)),
                    Box::new(LogicalExpr::Sub(
                        Box::new(LogicalExpr::lit(100i64)),
                        Box::new(LogicalExpr::col(l, 4)),
                    )),
                ),
            ])
            .aggregate(
                vec![0, 1],
                vec![
                    (AggFunc::Sum, 2),
                    (AggFunc::Sum, 3),
                    (AggFunc::Sum, 4),
                    (AggFunc::Avg, 2),
                    (AggFunc::Count, 2),
                ],
            );
        q
    }

    /// Hand-built Q1 plan (the optimizer oracle): scan with the sargable
    /// shipdate predicate, compute the discounted-price term, then
    /// distributed two-phase aggregation grouped on
    /// `(l_returnflag, l_linestatus)`.
    pub fn q1_plan(&self) -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b.scan(
            "lineitem",
            9,
            Some(Predicate::cmp(8, CmpOp::Le, Q1_SHIPDATE_CUTOFF)),
        );
        let terms = b.compute(
            scan,
            vec![
                ScalarExpr::col(6),
                ScalarExpr::col(7),
                ScalarExpr::col(2),
                ScalarExpr::col(3),
                ScalarExpr::Mul(
                    Box::new(ScalarExpr::col(3)),
                    Box::new(ScalarExpr::Sub(
                        Box::new(ScalarExpr::lit(100i64)),
                        Box::new(ScalarExpr::col(4)),
                    )),
                ),
            ],
        );
        let agg = b.two_phase_aggregate(
            terms,
            vec![0, 1],
            vec![
                (AggFunc::Sum, 2),
                (AggFunc::Sum, 3),
                (AggFunc::Sum, 4),
                (AggFunc::Avg, 2),
                (AggFunc::Count, 2),
            ],
        );
        b.output(agg)
    }

    /// Q1 single-node reference answer over the generated data.
    pub fn q1_reference(&self) -> Vec<Tuple> {
        q1_reference_from(&self.lineitem_rows())
    }

    // ------------------------------------------------------------------
    // Q3: shipping priority
    // ------------------------------------------------------------------

    /// Q3 as a logical query: the segment/date conjuncts, the
    /// `customer ⋈ orders ⋈ lineitem` equi-join graph, and revenue
    /// aggregation grouped on `(o_orderkey, o_orderdate,
    /// o_shippriority)`.
    pub fn q3_logical(&self) -> LogicalQuery {
        let mut q = LogicalQuery::new();
        let c = q.relation("customer");
        let o = q.relation("orders");
        let l = q.relation("lineitem");
        q.filter(c, Predicate::cmp(1, CmpOp::Eq, Q3_SEGMENT))
            .filter(o, Predicate::cmp(2, CmpOp::Lt, Q3_PIVOT_DATE))
            .filter(l, Predicate::cmp(8, CmpOp::Gt, Q3_PIVOT_DATE))
            .join(col(c, 0), col(o, 1))
            .join(col(o, 0), col(l, 1))
            .select(vec![
                LogicalExpr::col(o, 0),
                LogicalExpr::col(o, 2),
                LogicalExpr::col(o, 3),
                LogicalExpr::Mul(
                    Box::new(LogicalExpr::col(l, 3)),
                    Box::new(LogicalExpr::Sub(
                        Box::new(LogicalExpr::lit(100i64)),
                        Box::new(LogicalExpr::col(l, 4)),
                    )),
                ),
            ])
            .aggregate(vec![0, 1, 2], vec![(AggFunc::Sum, 3)]);
        q
    }

    /// Hand-built Q3 plan (the optimizer oracle): `customer ⋈ orders ⋈
    /// lineitem` as two pipelined hash joins over rehashed inputs, then
    /// two-phase aggregation grouped on `(o_orderkey, o_orderdate,
    /// o_shippriority)`.
    pub fn q3_plan(&self) -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let customer = b.scan(
            "customer",
            2,
            Some(Predicate::cmp(1, CmpOp::Eq, Q3_SEGMENT)),
        );
        let orders = b.scan(
            "orders",
            4,
            Some(Predicate::cmp(2, CmpOp::Lt, Q3_PIVOT_DATE)),
        );
        let customer_re = b.rehash(customer, vec![0]);
        let orders_re = b.rehash(orders, vec![1]);
        // (c_custkey, c_mktsegment, o_orderkey, o_custkey, o_orderdate,
        //  o_shippriority)
        let cust_orders = b.hash_join(customer_re, orders_re, vec![0], vec![1]);
        let lineitem = b.scan(
            "lineitem",
            9,
            Some(Predicate::cmp(8, CmpOp::Gt, Q3_PIVOT_DATE)),
        );
        let cust_orders_re = b.rehash(cust_orders, vec![2]);
        let lineitem_re = b.rehash(lineitem, vec![1]);
        let joined = b.hash_join(cust_orders_re, lineitem_re, vec![2], vec![1]);
        let terms = b.compute(
            joined,
            vec![
                ScalarExpr::col(2),
                ScalarExpr::col(4),
                ScalarExpr::col(5),
                ScalarExpr::Mul(
                    Box::new(ScalarExpr::col(9)),
                    Box::new(ScalarExpr::Sub(
                        Box::new(ScalarExpr::lit(100i64)),
                        Box::new(ScalarExpr::col(10)),
                    )),
                ),
            ],
        );
        let agg = b.two_phase_aggregate(terms, vec![0, 1, 2], vec![(AggFunc::Sum, 3)]);
        b.output(agg)
    }

    /// Q3 single-node reference answer over the generated data.
    pub fn q3_reference(&self) -> Vec<Tuple> {
        q3_reference_from(
            &self.customer_rows(),
            &self.order_rows(),
            &self.lineitem_rows(),
        )
    }

    // ------------------------------------------------------------------
    // Q6: forecasting revenue change
    // ------------------------------------------------------------------

    /// Q6 as a logical query: the three sargable conjuncts and the
    /// ungrouped revenue sum.
    pub fn q6_logical(&self) -> LogicalQuery {
        let mut q = LogicalQuery::new();
        let l = q.relation("lineitem");
        q.filter(
            l,
            Predicate::And(vec![
                Predicate::Between {
                    column: 8,
                    low: Value::Int(Q6_DATE_LO),
                    high: Value::Int(Q6_DATE_HI),
                },
                Predicate::Between {
                    column: 4,
                    low: Value::Int(Q6_DISCOUNT_LO),
                    high: Value::Int(Q6_DISCOUNT_HI),
                },
                Predicate::cmp(2, CmpOp::Lt, Q6_QUANTITY_LT),
            ]),
        )
        .select(vec![LogicalExpr::Mul(
            Box::new(LogicalExpr::col(l, 3)),
            Box::new(LogicalExpr::col(l, 4)),
        )])
        .aggregate(vec![], vec![(AggFunc::Sum, 0)]);
        q
    }

    /// Hand-built Q6 plan (the optimizer oracle): sargable
    /// triple-predicate scan, compute the revenue term, ship to the
    /// initiator, single-shot ungrouped aggregation there.
    pub fn q6_plan(&self) -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b.scan(
            "lineitem",
            9,
            Some(Predicate::And(vec![
                Predicate::Between {
                    column: 8,
                    low: Value::Int(Q6_DATE_LO),
                    high: Value::Int(Q6_DATE_HI),
                },
                Predicate::Between {
                    column: 4,
                    low: Value::Int(Q6_DISCOUNT_LO),
                    high: Value::Int(Q6_DISCOUNT_HI),
                },
                Predicate::cmp(2, CmpOp::Lt, Q6_QUANTITY_LT),
            ])),
        );
        let term = b.compute(
            scan,
            vec![ScalarExpr::Mul(
                Box::new(ScalarExpr::col(3)),
                Box::new(ScalarExpr::col(4)),
            )],
        );
        let ship = b.ship(term);
        let agg = b.aggregate(ship, vec![], vec![(AggFunc::Sum, 0)], AggMode::Single);
        b.output(agg)
    }

    /// Q6 single-node reference answer over the generated data.
    pub fn q6_reference(&self) -> Vec<Tuple> {
        q6_reference_from(&self.lineitem_rows())
    }
}

/// Q1 reference over an arbitrary `lineitem` row set — multi-epoch
/// streams call this with the evolved rows of each epoch.
pub fn q1_reference_from(lineitems: &[Tuple]) -> Vec<Tuple> {
    // (sum_qty, sum_base, sum_disc_price, count) per (flag, status).
    let mut groups: BTreeMap<(String, String), (i64, i64, i64, i64)> = BTreeMap::new();
    for li in lineitems {
        if li.value(8).as_int().unwrap() > Q1_SHIPDATE_CUTOFF {
            continue;
        }
        let key = (
            li.value(6).as_str().unwrap().to_string(),
            li.value(7).as_str().unwrap().to_string(),
        );
        let qty = li.value(2).as_int().unwrap();
        let price = li.value(3).as_int().unwrap();
        let discount = li.value(4).as_int().unwrap();
        let e = groups.entry(key).or_default();
        e.0 += qty;
        e.1 += price;
        e.2 += price * (100 - discount);
        e.3 += 1;
    }
    let mut rows: Vec<Tuple> = groups
        .into_iter()
        .map(|((flag, status), (qty, base, disc, count))| {
            Tuple::new(vec![
                Value::str(flag),
                Value::str(status),
                Value::Int(qty),
                Value::Int(base),
                Value::Int(disc),
                Value::Double(qty as f64 / count as f64),
                Value::Int(count),
            ])
        })
        .collect();
    rows.sort();
    rows
}

/// Q3 reference over arbitrary `customer`/`orders`/`lineitem` row sets.
pub fn q3_reference_from(customers: &[Tuple], orders: &[Tuple], lineitems: &[Tuple]) -> Vec<Tuple> {
    let building: HashSet<i64> = customers
        .iter()
        .filter(|c| c.value(1).as_str() == Some(Q3_SEGMENT))
        .map(|c| c.value(0).as_int().unwrap())
        .collect();
    // orderkey -> (orderdate, shippriority) for qualifying orders.
    let qualifying: HashMap<i64, (i64, i64)> = orders
        .iter()
        .filter(|o| {
            o.value(2).as_int().unwrap() < Q3_PIVOT_DATE
                && building.contains(&o.value(1).as_int().unwrap())
        })
        .map(|o| {
            (
                o.value(0).as_int().unwrap(),
                (o.value(2).as_int().unwrap(), o.value(3).as_int().unwrap()),
            )
        })
        .collect();
    let mut revenue: BTreeMap<(i64, i64, i64), i64> = BTreeMap::new();
    for li in lineitems {
        if li.value(8).as_int().unwrap() <= Q3_PIVOT_DATE {
            continue;
        }
        let orderkey = li.value(1).as_int().unwrap();
        let Some((orderdate, priority)) = qualifying.get(&orderkey) else {
            continue;
        };
        let price = li.value(3).as_int().unwrap();
        let discount = li.value(4).as_int().unwrap();
        *revenue
            .entry((orderkey, *orderdate, *priority))
            .or_default() += price * (100 - discount);
    }
    let mut rows: Vec<Tuple> = revenue
        .into_iter()
        .map(|((orderkey, orderdate, priority), rev)| {
            Tuple::new(vec![
                Value::Int(orderkey),
                Value::Int(orderdate),
                Value::Int(priority),
                Value::Int(rev),
            ])
        })
        .collect();
    rows.sort();
    rows
}

/// Q6 reference over an arbitrary `lineitem` row set.
pub fn q6_reference_from(lineitems: &[Tuple]) -> Vec<Tuple> {
    let mut revenue = 0i64;
    let mut matched = false;
    for li in lineitems {
        let shipdate = li.value(8).as_int().unwrap();
        let discount = li.value(4).as_int().unwrap();
        let quantity = li.value(2).as_int().unwrap();
        if (Q6_DATE_LO..=Q6_DATE_HI).contains(&shipdate)
            && (Q6_DISCOUNT_LO..=Q6_DISCOUNT_HI).contains(&discount)
            && quantity < Q6_QUANTITY_LT
        {
            revenue += li.value(3).as_int().unwrap() * discount;
            matched = true;
        }
    }
    if matched {
        vec![Tuple::new(vec![Value::Int(revenue)])]
    } else {
        // No qualifying row: the engine's aggregate holds no group and
        // emits nothing.
        Vec::new()
    }
}

/// The TPC-H-style queries of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TpchQuery {
    /// Pricing summary report (two-phase aggregation).
    Q1,
    /// Shipping priority (two pipelined joins + aggregation).
    Q3,
    /// Forecasting revenue change (single-shot aggregation).
    Q6,
}

impl TpchQuery {
    /// Short lowercase name (`"q1"`, `"q3"`, `"q6"`).
    pub fn name(&self) -> &'static str {
        match self {
            TpchQuery::Q1 => "q1",
            TpchQuery::Q3 => "q3",
            TpchQuery::Q6 => "q6",
        }
    }
}

/// One TPC-H query over one dataset, as a [`Workload`] catalogue entry.
#[derive(Clone, Copy, Debug)]
pub struct TpchWorkload {
    /// The data to query.
    pub dataset: TpchDataset,
    /// The query to run.
    pub query: TpchQuery,
}

impl TpchWorkload {
    /// A query over a dataset scaled from its lineitem cardinality.
    pub fn scaled(query: TpchQuery, seed: u64, lineitems: usize) -> TpchWorkload {
        TpchWorkload {
            dataset: TpchDataset::scaled(seed, lineitems),
            query,
        }
    }
}

impl Workload for TpchWorkload {
    fn name(&self) -> String {
        format!("tpch-{}", self.query.name())
    }

    fn relations(&self) -> Vec<Relation> {
        TpchDataset::relations()
    }

    fn batch(&self) -> UpdateBatch {
        self.dataset.batch()
    }

    fn logical(&self) -> LogicalQuery {
        match self.query {
            TpchQuery::Q1 => self.dataset.q1_logical(),
            TpchQuery::Q3 => self.dataset.q3_logical(),
            TpchQuery::Q6 => self.dataset.q6_logical(),
        }
    }

    fn reference_plan(&self) -> PhysicalPlan {
        match self.query {
            TpchQuery::Q1 => self.dataset.q1_plan(),
            TpchQuery::Q3 => self.dataset.q3_plan(),
            TpchQuery::Q6 => self.dataset.q6_plan(),
        }
    }

    fn reference_for(&self, tables: &crate::TableSet) -> Vec<Tuple> {
        let rows = |name: &str| tables.get(name).map(Vec::as_slice).unwrap_or(&[]);
        match self.query {
            TpchQuery::Q1 => q1_reference_from(rows("lineitem")),
            TpchQuery::Q3 => q3_reference_from(rows("customer"), rows("orders"), rows("lineitem")),
            TpchQuery::Q6 => q6_reference_from(rows("lineitem")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy;
    use orchestra_common::NodeId;
    use orchestra_engine::{EngineConfig, QueryExecutor};

    #[test]
    fn dataset_generation_is_deterministic_and_shaped() {
        let d = TpchDataset::scaled(42, 200);
        assert_eq!(d.lineitem_rows(), d.lineitem_rows());
        assert_eq!(d.customer_rows().len(), 20);
        assert_eq!(d.order_rows().len(), 50);
        assert_eq!(d.lineitem_rows().len(), 200);
        for li in d.lineitem_rows() {
            assert_eq!(li.arity(), 9);
            let qty = li.value(2).as_int().unwrap();
            assert!((1..=50).contains(&qty));
            let discount = li.value(4).as_int().unwrap();
            assert!((0..=10).contains(&discount));
        }
    }

    #[test]
    fn plans_have_the_expected_shapes() {
        let d = TpchDataset::scaled(1, 40);
        assert_eq!(d.q1_plan().rehash_count(), 0);
        assert_eq!(d.q3_plan().rehash_count(), 4);
        assert_eq!(d.q6_plan().rehash_count(), 0);
        assert_eq!(d.q3_plan().scans().len(), 3);
        assert!(d.q6_plan().render().contains("Aggregate"));
    }

    #[test]
    fn q1_distributed_answer_matches_reference() {
        let w = TpchWorkload::scaled(TpchQuery::Q1, 7, 300);
        let (storage, epoch) = deploy(&w, 6).unwrap();
        let report = QueryExecutor::new(&storage, EngineConfig::default())
            .execute(&w.reference_plan(), epoch, NodeId(0))
            .unwrap();
        let expected = w.reference();
        assert_eq!(expected.len(), 6, "3 flags × 2 statuses");
        assert_eq!(report.rows, expected);
    }

    #[test]
    fn q6_predicates_select_a_nonempty_strict_subset() {
        let d = TpchDataset::scaled(7, 400);
        let reference = d.q6_reference();
        assert_eq!(reference.len(), 1);
        assert!(reference[0].value(0).as_int().unwrap() > 0);
    }
}
