//! # orchestra-workloads
//!
//! Workload generators and fixed benchmark plans for the evaluation.
//!
//! The paper evaluates two workloads, both reproduced here:
//!
//! * **STBenchmark mapping scenarios** (Section VI-B) — [`stbenchmark`]
//!   hosts the `Copy` and `Concatenate` scenario builders over synthetic
//!   source relations with 25-character alphanumeric fields, generated
//!   deterministically from [`orchestra_common::rng`] so every run sees
//!   identical data.
//! * **TPC-H-style OLAP queries** (Section VI-C) — [`tpch`] hosts
//!   scaled-down `lineitem` / `orders` / `customer` generators and the
//!   physical plans for Q1, Q3 and Q6 expressed through
//!   [`orchestra_engine::PlanBuilder`] (two-phase aggregation for Q1,
//!   pipelined joins plus rehash for Q3, single-shot aggregation for Q6).
//!
//! Every catalogue entry implements the [`Workload`] trait — relations,
//! data batch, a [`orchestra_optimizer::LogicalQuery`] describing the
//! query declaratively, a hand-built physical plan kept as a test
//! oracle, and a single-node reference answer computed directly from the
//! generated rows — so the benchmark harness and the correctness tests
//! drive all of them uniformly.  The harness routes execution through
//! the optimizer ([`compiled_plan`]), while the hand-built
//! [`Workload::reference_plan`]s pin down what the optimizer must beat
//! or match.  Generators publish through
//! [`orchestra_storage::UpdateBatch`] so data flows through the same
//! versioned-publication path the paper's participants use.

pub mod churn;
pub mod epochs;
pub mod stbenchmark;
pub mod tpch;

use orchestra_common::{rng, Epoch, NodeId, OrchestraError, Relation, Result, Tuple, Value};
use orchestra_engine::PhysicalPlan;
use orchestra_optimizer::{LogicalQuery, Statistics};
use orchestra_storage::{DistributedStorage, StorageConfig, Update, UpdateBatch};
use orchestra_substrate::{AllocationScheme, RoutingTable};
use std::collections::BTreeMap;

pub use churn::{churn_stream, ChurnSpec, ChurnStream};
pub use epochs::{epoch_stream, EpochSpec, EpochStream};
pub use stbenchmark::{ConcatenateScenario, CopyScenario};
pub use tpch::{TpchDataset, TpchQuery, TpchWorkload};

/// The rows of every relation of a workload at one point in time — the
/// single-node mirror of what the versioned store serves at one epoch.
/// Keyed by relation name; row order is not significant.
pub type TableSet = BTreeMap<String, Vec<Tuple>>;

/// Build the [`TableSet`] a base batch (inserts only) materializes.
/// The multi-epoch generator ([`epochs`]) evolves such a set through
/// modifies and deletes batch by batch.
pub fn tables_of(batch: &UpdateBatch) -> TableSet {
    let mut tables = TableSet::new();
    for relation in batch.relations() {
        let rows = batch
            .updates_for(relation)
            .iter()
            .map(|u| match u {
                Update::Insert(t) => t.clone(),
                other => panic!(
                    "tables_of is defined for insert-only base batches, got {other:?} \
                     for {relation}"
                ),
            })
            .collect();
        tables.insert(relation.to_string(), rows);
    }
    tables
}

/// One benchmark workload: source relations, deterministic data, a
/// declarative query, a hand-built oracle plan, and the single-node
/// reference answer the distributed run must reproduce tuple for tuple.
pub trait Workload {
    /// Short machine-readable name (used in experiment output).
    fn name(&self) -> String;
    /// The relations the workload reads, ready to register.
    fn relations(&self) -> Vec<Relation>;
    /// The deterministic data, as one publishable batch.
    fn batch(&self) -> UpdateBatch;
    /// The workload's query as a logical description, ready for
    /// [`orchestra_optimizer::compile`] (see [`compiled_plan`]).
    fn logical(&self) -> LogicalQuery;
    /// The hand-built physical plan of the workload's query, kept as the
    /// oracle the optimizer-compiled plan is validated against.
    fn reference_plan(&self) -> PhysicalPlan;
    /// The answer the query gives over an arbitrary [`TableSet`],
    /// computed on a single node bypassing every distributed code path,
    /// sorted like [`orchestra_engine::QueryReport::rows`].  Multi-epoch
    /// streams use this to pin down the exact answer at *every* epoch,
    /// not just over the initially generated data.
    fn reference_for(&self, tables: &TableSet) -> Vec<Tuple>;
    /// The reference answer over the workload's own generated data.
    fn reference(&self) -> Vec<Tuple> {
        self.reference_for(&tables_of(&self.batch()))
    }
}

/// Compile a workload's logical query against the statistics of a
/// deployed cluster — the plan the experiment harness executes.
pub fn compiled_plan(
    workload: &dyn Workload,
    storage: &DistributedStorage,
    epoch: Epoch,
) -> Result<PhysicalPlan> {
    let stats = Statistics::collect(storage, epoch);
    orchestra_optimizer::compile(&workload.logical(), &stats)
}

/// [`compiled_plan`] under explicit statistics and planner options — the
/// adaptive path, where the snapshot carries an
/// [`orchestra_optimizer::AdaptiveStats`] overlay and calibration may
/// have enabled broadcast joins for ad-hoc plans.
pub fn compiled_plan_with(
    workload: &dyn Workload,
    stats: &Statistics,
    options: orchestra_optimizer::PlannerOptions,
) -> Result<PhysicalPlan> {
    orchestra_optimizer::compile_with(&workload.logical(), stats, options)
}

/// Stand up an `nodes`-node balanced cluster holding the workload's data:
/// build the routing table (replication factor 3, capped at the cluster
/// size), register the relations, publish the batch, and return the
/// storage together with the epoch to query.
pub fn deploy(workload: &dyn Workload, nodes: u16) -> Result<(DistributedStorage, Epoch)> {
    deploy_all(&[workload], nodes)
}

/// [`deploy`], with an empty *birth* epoch published ahead of the
/// workload's data.  The returned `(storage, birth, base)` brackets the
/// base batch as the delta interval `(birth, base]`, so adaptive
/// statistics can absorb the initial contents exactly the way they
/// absorb every later publication — from the signed delta, never by
/// rescanning the base relations.
pub fn deploy_staged(
    workload: &dyn Workload,
    nodes: u16,
) -> Result<(DistributedStorage, Epoch, Epoch)> {
    let ids: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let replication = 3.min(ids.len().max(1));
    let routing = RoutingTable::build(&ids, AllocationScheme::Balanced, replication);
    let mut storage = DistributedStorage::new(routing, StorageConfig::default());
    for relation in workload.relations() {
        storage.register_relation(relation);
    }
    let birth = storage.publish(&UpdateBatch::new())?;
    let base = storage.publish(&workload.batch())?;
    Ok((storage, birth, base))
}

/// Stand up one cluster holding the data of *several* workloads — the
/// substrate of a concurrent session stream, where queries over
/// different datasets share links and storage nodes.
///
/// Relations are deduplicated by name: workloads that read the same
/// relation (the TPC-H queries all scan `lineitem`) contribute its
/// schema and rows exactly once.  A name reused with a *different*
/// schema — or with the same schema but different generated data, which
/// would silently invalidate the later workload's reference answer — is
/// a configuration error, not a silent overwrite.  All rows are
/// published as one batch, so a single epoch covers every workload's
/// data.
pub fn deploy_all(workloads: &[&dyn Workload], nodes: u16) -> Result<(DistributedStorage, Epoch)> {
    let ids: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let replication = 3.min(ids.len().max(1));
    let routing = RoutingTable::build(&ids, AllocationScheme::Balanced, replication);
    let mut storage = DistributedStorage::new(routing, StorageConfig::default());
    let mut registered: Vec<Relation> = Vec::new();
    let mut contributed: std::collections::BTreeMap<String, Vec<Update>> =
        std::collections::BTreeMap::new();
    let mut merged = UpdateBatch::new();
    for workload in workloads {
        let batch = workload.batch();
        for relation in workload.relations() {
            let name = relation.name().to_string();
            match registered.iter().find(|r| r.name() == name) {
                Some(existing) if existing == &relation => {
                    // Same schema — the data must be identical too, or
                    // queries of this workload would run over rows its
                    // reference answer was never computed from.
                    if contributed.get(&name).map(Vec::as_slice) != Some(batch.updates_for(&name)) {
                        return Err(OrchestraError::Execution(format!(
                            "workload {} re-publishes relation {name} with different data",
                            workload.name()
                        )));
                    }
                }
                Some(_) => {
                    return Err(OrchestraError::Execution(format!(
                        "workload {} re-registers relation {name} with a different schema",
                        workload.name()
                    )))
                }
                None => {
                    storage.register_relation(relation.clone());
                    registered.push(relation);
                    let updates = batch.updates_for(&name).to_vec();
                    for update in &updates {
                        if let Update::Insert(tuple) = update {
                            merged.insert(&name, tuple.clone());
                        } else {
                            return Err(OrchestraError::Execution(format!(
                                "workload {} publishes non-insert updates; deploy_all only \
                                 merges inserts",
                                workload.name()
                            )));
                        }
                    }
                    contributed.insert(name, updates);
                }
            }
        }
    }
    let epoch = storage.publish(&merged)?;
    Ok((storage, epoch))
}

/// A deterministic mixed stream of catalogue workloads — `copies`
/// interleavings of the STBenchmark scenarios (`Copy`, `Concatenate`)
/// and the TPC-H queries (Q1, Q3, Q6) over one shared dataset, in an
/// arrival order shuffled by the in-tree RNG.  The same `(seed, rows,
/// copies)` always yields the same stream, so throughput experiments
/// replay exactly.
pub fn mixed_stream(seed: u64, rows: usize, copies: usize) -> Vec<Box<dyn Workload>> {
    let mut stream: Vec<Box<dyn Workload>> = Vec::with_capacity(copies * 5);
    for _ in 0..copies {
        stream.push(Box::new(CopyScenario { seed, rows }));
        stream.push(Box::new(ConcatenateScenario { seed, rows }));
        stream.push(Box::new(TpchWorkload::scaled(TpchQuery::Q1, seed, rows)));
        stream.push(Box::new(TpchWorkload::scaled(TpchQuery::Q3, seed, rows)));
        stream.push(Box::new(TpchWorkload::scaled(TpchQuery::Q6, seed, rows)));
    }
    // Fisher–Yates over the arrival order, seeded independently of the
    // data generators.
    let mut r = rng::seeded_stream(seed, "session-stream");
    for i in (1..stream.len()).rev() {
        let j = r.random_range(0..(i as u64 + 1)) as usize;
        stream.swap(i, j);
    }
    stream
}

/// Generate `rows` deterministic tuples `(id, field)` for a relation
/// named `relation`, with STBenchmark-style 25-character alphanumeric
/// payload fields.  The same `(seed, relation, rows)` always yields the
/// same data.
pub fn generated_relation(seed: u64, relation: &str, rows: usize) -> Vec<Tuple> {
    let mut r = rng::seeded_stream(seed, relation);
    (0..rows)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::str(rng::alphanumeric(&mut r, 25)),
            ])
        })
        .collect()
}

/// Like [`generated_relation`] but with `fields` independent 25-character
/// string columns after the integer key — the shape the STBenchmark
/// `Concatenate` scenario maps from.
pub fn generated_relation_wide(
    seed: u64,
    relation: &str,
    rows: usize,
    fields: usize,
) -> Vec<Tuple> {
    let mut r = rng::seeded_stream(seed, relation);
    (0..rows)
        .map(|i| {
            let mut values = Vec::with_capacity(fields + 1);
            values.push(Value::Int(i as i64));
            for _ in 0..fields {
                values.push(Value::str(rng::alphanumeric(&mut r, 25)));
            }
            Tuple::new(values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_relation() {
        let a = generated_relation(7, "source", 50);
        let b = generated_relation(7, "source", 50);
        let c = generated_relation(7, "target", 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert_eq!(a[0].value(1).as_str().unwrap().len(), 25);
    }

    #[test]
    fn wide_generation_shapes_rows() {
        let rows = generated_relation_wide(7, "source", 20, 3);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].arity(), 4);
        for col in 1..4 {
            assert_eq!(rows[5].value(col).as_str().unwrap().len(), 25);
        }
        assert_eq!(rows, generated_relation_wide(7, "source", 20, 3));
    }

    #[test]
    fn deploy_all_dedups_shared_relations_and_answers_every_query() {
        // Q1 and Q6 share the whole TPC-H dataset; Copy brings its own
        // relation.  One cluster must answer all three exactly.
        let q1 = TpchWorkload::scaled(TpchQuery::Q1, 11, 160);
        let q6 = TpchWorkload::scaled(TpchQuery::Q6, 11, 160);
        let copy = CopyScenario { seed: 11, rows: 80 };
        let all: [&dyn Workload; 3] = [&q1, &q6, &copy];
        let (storage, epoch) = deploy_all(&all, 4).unwrap();
        let exec = orchestra_engine::QueryExecutor::new(
            &storage,
            orchestra_engine::EngineConfig::default(),
        );
        for w in all {
            let report = exec.execute(&w.reference_plan(), epoch, NodeId(0)).unwrap();
            assert_eq!(report.rows, w.reference(), "{} answer", w.name());
        }
    }

    #[test]
    fn deploy_all_rejects_conflicting_schemas() {
        // Two STBenchmark scenarios generate distinct relations, but a
        // second Copy with a different row count would regenerate
        // st_source with different *data* under the same schema — that
        // is fine.  A conflicting schema is simulated by two datasets
        // whose generated relation name collides at a different arity:
        // none exists in the catalogue, so assert the dedup path instead.
        let a = CopyScenario { seed: 1, rows: 40 };
        let b = CopyScenario { seed: 1, rows: 40 };
        let all: [&dyn Workload; 2] = [&a, &b];
        let (storage, epoch) = deploy_all(&all, 3).unwrap();
        // st_source registered exactly once with 40 rows, not 80.
        assert_eq!(storage.relation_cardinality("st_source", epoch), 40);

        // Same schema but different generated data must be rejected, or
        // the later workload's reference answer would silently describe
        // rows that were never deployed.
        let other_data = CopyScenario { seed: 2, rows: 40 };
        let conflicting: [&dyn Workload; 2] = [&a, &other_data];
        let Err(err) = deploy_all(&conflicting, 3) else {
            panic!("different data under the same relation name must be rejected");
        };
        assert!(err.message().contains("different data"), "{err}");
        let other_size = CopyScenario { seed: 1, rows: 50 };
        let conflicting: [&dyn Workload; 2] = [&a, &other_size];
        assert!(deploy_all(&conflicting, 3).is_err());
    }

    #[test]
    fn mixed_stream_is_deterministic_and_shuffled() {
        let names = |s: &[Box<dyn Workload>]| s.iter().map(|w| w.name()).collect::<Vec<_>>();
        let a = mixed_stream(5, 120, 2);
        let b = mixed_stream(5, 120, 2);
        assert_eq!(a.len(), 10);
        assert_eq!(names(&a), names(&b), "same seed, same arrival order");
        let submission: Vec<String> = names(&a);
        let c = mixed_stream(6, 120, 2);
        assert_ne!(names(&c), submission, "a different seed reshuffles");
        // All five catalogue entries appear in every copy.
        for expected in [
            "stbenchmark-copy",
            "stbenchmark-concatenate",
            "tpch-q1",
            "tpch-q3",
            "tpch-q6",
        ] {
            assert_eq!(
                submission.iter().filter(|n| n.as_str() == expected).count(),
                2,
                "{expected} must appear once per copy in {submission:?}"
            );
        }
    }

    #[test]
    fn deploy_builds_a_queryable_cluster() {
        let w = CopyScenario { seed: 1, rows: 40 };
        let (storage, epoch) = deploy(&w, 4).unwrap();
        assert_eq!(storage.routing().node_count(), 4);
        let exec = orchestra_engine::QueryExecutor::new(
            &storage,
            orchestra_engine::EngineConfig::default(),
        );
        let report = exec.execute(&w.reference_plan(), epoch, NodeId(0)).unwrap();
        assert_eq!(report.rows, w.reference());
    }

    #[test]
    fn observed_widths_tighten_q3_byte_estimates() {
        // The catalog prices every Str column at a fixed 30 bytes; the
        // TPC-H strings are much narrower.  An adaptive overlay built
        // from the publication delta must pull the Q3 cost estimate
        // toward the measured traffic of the actual run.
        use orchestra_optimizer::{estimate_plan_cost, AdaptiveStats};
        let q3 = TpchWorkload::scaled(TpchQuery::Q3, 7, 240);
        let ids: Vec<NodeId> = (0..4).map(NodeId).collect();
        let routing = RoutingTable::build(&ids, AllocationScheme::Balanced, 3);
        let mut storage = DistributedStorage::new(routing, StorageConfig::default());
        for relation in q3.relations() {
            storage.register_relation(relation);
        }
        // A baseline epoch before the data, so the whole dataset arrives
        // as one observable delta.
        let base_epoch = storage.publish(&UpdateBatch::new()).unwrap();
        let epoch = storage.publish(&q3.batch()).unwrap();

        let mut adaptive = AdaptiveStats::new();
        adaptive.absorb(&storage, base_epoch, epoch).unwrap();
        let base = Statistics::collect(&storage, epoch);
        let enriched = adaptive.overlay(&base);

        let plan = compiled_plan(&q3, &storage, epoch).unwrap();
        let exec = orchestra_engine::QueryExecutor::new(
            &storage,
            orchestra_engine::EngineConfig::default(),
        );
        let report = exec.execute(&plan, epoch, NodeId(0)).unwrap();
        assert_eq!(report.rows, q3.reference());
        let measured = report.total_bytes as f64;

        let est_base = estimate_plan_cost(&plan, &base).unwrap().network_bytes;
        let est_enriched = estimate_plan_cost(&plan, &enriched).unwrap().network_bytes;
        assert!(
            (est_enriched - measured).abs() < (est_base - measured).abs(),
            "observed widths must tighten the estimate: \
             base {est_base:.0}, enriched {est_enriched:.0}, measured {measured:.0}"
        );
    }

    #[test]
    fn compiled_plans_execute_like_the_hand_built_oracles() {
        let w = ConcatenateScenario { seed: 3, rows: 30 };
        let (storage, epoch) = deploy(&w, 4).unwrap();
        let plan = compiled_plan(&w, &storage, epoch).unwrap();
        let exec = orchestra_engine::QueryExecutor::new(
            &storage,
            orchestra_engine::EngineConfig::default(),
        );
        let report = exec.execute(&plan, epoch, NodeId(0)).unwrap();
        assert_eq!(report.rows, w.reference());
    }
}
