//! # orchestra-workloads
//!
//! Workload generators and fixed benchmark plans for the evaluation.
//!
//! The paper evaluates two workloads, both to be reproduced here:
//!
//! * **STBenchmark mapping scenarios** (Section VI-B) — `Copy`,
//!   `Concatenate` and friends over synthetic source relations with
//!   25-character alphanumeric fields, generated deterministically from
//!   [`orchestra_common::rng`] so every run sees identical data.
//! * **TPC-H-style OLAP queries** (Section VI-C) — scaled-down `lineitem`
//!   / `orders` / `customer` relations and the physical plans for Q1, Q3
//!   and Q6 expressed through [`orchestra_engine::PlanBuilder`] (two-phase
//!   aggregation for Q1, pipelined joins plus rehash for Q3, single-shot
//!   aggregation for Q6).
//!
//! Generators publish through [`orchestra_storage::UpdateBatch`] so data
//! flows through the same versioned-publication path the paper's
//! participants use.  Today the crate hosts [`generated_relation`], the
//! deterministic row generator the scenario builders share; the ROADMAP
//! tracks the full scenario and query catalogue.

use orchestra_common::{rng, Tuple, Value};

/// Generate `rows` deterministic tuples `(id, field)` for a relation
/// named `relation`, with STBenchmark-style 25-character alphanumeric
/// payload fields.  The same `(seed, relation, rows)` always yields the
/// same data.
pub fn generated_relation(seed: u64, relation: &str, rows: usize) -> Vec<Tuple> {
    let mut r = rng::seeded_stream(seed, relation);
    (0..rows)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::str(rng::alphanumeric(&mut r, 25)),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_relation() {
        let a = generated_relation(7, "source", 50);
        let b = generated_relation(7, "source", 50);
        let c = generated_relation(7, "target", 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert_eq!(a[0].value(1).as_str().unwrap().len(), 25);
    }
}
