//! # orchestra-workloads
//!
//! Workload generators and fixed benchmark plans for the evaluation.
//!
//! The paper evaluates two workloads, both reproduced here:
//!
//! * **STBenchmark mapping scenarios** (Section VI-B) — [`stbenchmark`]
//!   hosts the `Copy` and `Concatenate` scenario builders over synthetic
//!   source relations with 25-character alphanumeric fields, generated
//!   deterministically from [`orchestra_common::rng`] so every run sees
//!   identical data.
//! * **TPC-H-style OLAP queries** (Section VI-C) — [`tpch`] hosts
//!   scaled-down `lineitem` / `orders` / `customer` generators and the
//!   physical plans for Q1, Q3 and Q6 expressed through
//!   [`orchestra_engine::PlanBuilder`] (two-phase aggregation for Q1,
//!   pipelined joins plus rehash for Q3, single-shot aggregation for Q6).
//!
//! Every catalogue entry implements the [`Workload`] trait — relations,
//! data batch, a [`orchestra_optimizer::LogicalQuery`] describing the
//! query declaratively, a hand-built physical plan kept as a test
//! oracle, and a single-node reference answer computed directly from the
//! generated rows — so the benchmark harness and the correctness tests
//! drive all of them uniformly.  The harness routes execution through
//! the optimizer ([`compiled_plan`]), while the hand-built
//! [`Workload::reference_plan`]s pin down what the optimizer must beat
//! or match.  Generators publish through
//! [`orchestra_storage::UpdateBatch`] so data flows through the same
//! versioned-publication path the paper's participants use.

pub mod stbenchmark;
pub mod tpch;

use orchestra_common::{rng, Epoch, NodeId, Relation, Result, Tuple, Value};
use orchestra_engine::PhysicalPlan;
use orchestra_optimizer::{LogicalQuery, Statistics};
use orchestra_storage::{DistributedStorage, StorageConfig, UpdateBatch};
use orchestra_substrate::{AllocationScheme, RoutingTable};

pub use stbenchmark::{ConcatenateScenario, CopyScenario};
pub use tpch::{TpchDataset, TpchQuery, TpchWorkload};

/// One benchmark workload: source relations, deterministic data, a
/// declarative query, a hand-built oracle plan, and the single-node
/// reference answer the distributed run must reproduce tuple for tuple.
pub trait Workload {
    /// Short machine-readable name (used in experiment output).
    fn name(&self) -> String;
    /// The relations the workload reads, ready to register.
    fn relations(&self) -> Vec<Relation>;
    /// The deterministic data, as one publishable batch.
    fn batch(&self) -> UpdateBatch;
    /// The workload's query as a logical description, ready for
    /// [`orchestra_optimizer::compile`] (see [`compiled_plan`]).
    fn logical(&self) -> LogicalQuery;
    /// The hand-built physical plan of the workload's query, kept as the
    /// oracle the optimizer-compiled plan is validated against.
    fn reference_plan(&self) -> PhysicalPlan;
    /// The answer computed directly from the generated rows on a single
    /// node, bypassing every distributed code path, sorted like
    /// [`orchestra_engine::QueryReport::rows`].
    fn reference(&self) -> Vec<Tuple>;
}

/// Compile a workload's logical query against the statistics of a
/// deployed cluster — the plan the experiment harness executes.
pub fn compiled_plan(
    workload: &dyn Workload,
    storage: &DistributedStorage,
    epoch: Epoch,
) -> Result<PhysicalPlan> {
    let stats = Statistics::collect(storage, epoch);
    orchestra_optimizer::compile(&workload.logical(), &stats)
}

/// Stand up an `nodes`-node balanced cluster holding the workload's data:
/// build the routing table (replication factor 3, capped at the cluster
/// size), register the relations, publish the batch, and return the
/// storage together with the epoch to query.
pub fn deploy(workload: &dyn Workload, nodes: u16) -> Result<(DistributedStorage, Epoch)> {
    let ids: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let replication = 3.min(ids.len().max(1));
    let routing = RoutingTable::build(&ids, AllocationScheme::Balanced, replication);
    let mut storage = DistributedStorage::new(routing, StorageConfig::default());
    for relation in workload.relations() {
        storage.register_relation(relation);
    }
    let epoch = storage.publish(&workload.batch())?;
    Ok((storage, epoch))
}

/// Generate `rows` deterministic tuples `(id, field)` for a relation
/// named `relation`, with STBenchmark-style 25-character alphanumeric
/// payload fields.  The same `(seed, relation, rows)` always yields the
/// same data.
pub fn generated_relation(seed: u64, relation: &str, rows: usize) -> Vec<Tuple> {
    let mut r = rng::seeded_stream(seed, relation);
    (0..rows)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::str(rng::alphanumeric(&mut r, 25)),
            ])
        })
        .collect()
}

/// Like [`generated_relation`] but with `fields` independent 25-character
/// string columns after the integer key — the shape the STBenchmark
/// `Concatenate` scenario maps from.
pub fn generated_relation_wide(
    seed: u64,
    relation: &str,
    rows: usize,
    fields: usize,
) -> Vec<Tuple> {
    let mut r = rng::seeded_stream(seed, relation);
    (0..rows)
        .map(|i| {
            let mut values = Vec::with_capacity(fields + 1);
            values.push(Value::Int(i as i64));
            for _ in 0..fields {
                values.push(Value::str(rng::alphanumeric(&mut r, 25)));
            }
            Tuple::new(values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_relation() {
        let a = generated_relation(7, "source", 50);
        let b = generated_relation(7, "source", 50);
        let c = generated_relation(7, "target", 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert_eq!(a[0].value(1).as_str().unwrap().len(), 25);
    }

    #[test]
    fn wide_generation_shapes_rows() {
        let rows = generated_relation_wide(7, "source", 20, 3);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].arity(), 4);
        for col in 1..4 {
            assert_eq!(rows[5].value(col).as_str().unwrap().len(), 25);
        }
        assert_eq!(rows, generated_relation_wide(7, "source", 20, 3));
    }

    #[test]
    fn deploy_builds_a_queryable_cluster() {
        let w = CopyScenario { seed: 1, rows: 40 };
        let (storage, epoch) = deploy(&w, 4).unwrap();
        assert_eq!(storage.routing().node_count(), 4);
        let exec = orchestra_engine::QueryExecutor::new(
            &storage,
            orchestra_engine::EngineConfig::default(),
        );
        let report = exec.execute(&w.reference_plan(), epoch, NodeId(0)).unwrap();
        assert_eq!(report.rows, w.reference());
    }

    #[test]
    fn compiled_plans_execute_like_the_hand_built_oracles() {
        let w = ConcatenateScenario { seed: 3, rows: 30 };
        let (storage, epoch) = deploy(&w, 4).unwrap();
        let plan = compiled_plan(&w, &storage, epoch).unwrap();
        let exec = orchestra_engine::QueryExecutor::new(
            &storage,
            orchestra_engine::EngineConfig::default(),
        );
        let report = exec.execute(&plan, epoch, NodeId(0)).unwrap();
        assert_eq!(report.rows, w.reference());
    }
}
