//! STBenchmark mapping scenarios (paper Section VI-B).
//!
//! The paper drives the engine with schema-mapping scenarios from
//! STBenchmark over synthetic source relations whose payload fields are
//! 25-character alphanumeric strings.  Two scenarios are reproduced:
//!
//! * [`CopyScenario`] — materialise the target as an exact copy of the
//!   source (a pure scan-and-ship plan: the paper's baseline for
//!   scale-out and recovery sweeps);
//! * [`ConcatenateScenario`] — the target glues three source attributes
//!   into one, exercising the `Compute-function` operator's string
//!   concatenation.

use crate::{generated_relation, generated_relation_wide, Workload};
use orchestra_common::{ColumnType, Relation, Schema, Tuple, Value};
use orchestra_engine::{PhysicalPlan, PlanBuilder, ScalarExpr};
use orchestra_optimizer::{LogicalExpr, LogicalQuery};
use orchestra_storage::UpdateBatch;

/// Separator the `Concatenate` mapping inserts between glued fields.
const CONCAT_SEPARATOR: &str = " ";

/// STBenchmark `Copy`: the target is an exact copy of the source
/// relation `st_source(id, field)`.
#[derive(Clone, Copy, Debug)]
pub struct CopyScenario {
    /// Seed of the deterministic data generator.
    pub seed: u64,
    /// Number of source rows.
    pub rows: usize,
}

impl Workload for CopyScenario {
    fn name(&self) -> String {
        "stbenchmark-copy".into()
    }

    fn relations(&self) -> Vec<Relation> {
        vec![Relation::partitioned(
            "st_source",
            Schema::keyed_on_first(vec![("id", ColumnType::Int), ("field", ColumnType::Str)]),
        )]
    }

    fn batch(&self) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for row in generated_relation(self.seed, "st_source", self.rows) {
            batch.insert("st_source", row);
        }
        batch
    }

    fn logical(&self) -> LogicalQuery {
        let mut q = LogicalQuery::new();
        let src = q.relation("st_source");
        q.select(vec![LogicalExpr::col(src, 0), LogicalExpr::col(src, 1)]);
        q
    }

    fn reference_plan(&self) -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b.scan("st_source", 2, None);
        let ship = b.ship(scan);
        b.output(ship)
    }

    fn reference_for(&self, tables: &crate::TableSet) -> Vec<Tuple> {
        let mut rows = tables.get("st_source").cloned().unwrap_or_default();
        rows.sort();
        rows
    }
}

/// STBenchmark `Concatenate`: the target attribute is the concatenation
/// of three source attributes of `st_parts(id, first, middle, last)`.
#[derive(Clone, Copy, Debug)]
pub struct ConcatenateScenario {
    /// Seed of the deterministic data generator.
    pub seed: u64,
    /// Number of source rows.
    pub rows: usize,
}

impl ConcatenateScenario {
    fn source_rows(&self) -> Vec<Tuple> {
        generated_relation_wide(self.seed, "st_parts", self.rows, 3)
    }
}

impl Workload for ConcatenateScenario {
    fn name(&self) -> String {
        "stbenchmark-concatenate".into()
    }

    fn relations(&self) -> Vec<Relation> {
        vec![Relation::partitioned(
            "st_parts",
            Schema::keyed_on_first(vec![
                ("id", ColumnType::Int),
                ("first", ColumnType::Str),
                ("middle", ColumnType::Str),
                ("last", ColumnType::Str),
            ]),
        )]
    }

    fn batch(&self) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for row in self.source_rows() {
            batch.insert("st_parts", row);
        }
        batch
    }

    fn logical(&self) -> LogicalQuery {
        let mut q = LogicalQuery::new();
        let parts = q.relation("st_parts");
        q.select(vec![
            LogicalExpr::col(parts, 0),
            LogicalExpr::Concat(vec![
                LogicalExpr::col(parts, 1),
                LogicalExpr::lit(CONCAT_SEPARATOR),
                LogicalExpr::col(parts, 2),
                LogicalExpr::lit(CONCAT_SEPARATOR),
                LogicalExpr::col(parts, 3),
            ]),
        ]);
        q
    }

    fn reference_plan(&self) -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b.scan("st_parts", 4, None);
        let glued = b.compute(
            scan,
            vec![
                ScalarExpr::col(0),
                ScalarExpr::Concat(vec![
                    ScalarExpr::col(1),
                    ScalarExpr::lit(CONCAT_SEPARATOR),
                    ScalarExpr::col(2),
                    ScalarExpr::lit(CONCAT_SEPARATOR),
                    ScalarExpr::col(3),
                ]),
            ],
        );
        let ship = b.ship(glued);
        b.output(ship)
    }

    fn reference_for(&self, tables: &crate::TableSet) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = tables
            .get("st_parts")
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|row| {
                let glued = format!(
                    "{}{sep}{}{sep}{}",
                    row.value(1),
                    row.value(2),
                    row.value(3),
                    sep = CONCAT_SEPARATOR,
                );
                Tuple::new(vec![row.value(0).clone(), Value::str(glued)])
            })
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy;
    use orchestra_common::{Epoch, NodeId};
    use orchestra_engine::{EngineConfig, QueryExecutor};

    fn run(workload: &dyn Workload, nodes: u16) -> Vec<Tuple> {
        let (storage, epoch) = deploy(workload, nodes).unwrap();
        assert_eq!(epoch, Epoch(0));
        QueryExecutor::new(&storage, EngineConfig::default())
            .execute(&workload.reference_plan(), epoch, NodeId(0))
            .unwrap()
            .rows
    }

    /// Both scenarios' logical queries compile to plans that reproduce
    /// the reference answer — the optimizer path and the hand-built path
    /// agree.
    #[test]
    fn compiled_scenarios_match_their_references() {
        let copy = CopyScenario { seed: 11, rows: 60 };
        let concat = ConcatenateScenario { seed: 13, rows: 40 };
        let workloads: [&dyn Workload; 2] = [&copy, &concat];
        for w in workloads {
            let (storage, epoch) = deploy(w, 5).unwrap();
            let plan = crate::compiled_plan(w, &storage, epoch).unwrap();
            let rows = QueryExecutor::new(&storage, EngineConfig::default())
                .execute(&plan, epoch, NodeId(0))
                .unwrap()
                .rows;
            assert_eq!(rows, w.reference(), "{}", w.name());
        }
    }

    #[test]
    fn copy_scenario_reproduces_the_source() {
        let w = CopyScenario {
            seed: 11,
            rows: 120,
        };
        let rows = run(&w, 6);
        assert_eq!(rows.len(), 120);
        assert_eq!(rows, w.reference());
    }

    #[test]
    fn concatenate_scenario_glues_three_fields() {
        let w = ConcatenateScenario { seed: 13, rows: 80 };
        let rows = run(&w, 5);
        assert_eq!(rows.len(), 80);
        assert_eq!(rows, w.reference());
        let field = rows[0].value(1).as_str().unwrap();
        assert_eq!(field.len(), 25 * 3 + 2 * CONCAT_SEPARATOR.len());
        assert_eq!(field.split(CONCAT_SEPARATOR).count(), 3);
    }
}
