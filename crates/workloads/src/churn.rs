//! Deterministic sustained-churn event streams.
//!
//! The paper's evaluation holds the membership fixed per experiment; the
//! gossip layer ([`orchestra_substrate::gossip`]) removes that
//! assumption, and this module generates the load for it: per-epoch
//! batches of join/leave/failure events whose *counts* follow a Poisson
//! process (drawn via `sample_exp` inter-arrival sums, one draw per
//! event), the standard model for independent node arrivals and
//! departures.  The same `(spec, universe, initial)` always yields the
//! same stream, so churn benchmarks stay byte-reproducible.
//!
//! Arrivals prefer to *rejoin* a previously departed node (exercising the
//! incarnation-refutation path) and otherwise admit a fresh participant;
//! departures pick a uniformly random live node and crash it with the
//! configured probability (otherwise it leaves gracefully).  Protected
//! nodes — typically the query initiator and its workload anchors — are
//! never departed, and the live population never drops below `min_live`.

use orchestra_common::{rng, NodeId, OrchestraError, Result};
use orchestra_substrate::MembershipChange;

/// Shape of a sustained-churn run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Number of epochs (event batches) to generate.
    pub epochs: usize,
    /// Mean node arrivals per epoch (Poisson rate).
    pub arrivals_per_epoch: f64,
    /// Mean node departures per epoch (Poisson rate).
    pub departures_per_epoch: f64,
    /// Probability that a departure is a crash rather than a graceful
    /// leave.
    pub crash_fraction: f64,
    /// Floor on the live population; departures are suppressed below it.
    pub min_live: usize,
    /// Seed for every random draw of the stream.
    pub seed: u64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            epochs: 8,
            arrivals_per_epoch: 2.0,
            departures_per_epoch: 2.0,
            crash_fraction: 0.5,
            min_live: 4,
            seed: 0xc4u64,
        }
    }
}

/// A generated churn stream: one batch of membership events per epoch.
#[derive(Clone, Debug)]
pub struct ChurnStream {
    events: Vec<Vec<MembershipChange>>,
}

impl ChurnStream {
    /// Number of epochs.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the stream empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events of epoch `i`, in application order.
    pub fn epoch(&self, i: usize) -> &[MembershipChange] {
        &self.events[i]
    }

    /// Total events across all epochs.
    pub fn total_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }
}

/// Draw a Poisson(`mean`) count: the number of unit-mean exponential
/// inter-arrival times that fit into an interval of length `mean`.
fn poisson_count(r: &mut rng::StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let mut elapsed = 0.0;
    let mut count = 0;
    loop {
        elapsed += r.sample_exp(1.0);
        if elapsed > mean {
            return count;
        }
        count += 1;
    }
}

/// Generate a churn stream over a universe of node ids `0..universe`, of
/// which `0..initial` start live.  Nodes in `protected` never depart.
pub fn churn_stream(
    universe: usize,
    initial: usize,
    protected: &[NodeId],
    spec: &ChurnSpec,
) -> Result<ChurnStream> {
    if initial == 0 || initial > universe {
        return Err(OrchestraError::Execution(format!(
            "churn stream needs 0 < initial ({initial}) <= universe ({universe})"
        )));
    }
    if !(0.0..=1.0).contains(&spec.crash_fraction) {
        return Err(OrchestraError::Execution(format!(
            "crash_fraction must be a probability, got {}",
            spec.crash_fraction
        )));
    }
    let mut alive: Vec<NodeId> = (0..initial as u16).map(NodeId).collect();
    let mut departed: Vec<NodeId> = Vec::new();
    let mut next_fresh = initial as u16;
    let mut events = Vec::with_capacity(spec.epochs);

    for epoch in 0..spec.epochs {
        let mut r = rng::seeded_stream(spec.seed, &format!("churn-epoch-{epoch}"));
        let arrivals = poisson_count(&mut r, spec.arrivals_per_epoch);
        let departures = poisson_count(&mut r, spec.departures_per_epoch);
        let mut batch = Vec::new();

        for _ in 0..arrivals {
            // Prefer rejoining a departed node (a replacement process on
            // the same identity, exercising incarnation refutation) half
            // the time; otherwise admit a brand-new participant.
            let rejoin =
                !departed.is_empty() && ((next_fresh as usize) >= universe || r.random_bool(0.5));
            let node = if rejoin {
                departed.remove(r.random_range(0..departed.len()))
            } else if (next_fresh as usize) < universe {
                let n = NodeId(next_fresh);
                next_fresh += 1;
                n
            } else {
                continue; // universe exhausted and nobody to rejoin
            };
            alive.push(node);
            alive.sort_unstable();
            batch.push(MembershipChange::Joined(node));
        }

        for _ in 0..departures {
            if alive.len() <= spec.min_live {
                break;
            }
            let eligible: Vec<usize> = (0..alive.len())
                .filter(|i| !protected.contains(&alive[*i]))
                .collect();
            if eligible.is_empty() {
                break;
            }
            let victim = alive.remove(eligible[r.random_range(0..eligible.len())]);
            departed.push(victim);
            batch.push(if r.random_bool(spec.crash_fraction) {
                MembershipChange::Failed(victim)
            } else {
                MembershipChange::Left(victim)
            });
        }

        events.push(batch);
    }
    Ok(ChurnStream { events })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> ChurnSpec {
        ChurnSpec {
            epochs: 12,
            arrivals_per_epoch: 3.0,
            departures_per_epoch: 3.0,
            crash_fraction: 0.5,
            min_live: 4,
            seed,
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let a = churn_stream(64, 16, &[NodeId(0)], &spec(7)).unwrap();
        let b = churn_stream(64, 16, &[NodeId(0)], &spec(7)).unwrap();
        assert_eq!(a.len(), 12);
        for i in 0..a.len() {
            assert_eq!(a.epoch(i), b.epoch(i), "epoch {i}");
        }
        let c = churn_stream(64, 16, &[NodeId(0)], &spec(8)).unwrap();
        assert!(
            (0..12).any(|i| a.epoch(i) != c.epoch(i)),
            "seed must matter"
        );
    }

    #[test]
    fn protected_nodes_never_depart_and_population_keeps_its_floor() {
        let protected = [NodeId(0), NodeId(1)];
        let s = churn_stream(32, 8, &protected, &spec(3)).unwrap();
        let mut live = 8usize;
        assert!(s.total_events() > 0);
        for i in 0..s.len() {
            for ev in s.epoch(i) {
                match ev {
                    MembershipChange::Joined(_) => live += 1,
                    MembershipChange::Left(n) | MembershipChange::Failed(n) => {
                        assert!(!protected.contains(n), "protected node {n} departed");
                        live -= 1;
                    }
                }
                assert!(live >= 4, "population fell below the floor at epoch {i}");
            }
        }
    }

    #[test]
    fn rejoins_and_both_departure_kinds_occur() {
        let s = churn_stream(24, 12, &[], &spec(11)).unwrap();
        let mut seen_departed: Vec<NodeId> = Vec::new();
        let mut rejoined = false;
        let mut crashed = false;
        let mut left = false;
        for i in 0..s.len() {
            for ev in s.epoch(i) {
                match ev {
                    MembershipChange::Joined(n) => rejoined |= seen_departed.contains(n),
                    MembershipChange::Left(n) => {
                        left = true;
                        seen_departed.push(*n);
                    }
                    MembershipChange::Failed(n) => {
                        crashed = true;
                        seen_departed.push(*n);
                    }
                }
            }
        }
        assert!(rejoined, "a sustained stream should rejoin departed nodes");
        assert!(crashed && left, "both departure kinds should occur");
    }

    #[test]
    fn poisson_counts_have_the_right_mean() {
        let mut r = rng::seeded(42);
        let n = 2000;
        let total: usize = (0..n).map(|_| poisson_count(&mut r, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "empirical mean {mean} far from 3");
    }

    #[test]
    fn degenerate_specs_are_rejected_or_empty() {
        assert!(churn_stream(8, 0, &[], &spec(1)).is_err());
        assert!(churn_stream(8, 9, &[], &spec(1)).is_err());
        let bad = ChurnSpec {
            crash_fraction: 1.5,
            ..spec(1)
        };
        assert!(churn_stream(8, 4, &[], &bad).is_err());
        let none = ChurnSpec {
            arrivals_per_epoch: 0.0,
            departures_per_epoch: 0.0,
            ..spec(1)
        };
        let s = churn_stream(8, 4, &[], &none).unwrap();
        assert_eq!(s.total_events(), 0);
    }
}
