//! Epidemic membership dissemination.
//!
//! The paper models membership as a single authoritative routing snapshot
//! per query, rebuilt stop-the-world on every change — workable for the
//! "dozens to hundreds of relatively stable machines" of Section I, but
//! not for sustained churn at a thousand participants.  This module adds
//! the Dynamo-family alternative: every node keeps its own *local* view of
//! the membership and learns about changes through **rumors** exchanged in
//! periodic fanout-`k` gossip rounds over the simulated network, with real
//! message and byte accounting.
//!
//! ## Rumor lifecycle
//!
//! A [`Rumor`] asserts that `subject` is in [`PeerState`] at a given
//! **incarnation**.  Incarnations are per-origin version numbers: a node
//! bumps its own incarnation each time it (re)joins, which is what lets a
//! rejoined node *refute* stale failure rumors still circulating about its
//! previous life.  Conflicts resolve by a total order:
//!
//! 1. higher incarnation wins outright;
//! 2. at equal incarnation, `Failed > Left > Alive` (a crash report about
//!    incarnation `i` beats the birth announcement of incarnation `i`, and
//!    only incarnation `i + 1` can overturn it).
//!
//! An accepted rumor becomes **hot**: the receiver retransmits it for a
//! bounded number of rounds (`O(log n)` by default) to `fanout` peers
//! chosen uniformly from the nodes it currently believes alive, then stops
//! — classic rumor mongering, which spreads an update to all `n` nodes in
//! `O(log n)` expected rounds while keeping per-round traffic bounded.
//!
//! Rumor mongering alone can strand a cluster: a rumor's retransmit
//! budgets may all expire before it reaches every member, and the
//! knowledge that a node failed can vanish outright if its detector
//! departs before spreading the report.  Two SWIM-style backstops close
//! those gaps: each round every live node *probes* one believed-alive
//! peer (learning the terminal record of a peer that is in truth gone),
//! and [`Gossip::run_until_converged`] falls back to a **full-state
//! sync round** whenever the hot path goes quiet while views still
//! disagree.
//!
//! ## Derived membership
//!
//! Nothing here is authoritative.  A node's [`MemberView`] *derives* a
//! [`Membership`] (and from it a `RoutingSnapshot`) on demand — two nodes
//! may derive different memberships at the same instant, and a query
//! planned against one node's snapshot may reference peers that are
//! already gone.  That staleness is deliberate: the engine's existing
//! Restart/Incremental recovery absorbs it (see
//! `QueryExecutor::execute_with_stale_snapshot`), so membership agreement
//! is needed only *eventually*, not per-query.

use crate::allocation::AllocationScheme;
use crate::membership::{Membership, MembershipChange};
use crate::replication::ReplicationPolicy;
use crate::routing::RoutingSnapshot;
use orchestra_common::rng::{self, StdRng};
use orchestra_common::{NodeId, OrchestraError, Result};
use orchestra_simnet::{ClusterProfile, SimTime, Simulator};
use std::collections::BTreeMap;

/// Wire size of one serialized rumor: 2 bytes subject id, 8 bytes
/// incarnation, 1 byte state tag.
pub const RUMOR_WIRE_BYTES: usize = 11;

/// Fixed per-message overhead: sender id, rumor count, protocol/round
/// header — the envelope around the rumor batch.
pub const GOSSIP_HEADER_BYTES: usize = 16;

/// The state a rumor asserts about its subject.
///
/// The declaration order *is* the same-incarnation precedence: at equal
/// incarnation a `Failed` report beats `Left`, which beats `Alive`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PeerState {
    /// The subject is a live participant.
    Alive,
    /// The subject departed gracefully.
    Left,
    /// The subject was detected as crashed.
    Failed,
}

/// One membership assertion circulating through the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rumor {
    /// The node the rumor is about.
    pub subject: NodeId,
    /// The subject's per-origin incarnation number the assertion refers
    /// to.  Bumped by the subject itself on every (re)join.
    pub incarnation: u64,
    /// The asserted state.
    pub state: PeerState,
}

impl Rumor {
    /// Does this rumor carry newer information than `(incarnation,
    /// state)`?  Higher incarnation wins; ties break by state precedence.
    pub fn supersedes(&self, incarnation: u64, state: PeerState) -> bool {
        self.incarnation > incarnation || (self.incarnation == incarnation && self.state > state)
    }
}

/// One node's local, versioned view of the membership.
///
/// Holds the most recent `(incarnation, state)` record accepted for every
/// node it has ever heard about, the set of still-hot rumors it is
/// mongering, and the ordered log of accepted changes (the derived
/// [`Membership::history`]).
#[derive(Clone, Debug)]
pub struct MemberView {
    records: BTreeMap<NodeId, (u64, PeerState)>,
    /// Rumors this node is still retransmitting, with remaining rounds.
    hot: Vec<(Rumor, u32)>,
    history: Vec<MembershipChange>,
    version: u64,
}

impl MemberView {
    /// A view that already knows `alive` members at incarnation 1 — the
    /// bootstrap state of a node that joined a settled cluster.
    pub fn seeded(alive: impl IntoIterator<Item = NodeId>) -> MemberView {
        MemberView {
            records: alive
                .into_iter()
                .map(|n| (n, (1, PeerState::Alive)))
                .collect(),
            hot: Vec::new(),
            history: Vec::new(),
            version: 0,
        }
    }

    /// Merge a rumor into the view.  Returns `true` if it carried news
    /// (and is now hot for `budget` more rounds); stale and duplicate
    /// rumors are ignored.
    pub fn apply(&mut self, rumor: Rumor, budget: u32) -> bool {
        if let Some(&(inc, state)) = self.records.get(&rumor.subject) {
            if !rumor.supersedes(inc, state) {
                return false;
            }
        }
        self.records
            .insert(rumor.subject, (rumor.incarnation, rumor.state));
        // A newer assertion refutes any older hot rumor about the subject.
        self.hot.retain(|(r, _)| r.subject != rumor.subject);
        if budget > 0 {
            self.hot.push((rumor, budget));
        }
        self.history.push(match rumor.state {
            PeerState::Alive => MembershipChange::Joined(rumor.subject),
            PeerState::Left => MembershipChange::Left(rumor.subject),
            PeerState::Failed => MembershipChange::Failed(rumor.subject),
        });
        self.version += 1;
        true
    }

    /// The rumors to push this round.  Each hot rumor's budget drops by
    /// one; exhausted rumors go cold (they stay in `records`, they just
    /// stop being retransmitted).
    pub fn take_hot(&mut self) -> Vec<Rumor> {
        let out: Vec<Rumor> = self.hot.iter().map(|(r, _)| *r).collect();
        for entry in &mut self.hot {
            entry.1 -= 1;
        }
        self.hot.retain(|(_, b)| *b > 0);
        out
    }

    /// Every record of this view as a rumor — the payload of a
    /// full-state anti-entropy push ([`Gossip::run_sync_round`]).
    pub fn all_rumors(&self) -> Vec<Rumor> {
        self.records
            .iter()
            .map(|(n, (incarnation, state))| Rumor {
                subject: *n,
                incarnation: *incarnation,
                state: *state,
            })
            .collect()
    }

    /// Monotone counter bumped on every accepted rumor: two views with
    /// equal versions that started from the same seed are identical.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The latest accepted record about `node`, if any.
    pub fn state_of(&self, node: NodeId) -> Option<(u64, PeerState)> {
        self.records.get(&node).copied()
    }

    /// Does this view believe `node` is currently alive?
    pub fn believes_alive(&self, node: NodeId) -> bool {
        matches!(self.records.get(&node), Some((_, PeerState::Alive)))
    }

    /// All nodes this view believes alive, sorted by id.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.records
            .iter()
            .filter(|(_, (_, s))| *s == PeerState::Alive)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Derive a [`Membership`] from this view: the believed-alive set,
    /// the believed-failed set, and the accepted-change log.  Possibly
    /// stale by construction.
    pub fn membership(&self, scheme: AllocationScheme, policy: ReplicationPolicy) -> Membership {
        let failed = self
            .records
            .iter()
            .filter(|(_, (_, s))| *s == PeerState::Failed)
            .map(|(n, _)| *n);
        Membership::derived(
            self.alive_nodes(),
            failed,
            self.history.clone(),
            scheme,
            policy,
        )
    }

    /// Derive a routing snapshot a query initiator would plan against.
    pub fn snapshot(
        &self,
        scheme: AllocationScheme,
        policy: ReplicationPolicy,
    ) -> Result<RoutingSnapshot> {
        Ok(self.membership(scheme, policy).routing_table()?.snapshot())
    }
}

/// Configuration of the gossip protocol.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Peers each node pushes its hot rumors to per round.
    pub fanout: usize,
    /// Virtual time between gossip rounds, in milliseconds.
    pub round_ms: u64,
    /// Rounds a node retransmits a freshly accepted rumor; `0` selects
    /// `⌈log2 n⌉ + 2` automatically.
    pub push_rounds: u32,
    /// Seed for peer selection (all gossip randomness flows from here).
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 2,
            round_ms: 200,
            push_rounds: 0,
            seed: 0x60551b,
        }
    }
}

/// A gossiping cluster: the ground truth of who is actually up, every
/// live node's [`MemberView`], and the simulated network the rumors
/// travel over.
///
/// Drives the whole-cluster simulation; per-node state stays strictly
/// view-local, so the convergence and staleness it measures are honest.
pub struct Gossip {
    cfg: GossipConfig,
    push_budget: u32,
    sim: Simulator<Vec<Rumor>>,
    /// `Some` iff the node currently participates in gossip.
    views: Vec<Option<MemberView>>,
    /// Ground truth: the latest incarnation and state of every node that
    /// was ever a member (`None` = never joined).
    truth: Vec<Option<(u64, PeerState)>>,
    rounds_run: u64,
    messages_sent: u64,
}

impl Gossip {
    /// A settled cluster of nodes `0..initial` out of a universe of
    /// `universe` possible participants, gossiping over `profile`.
    ///
    /// Panics if `initial` is zero or exceeds `universe`.
    pub fn new(
        initial: usize,
        universe: usize,
        cfg: GossipConfig,
        profile: ClusterProfile,
    ) -> Gossip {
        assert!(
            initial > 0 && initial <= universe,
            "need 0 < initial <= universe"
        );
        assert!(universe <= u16::MAX as usize, "node ids are u16");
        let push_budget = if cfg.push_rounds == 0 {
            (universe.max(2) as f64).log2().ceil() as u32 + 2
        } else {
            cfg.push_rounds
        };
        let members: Vec<NodeId> = (0..initial as u16).map(NodeId).collect();
        let mut views = vec![None; universe];
        for n in &members {
            views[n.index()] = Some(MemberView::seeded(members.iter().copied()));
        }
        let mut truth = vec![None; universe];
        for n in &members {
            truth[n.index()] = Some((1, PeerState::Alive));
        }
        Gossip {
            cfg,
            push_budget,
            sim: Simulator::new(universe, profile),
            views,
            truth,
            rounds_run: 0,
            messages_sent: 0,
        }
    }

    /// Inject a membership event into the ground truth and seed the
    /// corresponding rumor at its origin:
    ///
    /// * `Joined(x)` — `x` bumps its incarnation, copies the view of its
    ///   bootstrap contact (the lowest-id live node), and both start
    ///   mongering the `Alive` rumor.
    /// * `Left(x)` — `x` announces its departure to its contact and goes
    ///   dark (messages to it now drop).
    /// * `Failed(x)` — `x` crashes silently; its failure-detector
    ///   neighbour (next live node by id) originates the `Failed` rumor.
    pub fn inject(&mut self, change: MembershipChange) -> Result<()> {
        let now = self.sim.now();
        match change {
            MembershipChange::Joined(x) => {
                if self.views[x.index()].is_some() {
                    return Err(OrchestraError::Substrate(format!(
                        "node {x} is already gossiping"
                    )));
                }
                let inc = self.truth[x.index()].map_or(1, |(i, _)| i + 1);
                self.truth[x.index()] = Some((inc, PeerState::Alive));
                self.sim.revive_node(x);
                let rumor = Rumor {
                    subject: x,
                    incarnation: inc,
                    state: PeerState::Alive,
                };
                let mut view = match self.contact(x) {
                    Some(c) => self.views[c.index()].clone().expect("contact is live"),
                    None => MemberView::seeded([]),
                };
                view.apply(rumor, self.push_budget);
                self.views[x.index()] = Some(view);
                if let Some(c) = self.contact(x) {
                    self.apply_at(c, rumor);
                }
            }
            MembershipChange::Left(x) => {
                let Some((inc, _)) = self.truth[x.index()] else {
                    return Err(OrchestraError::Substrate(format!(
                        "node {x} was never a member"
                    )));
                };
                self.truth[x.index()] = Some((inc, PeerState::Left));
                self.views[x.index()] = None;
                self.sim.fail_node(x, now);
                let rumor = Rumor {
                    subject: x,
                    incarnation: inc,
                    state: PeerState::Left,
                };
                if let Some(c) = self.contact(x) {
                    self.apply_at(c, rumor);
                }
            }
            MembershipChange::Failed(x) => {
                let Some((inc, _)) = self.truth[x.index()] else {
                    return Err(OrchestraError::Substrate(format!(
                        "node {x} was never a member"
                    )));
                };
                self.truth[x.index()] = Some((inc, PeerState::Failed));
                self.views[x.index()] = None;
                self.sim.fail_node(x, now);
                let rumor = Rumor {
                    subject: x,
                    incarnation: inc,
                    state: PeerState::Failed,
                };
                if let Some(detector) = self.detector_of(x) {
                    self.apply_at(detector, rumor);
                }
            }
        }
        Ok(())
    }

    /// Run one gossip round: every live node probes one believed-alive
    /// peer (an accurate failure detector — a ping to a peer that has
    /// in truth departed returns no ack, and the prober learns its
    /// terminal record), then pushes its hot rumors to `fanout` peers
    /// drawn from the nodes *it* believes alive, and finally all
    /// resulting deliveries are merged.  Messages to departed nodes drop
    /// in the simulator (and are counted there).
    pub fn run_round(&mut self) {
        self.round(false);
    }

    /// One full-state anti-entropy round: every live node pushes its
    /// *entire* record set, not just its hot rumors, to `fanout` peers.
    /// Rumor mongering's per-record budgets can die out before a rumor
    /// reaches every member, freezing stale views; epidemic layers
    /// therefore back the hot path with periodic full sync (SWIM's
    /// anti-entropy), and [`Gossip::run_until_converged`] falls back to
    /// this whenever the hot path goes quiet while views still disagree.
    pub fn run_sync_round(&mut self) {
        self.round(true);
    }

    fn round(&mut self, full_sync: bool) {
        let start = SimTime::from_millis(self.rounds_run * self.cfg.round_ms);
        self.sim.advance_to(start);
        // Peer selection draws from a stream derived per round, so the
        // choices are independent of how callers interleave inject() with
        // run_round() — determinism depends only on the event sequence.
        let mut rng = self.round_rng();
        for id in 0..self.views.len() {
            let node = NodeId(id as u16);
            let Some(view) = self.views[id].as_mut() else {
                continue;
            };
            let peers: Vec<NodeId> = view
                .alive_nodes()
                .into_iter()
                .filter(|p| *p != node)
                .collect();
            if peers.is_empty() {
                continue;
            }
            // The probe: without it, knowledge of a failure can vanish
            // entirely (the one-shot detector departs before its rumor
            // spreads) and no view could ever re-learn it.  Ping/ack
            // bytes are noise next to rumor payloads and are not part
            // of the byte accounting.
            let probe = peers[rng.random_range(0..peers.len())];
            if let Some((incarnation, state)) = self.truth[probe.index()] {
                if state != PeerState::Alive {
                    view.apply(
                        Rumor {
                            subject: probe,
                            incarnation,
                            state,
                        },
                        self.push_budget,
                    );
                }
            }
            let rumors = if full_sync {
                view.all_rumors()
            } else {
                view.take_hot()
            };
            if rumors.is_empty() {
                continue;
            }
            let bytes = GOSSIP_HEADER_BYTES + RUMOR_WIRE_BYTES * rumors.len();
            let k = self.cfg.fanout.min(peers.len());
            let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
            while chosen.len() < k {
                let cand = peers[rng.random_range(0..peers.len())];
                if !chosen.contains(&cand) {
                    chosen.push(cand);
                }
            }
            for dst in chosen {
                if self
                    .sim
                    .send(node, dst, bytes, start, rumors.clone())
                    .is_some()
                {
                    self.messages_sent += 1;
                }
            }
        }
        while let Some(d) = self.sim.next() {
            if let Some(view) = self.views[d.to.index()].as_mut() {
                for rumor in d.payload {
                    view.apply(rumor, self.push_budget);
                }
            }
        }
        self.rounds_run += 1;
    }

    /// Run rounds until every live view agrees with the ground truth,
    /// returning how many rounds it took.  Errors if `max_rounds` pass
    /// without convergence.
    ///
    /// Rumor mongering carries almost every run; if a round puts no
    /// message on the wire while views still disagree (the hot path died
    /// out before full coverage), the next round is a full-state sync
    /// ([`Gossip::run_sync_round`]) so convergence can never freeze.
    pub fn run_until_converged(&mut self, max_rounds: u64) -> Result<u64> {
        let start = self.rounds_run;
        let mut sync_next = false;
        while self.rounds_run - start <= max_rounds {
            if self.converged() {
                return Ok(self.rounds_run - start);
            }
            if self.rounds_run - start == max_rounds {
                break;
            }
            let sent_before = self.messages_sent;
            if sync_next {
                self.run_sync_round();
            } else {
                self.run_round();
            }
            sync_next = self.messages_sent == sent_before;
        }
        Err(OrchestraError::Substrate(format!(
            "gossip failed to converge within {max_rounds} rounds"
        )))
    }

    /// Do all live views agree with the ground truth about who is alive?
    pub fn converged(&self) -> bool {
        let truth_alive: Vec<bool> = self
            .truth
            .iter()
            .map(|t| matches!(t, Some((_, PeerState::Alive))))
            .collect();
        self.views.iter().flatten().all(|view| {
            (0..truth_alive.len()).all(|u| view.believes_alive(NodeId(u as u16)) == truth_alive[u])
        })
    }

    /// How many of `viewer`'s records lag the ground truth — the
    /// staleness a query planned at `viewer` right now would embed.
    pub fn staleness_of(&self, viewer: NodeId) -> usize {
        let Some(view) = self.views[viewer.index()].as_ref() else {
            return 0;
        };
        self.truth
            .iter()
            .enumerate()
            .filter(|(u, t)| {
                let Some((inc, state)) = t else { return false };
                let truth = Rumor {
                    subject: NodeId(*u as u16),
                    incarnation: *inc,
                    state: *state,
                };
                match view.state_of(truth.subject) {
                    Some((vi, vs)) => truth.supersedes(vi, vs),
                    None => true,
                }
            })
            .count()
    }

    /// The local view of `node`, if it is participating.
    pub fn view(&self, node: NodeId) -> Option<&MemberView> {
        self.views[node.index()].as_ref()
    }

    /// Ground truth: the nodes actually alive right now, sorted by id.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.truth
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, Some((_, PeerState::Alive))))
            .map(|(i, _)| NodeId(i as u16))
            .collect()
    }

    /// Gossip rounds executed so far.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Gossip messages actually placed on the wire.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total rumor bytes transferred (from the simulator's exact
    /// accounting).
    pub fn total_bytes(&self) -> u64 {
        self.sim.stats().total_bytes()
    }

    /// Messages dropped because a participant had already departed.
    pub fn dropped_messages(&self) -> u64 {
        self.sim.dropped_messages()
    }

    /// The retransmit budget given to freshly accepted rumors.
    pub fn push_budget(&self) -> u32 {
        self.push_budget
    }

    /// The lowest-id live node other than `x` — bootstrap contact and
    /// departure witness.
    fn contact(&self, x: NodeId) -> Option<NodeId> {
        self.live_nodes().into_iter().find(|n| *n != x)
    }

    /// The failure detector for `x`: the next live node by id (wrapping),
    /// a deterministic stand-in for the ping neighbour of Section V-C.
    fn detector_of(&self, x: NodeId) -> Option<NodeId> {
        let n = self.views.len() as u16;
        (1..n)
            .map(|step| NodeId((x.0 + step) % n))
            .find(|cand| self.views[cand.index()].is_some())
    }

    fn apply_at(&mut self, node: NodeId, rumor: Rumor) {
        if let Some(view) = self.views[node.index()].as_mut() {
            view.apply(rumor, self.push_budget);
        }
    }

    fn round_rng(&self) -> StdRng {
        rng::seeded_stream(
            self.cfg.seed ^ self.rounds_run.wrapping_mul(0x9e3779b97f4a7c15),
            "gossip-round",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Gossip {
        Gossip::new(
            n,
            n + 8,
            GossipConfig::default(),
            ClusterProfile::wan_metro(),
        )
    }

    #[test]
    fn settled_cluster_starts_converged() {
        let g = cluster(8);
        assert!(g.converged());
        assert_eq!(g.live_nodes().len(), 8);
        assert_eq!(g.total_bytes(), 0);
    }

    #[test]
    fn rumor_precedence_orders_states_and_incarnations() {
        let alive2 = Rumor {
            subject: NodeId(1),
            incarnation: 2,
            state: PeerState::Alive,
        };
        assert!(
            alive2.supersedes(1, PeerState::Failed),
            "higher incarnation wins"
        );
        assert!(
            !alive2.supersedes(2, PeerState::Failed),
            "equal incarnation: Failed beats Alive"
        );
        assert!(!alive2.supersedes(3, PeerState::Alive));
        let failed2 = Rumor {
            subject: NodeId(1),
            incarnation: 2,
            state: PeerState::Failed,
        };
        assert!(failed2.supersedes(2, PeerState::Left));
        assert!(failed2.supersedes(2, PeerState::Alive));
    }

    #[test]
    fn join_rumor_reaches_every_view() {
        let mut g = cluster(16);
        g.inject(MembershipChange::Joined(NodeId(20))).unwrap();
        assert!(!g.converged());
        let rounds = g.run_until_converged(64).unwrap();
        assert!(rounds > 0);
        for n in g.live_nodes() {
            assert!(
                g.view(n).unwrap().believes_alive(NodeId(20)),
                "{n} missed the join"
            );
        }
        assert!(g.total_bytes() > 0);
        assert!(g.messages_sent() > 0);
    }

    #[test]
    fn failure_rumor_evicts_the_crashed_node_everywhere() {
        let mut g = cluster(16);
        g.inject(MembershipChange::Failed(NodeId(3))).unwrap();
        g.run_until_converged(64).unwrap();
        for n in g.live_nodes() {
            assert!(!g.view(n).unwrap().believes_alive(NodeId(3)));
        }
        // The crashed node itself no longer participates.
        assert!(g.view(NodeId(3)).is_none());
    }

    #[test]
    fn rejoin_with_higher_incarnation_refutes_stale_failure_rumor() {
        let mut g = cluster(16);
        // Node 5 crashes; the failure rumor starts circulating...
        g.inject(MembershipChange::Failed(NodeId(5))).unwrap();
        g.run_round();
        // ...but node 5 rejoins (incarnation 2) before it has converged.
        g.inject(MembershipChange::Joined(NodeId(5))).unwrap();
        g.run_until_converged(64).unwrap();
        // The stale Failed(inc 1) rumor must not evict the rejoined node.
        for n in g.live_nodes() {
            let (inc, state) = g.view(n).unwrap().state_of(NodeId(5)).unwrap();
            assert_eq!(
                (inc, state),
                (2, PeerState::Alive),
                "view at {n} kept a stale record"
            );
        }
        assert!(g.live_nodes().contains(&NodeId(5)));
    }

    #[test]
    fn stale_failure_rumor_arriving_after_rejoin_is_discarded() {
        // Direct view-level check of the satellite requirement: a Failed
        // rumor about incarnation 1 reaching a view that already accepted
        // Alive at incarnation 2 is a no-op.
        let mut view = MemberView::seeded([NodeId(0), NodeId(1)]);
        assert!(view.apply(
            Rumor {
                subject: NodeId(1),
                incarnation: 2,
                state: PeerState::Alive,
            },
            3,
        ));
        let version = view.version();
        assert!(!view.apply(
            Rumor {
                subject: NodeId(1),
                incarnation: 1,
                state: PeerState::Failed,
            },
            3,
        ));
        assert_eq!(view.version(), version);
        assert!(view.believes_alive(NodeId(1)));
    }

    #[test]
    fn graceful_leave_disseminates() {
        let mut g = cluster(8);
        g.inject(MembershipChange::Left(NodeId(2))).unwrap();
        g.run_until_converged(64).unwrap();
        for n in g.live_nodes() {
            assert_eq!(
                g.view(n).unwrap().state_of(NodeId(2)),
                Some((1, PeerState::Left))
            );
        }
    }

    #[test]
    fn convergence_is_logarithmic_at_fanout_two() {
        for n in [32usize, 128] {
            let mut g = Gossip::new(
                n,
                n + 8,
                GossipConfig::default(),
                ClusterProfile::wan_metro(),
            );
            g.inject(MembershipChange::Joined(NodeId(n as u16)))
                .unwrap();
            let bound = 3 * (n as f64).log2().ceil() as u64 + 4;
            let rounds = g.run_until_converged(bound).unwrap();
            assert!(rounds <= bound, "n={n}: {rounds} rounds > bound {bound}");
        }
    }

    #[test]
    fn staleness_decays_to_zero_as_rumors_spread() {
        let mut g = cluster(32);
        g.inject(MembershipChange::Failed(NodeId(9))).unwrap();
        let viewer = NodeId(31);
        let before = g.staleness_of(viewer);
        assert_eq!(before, 1, "viewer has not heard about the crash yet");
        g.run_until_converged(64).unwrap();
        assert_eq!(g.staleness_of(viewer), 0);
    }

    #[test]
    fn derived_membership_and_snapshot_follow_the_view() {
        let mut g = cluster(8);
        g.inject(MembershipChange::Failed(NodeId(1))).unwrap();
        g.run_until_converged(64).unwrap();
        let view = g.view(NodeId(0)).unwrap();
        let m = view.membership(
            AllocationScheme::Balanced,
            ReplicationPolicy::FixedFactor(3),
        );
        assert_eq!(m.len(), 7);
        assert_eq!(m.failed_ids(), &[NodeId(1)]);
        assert!(!m.history().is_empty());
        let snap = view
            .snapshot(
                AllocationScheme::Balanced,
                ReplicationPolicy::FixedFactor(3),
            )
            .unwrap();
        assert!(!snap.contains_node(NodeId(1)));
        assert_eq!(snap.node_count(), 7);
    }

    #[test]
    fn gossip_is_deterministic() {
        let run = || {
            let mut g = cluster(24);
            g.inject(MembershipChange::Failed(NodeId(7))).unwrap();
            g.inject(MembershipChange::Joined(NodeId(30))).unwrap();
            let rounds = g.run_until_converged(64).unwrap();
            (rounds, g.total_bytes(), g.messages_sent())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lost_failure_knowledge_is_rediscovered_by_probing() {
        let mut g = cluster(8);
        // Node 3 crashes; its detector (node 4, the next live id) is the
        // only view holding the Failed(3) rumor...
        g.inject(MembershipChange::Failed(NodeId(3))).unwrap();
        // ...and then the detector crashes before a single round runs, so
        // knowledge of 3's death exists in no surviving view.
        g.inject(MembershipChange::Failed(NodeId(4))).unwrap();
        for n in g.live_nodes() {
            assert!(
                g.view(n).unwrap().believes_alive(NodeId(3)),
                "{n} should not yet know about 3's crash"
            );
        }
        // The per-round probe must rediscover the failure and converge.
        g.run_until_converged(64).unwrap();
        for n in g.live_nodes() {
            let view = g.view(n).unwrap();
            assert!(!view.believes_alive(NodeId(3)));
            assert!(!view.believes_alive(NodeId(4)));
        }
    }

    #[test]
    fn sync_round_ships_full_state_when_rumors_die_out() {
        let mut g = cluster(8);
        g.inject(MembershipChange::Joined(NodeId(9))).unwrap();
        // Exhaust every hot rumor without requiring convergence.
        for _ in 0..32 {
            g.run_round();
        }
        if !g.converged() {
            let before = g.messages_sent();
            g.run_sync_round();
            assert!(g.messages_sent() > before, "sync round must push state");
        }
        g.run_until_converged(64).unwrap();
        assert!(g.converged());
    }

    #[test]
    fn thousand_node_cluster_converges_within_log_bound() {
        let mut g = Gossip::new(
            1000,
            1001,
            GossipConfig::default(),
            ClusterProfile::wan_metro(),
        );
        g.inject(MembershipChange::Joined(NodeId(1000))).unwrap();
        let bound = 3 * (1000f64).log2().ceil() as u64 + 4;
        let rounds = g.run_until_converged(bound).unwrap();
        assert!(rounds <= bound, "{rounds} > {bound}");
        assert!(g.total_bytes() > 0);
    }
}
