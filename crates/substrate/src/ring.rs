//! Node positions on the key ring.
//!
//! "Most overlay networks assign a position in the ring to each node
//! according to a SHA-1 hash of the node's IP address (forming a DHT ID)"
//! (Section III-A).  We do the same: a node's ring position is the SHA-1
//! hash of its (simulated) network address.

use orchestra_common::{Key160, NodeId};

/// A participant together with its position on the key ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingNode {
    /// The participant.
    pub node: NodeId,
    /// Its DHT ID: `SHA-1(address)` interpreted as a 160-bit key.
    pub position: Key160,
}

impl RingNode {
    /// Compute the ring entry for `node`.
    pub fn new(node: NodeId) -> Self {
        RingNode {
            node,
            position: node_position(node),
        }
    }
}

/// The ring position (DHT ID) of a node: the SHA-1 hash of its address.
pub fn node_position(node: NodeId) -> Key160 {
    Key160::hash(node.address().as_bytes())
}

/// Sort nodes by their ring position (ties broken by node id, which cannot
/// happen with SHA-1 in practice but keeps the ordering total).
pub fn sorted_ring(nodes: &[NodeId]) -> Vec<RingNode> {
    let mut ring: Vec<RingNode> = nodes.iter().map(|n| RingNode::new(*n)).collect();
    ring.sort_by(|a, b| a.position.cmp(&b.position).then(a.node.cmp(&b.node)));
    ring
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_deterministic_and_distinct() {
        let a1 = node_position(NodeId(3));
        let a2 = node_position(NodeId(3));
        let b = node_position(NodeId(4));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn sorted_ring_is_sorted_and_complete() {
        let nodes: Vec<NodeId> = (0..32).map(NodeId).collect();
        let ring = sorted_ring(&nodes);
        assert_eq!(ring.len(), 32);
        for w in ring.windows(2) {
            assert!(w[0].position < w[1].position);
        }
        // Every node appears exactly once.
        let mut ids: Vec<u16> = ring.iter().map(|r| r.node.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..32).collect::<Vec<u16>>());
    }
}
