//! # orchestra-substrate
//!
//! The hashing-based data partitioning substrate of Section III of the
//! paper: a content-addressable overlay customised for ORCHESTRA's stable,
//! small-to-medium scale environment (dozens to hundreds of participants).
//!
//! Compared with a classical DHT (Chord, Pastry), the substrate makes
//! three deliberate departures, all reproduced here:
//!
//! 1. **Range allocation.** Besides Pastry-style placement (each node owns
//!    the keys nearest to its hashed address, Figure 2(a)), the substrate
//!    supports **balanced allocation** (Figure 2(b)): the key space is cut
//!    into equal contiguous ranges, assigned in order to the nodes sorted
//!    by hash ID.  With only dozens of nodes the Pastry scheme is highly
//!    skewed; balanced allocation distributes data uniformly and keeps a
//!    single contiguous range per node, which the storage layer exploits
//!    for index/data co-location.  See [`allocation`].
//! 2. **One-hop routing.** Every node keeps a complete routing table, so
//!    any key is resolved locally and reached in a single hop.  See
//!    [`routing::RoutingTable`].
//! 3. **Snapshot semantics.** Distributed computations (queries) run
//!    against an immutable [`routing::RoutingSnapshot`] taken at
//!    initiation; membership changes never re-route in-flight state.
//!    After a failure the query initiator derives a *recovery* snapshot
//!    that reassigns the failed nodes' ranges to the surviving replica
//!    holders ([`membership`]).
//!
//! Replica placement follows Pastry/PAST: each data item is stored at its
//! owner plus ⌊r/2⌋ clockwise and ⌊r/2⌋ counter-clockwise neighbours
//! ([`routing::RoutingTable::replicas_of`]) — or, under a non-default
//! [`replication::ReplicationPolicy`], at a membership-scaled or
//! zone-spread replica set.
//!
//! Beyond the paper's stable-membership assumption, [`gossip`] adds
//! epidemic membership dissemination: nodes exchange incarnation-versioned
//! rumors in fanout-k rounds over the simulated network, and each node
//! *derives* its own possibly-stale [`membership::Membership`] from its
//! local rumor view, which is what makes sustained churn at
//! hundreds-to-thousands of nodes tractable.

pub mod allocation;
pub mod gossip;
pub mod membership;
pub mod metrics;
pub mod replication;
pub mod ring;
pub mod routing;

pub use allocation::AllocationScheme;
pub use gossip::{Gossip, GossipConfig, MemberView, PeerState, Rumor};
pub use membership::{Membership, MembershipChange};
pub use metrics::AllocationStats;
pub use replication::{zone_of, ReplicationPolicy};
pub use ring::{node_position, RingNode};
pub use routing::{RangeAssignment, RoutingSnapshot, RoutingTable};
