//! Allocation-quality metrics (used to reproduce Figure 2).
//!
//! Figure 2 of the paper motivates balanced allocation by showing that
//! Pastry-style placement leaves some nodes responsible for a vastly
//! larger share of the key space than others when the ring has only a
//! handful of members.  [`AllocationStats`] quantifies that skew for any
//! routing table: per-node ownership fractions, the max/min ratio, and the
//! coefficient of variation.

use crate::routing::RoutingTable;
use orchestra_common::{Key160, NodeId};

/// Summary statistics of how evenly a routing table spreads the key space.
#[derive(Clone, Debug)]
pub struct AllocationStats {
    /// Fraction of the key space owned by each node, in node order.
    pub fractions: Vec<(NodeId, f64)>,
    /// Largest per-node fraction.
    pub max_fraction: f64,
    /// Smallest per-node fraction.
    pub min_fraction: f64,
    /// `max_fraction / min_fraction` (∞ if some node owns nothing).
    pub max_min_ratio: f64,
    /// Coefficient of variation (stddev / mean) of the fractions.
    pub coefficient_of_variation: f64,
}

impl AllocationStats {
    /// Measure `table`.
    pub fn measure(table: &RoutingTable) -> AllocationStats {
        let nodes = table.nodes();
        let fractions: Vec<(NodeId, f64)> = nodes
            .iter()
            .map(|n| {
                let owned: f64 = table
                    .ranges_of(*n)
                    .iter()
                    .map(|r| key_fraction(r.size()))
                    .sum();
                (*n, owned)
            })
            .collect();
        let values: Vec<f64> = fractions.iter().map(|(_, f)| *f).collect();
        let max_fraction = values.iter().copied().fold(f64::MIN, f64::max);
        let min_fraction = values.iter().copied().fold(f64::MAX, f64::min);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        let max_min_ratio = if min_fraction > 0.0 {
            max_fraction / min_fraction
        } else {
            f64::INFINITY
        };
        AllocationStats {
            fractions,
            max_fraction,
            min_fraction,
            max_min_ratio,
            coefficient_of_variation: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        }
    }
}

/// Approximate fraction of the whole 160-bit space represented by `size`,
/// using the top 64 bits (ample precision for reporting).
fn key_fraction(size: Key160) -> f64 {
    size.top64() as f64 / u64::MAX as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationScheme;
    use orchestra_common::NodeId;

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn balanced_allocation_has_low_skew() {
        let t = RoutingTable::build(&nodes(16), AllocationScheme::Balanced, 3);
        let stats = AllocationStats::measure(&t);
        assert!(stats.max_min_ratio < 1.01, "ratio {}", stats.max_min_ratio);
        assert!(stats.coefficient_of_variation < 0.01);
        // Fractions sum to ~1.
        let total: f64 = stats.fractions.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 0.01);
    }

    #[test]
    fn pastry_allocation_is_visibly_skewed_for_small_rings() {
        let t = RoutingTable::build(&nodes(5), AllocationScheme::PastryStyle, 3);
        let stats = AllocationStats::measure(&t);
        assert!(
            stats.max_min_ratio > 2.0,
            "expected skew, ratio {}",
            stats.max_min_ratio
        );
    }

    #[test]
    fn pastry_skew_shrinks_as_ring_grows() {
        let small = AllocationStats::measure(&RoutingTable::build(
            &nodes(5),
            AllocationScheme::PastryStyle,
            3,
        ));
        let large = AllocationStats::measure(&RoutingTable::build(
            &nodes(200),
            AllocationScheme::PastryStyle,
            3,
        ));
        assert!(large.coefficient_of_variation < small.coefficient_of_variation * 4.0);
    }
}
