//! Policy-driven replica placement.
//!
//! The paper fixes the replication degree to a small constant ("small
//! factors such as 3") chosen for a stable cluster of dozens of nodes.
//! At hundreds-to-thousands of participants under sustained churn that
//! single knob is no longer enough: the probability that *every* holder
//! of a range is lost within one anti-entropy interval grows with the
//! churn rate, and wide-area deployments additionally want copies spread
//! across failure domains (the WAN `ClusterProfile` axis of Figure 17).
//! [`ReplicationPolicy`] captures the three placement regimes:
//!
//! * [`ReplicationPolicy::FixedFactor`] — the paper's behaviour, and the
//!   default everywhere: `r` copies at ring neighbours.
//! * [`ReplicationPolicy::PercentageOfNodes`] — the degree scales with
//!   the membership (`⌈p·n⌉`, clamped to `[1, n]`), so a cluster that
//!   grows from 100 to 1000 nodes keeps the same *fraction* of the
//!   membership holding each item.
//! * [`ReplicationPolicy::GeoSpread`] — copies are forced across
//!   geographic zones: nodes are assigned round-robin to `zones` failure
//!   domains ([`zone_of`]), and the replica walk skips candidates whose
//!   zone already holds `copies_per_zone` copies until every zone is
//!   covered.  Losing an entire zone (a WAN partition) leaves
//!   `copies_per_zone × (zones − 1)` copies alive.
//!
//! The policy lives on the [`crate::routing::RoutingTable`] and is
//! consulted by `replicas_of_node`, so everything downstream — storage
//! insertion, anti-entropy repair, recovery reassignment — follows the
//! policy without further plumbing.

use orchestra_common::NodeId;

/// How many copies of each item to keep, and where to put them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReplicationPolicy {
    /// A constant replication degree (the paper's scheme): the owner
    /// plus ring neighbours up to `factor` total copies.
    FixedFactor(usize),
    /// The degree scales with the live membership: `⌈fraction·n⌉`
    /// copies, clamped to `[1, n]`.  `PercentageOfNodes(0.05)` keeps 5%
    /// of a 1000-node cluster — 50 copies — holding each item.
    PercentageOfNodes(f64),
    /// Copies are spread across `zones` round-robin failure domains,
    /// at most `copies_per_zone` per zone, `zones × copies_per_zone`
    /// total.  Models rack- or region-aware placement over a WAN
    /// deployment.
    GeoSpread {
        /// Number of failure domains (racks, regions).
        zones: usize,
        /// Copies tolerated inside one domain.
        copies_per_zone: usize,
    },
}

// The percentage variant holds an f64, which is only ever a positive
// finite fraction (enforced in `factor_for`), so equality is total in
// practice and the marker is sound.
impl Eq for ReplicationPolicy {}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy::FixedFactor(3)
    }
}

impl ReplicationPolicy {
    /// The effective replication degree for a cluster of `n` live nodes,
    /// always clamped to `[1, n]`.
    pub fn factor_for(&self, n: usize) -> usize {
        let n = n.max(1);
        let raw = match *self {
            ReplicationPolicy::FixedFactor(f) => f,
            ReplicationPolicy::PercentageOfNodes(p) => {
                assert!(
                    p.is_finite() && p > 0.0,
                    "PercentageOfNodes needs a positive finite fraction, got {p}"
                );
                (p * n as f64).ceil() as usize
            }
            ReplicationPolicy::GeoSpread {
                zones,
                copies_per_zone,
            } => zones * copies_per_zone,
        };
        raw.clamp(1, n)
    }

    /// The zone bound this policy imposes, if any: `Some((zones,
    /// copies_per_zone))` for [`ReplicationPolicy::GeoSpread`].
    pub fn zone_bound(&self) -> Option<(usize, usize)> {
        match *self {
            ReplicationPolicy::GeoSpread {
                zones,
                copies_per_zone,
            } => Some((zones.max(1), copies_per_zone.max(1))),
            _ => None,
        }
    }
}

/// The failure domain `node` belongs to under a `zones`-zone deployment.
///
/// Zones are assigned round-robin by node id — the deterministic stand-in
/// for a rack/region map, matching how the simulated cluster numbers its
/// nodes.
pub fn zone_of(node: NodeId, zones: usize) -> usize {
    node.index() % zones.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_factor_clamps_to_cluster_size() {
        let p = ReplicationPolicy::FixedFactor(3);
        assert_eq!(p.factor_for(100), 3);
        assert_eq!(p.factor_for(2), 2);
        assert_eq!(p.factor_for(0), 1);
    }

    #[test]
    fn percentage_scales_with_membership() {
        let p = ReplicationPolicy::PercentageOfNodes(0.05);
        assert_eq!(p.factor_for(100), 5);
        assert_eq!(p.factor_for(1000), 50);
        // Always at least one copy, never more than the cluster.
        assert_eq!(p.factor_for(3), 1);
        assert_eq!(ReplicationPolicy::PercentageOfNodes(2.0).factor_for(8), 8);
    }

    #[test]
    fn geo_spread_factor_is_zones_times_copies() {
        let p = ReplicationPolicy::GeoSpread {
            zones: 3,
            copies_per_zone: 2,
        };
        assert_eq!(p.factor_for(100), 6);
        assert_eq!(p.factor_for(4), 4);
        assert_eq!(p.zone_bound(), Some((3, 2)));
        assert_eq!(ReplicationPolicy::FixedFactor(3).zone_bound(), None);
    }

    #[test]
    fn zones_partition_the_nodes_round_robin() {
        assert_eq!(zone_of(NodeId(0), 3), 0);
        assert_eq!(zone_of(NodeId(1), 3), 1);
        assert_eq!(zone_of(NodeId(5), 3), 2);
        // Degenerate zone counts never divide by zero.
        assert_eq!(zone_of(NodeId(7), 0), 0);
    }
}
