//! Range allocation schemes (paper Figure 2).
//!
//! Given the set of participants, an allocation scheme decides which
//! contiguous arc of the key ring each node *owns* (i.e. which keys it is
//! primarily responsible for storing and serving).
//!
//! * [`AllocationScheme::PastryStyle`] reproduces Figure 2(a): keys are
//!   placed at the node with the *nearest* hash ID, so a node owns the arc
//!   between the midpoints to its ring predecessor and successor.  With
//!   only dozens of nodes this is highly non-uniform (in the paper's
//!   example two nodes own more than ¾ of the space).
//! * [`AllocationScheme::Balanced`] reproduces Figure 2(b): the key space
//!   is divided into equal contiguous ranges, assigned in order to the
//!   nodes sorted by hash ID.  This is the scheme used for all the paper's
//!   experiments, and the default throughout this repository.

use crate::ring::sorted_ring;
use orchestra_common::{Key160, KeyRange, NodeId};

/// Which of the two range allocation schemes of Figure 2 to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AllocationScheme {
    /// Figure 2(a): each key is owned by the node whose hashed address is
    /// nearest on the ring (Pastry placement).
    PastryStyle,
    /// Figure 2(b): the key space is divided into evenly sized sequential
    /// ranges, one per node, assigned in hash-ID order.  The paper's
    /// experiments (and ours) use this scheme.
    #[default]
    Balanced,
}

impl AllocationScheme {
    /// Compute the ownership ranges for `nodes`.
    ///
    /// Returns one `(node, range)` pair per node.  Ranges are disjoint,
    /// cover the whole ring, and each node receives exactly one contiguous
    /// arc (a property the storage layer relies on for co-locating index
    /// pages with data, Section IV).
    ///
    /// Panics if `nodes` is empty.
    pub fn allocate(&self, nodes: &[NodeId]) -> Vec<(NodeId, KeyRange)> {
        assert!(!nodes.is_empty(), "cannot allocate ranges to zero nodes");
        if nodes.len() == 1 {
            return vec![(nodes[0], KeyRange::full())];
        }
        match self {
            AllocationScheme::PastryStyle => pastry_allocation(nodes),
            AllocationScheme::Balanced => balanced_allocation(nodes),
        }
    }
}

/// Pastry placement: node `i` owns the arc from the midpoint between its
/// predecessor and itself to the midpoint between itself and its
/// successor.
fn pastry_allocation(nodes: &[NodeId]) -> Vec<(NodeId, KeyRange)> {
    let ring = sorted_ring(nodes);
    let n = ring.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let prev = &ring[(i + n - 1) % n];
        let cur = &ring[i];
        let next = &ring[(i + 1) % n];
        let start = KeyRange::new(prev.position, cur.position).midpoint();
        let end = KeyRange::new(cur.position, next.position).midpoint();
        out.push((cur.node, KeyRange::new(start, end)));
    }
    out
}

/// Balanced placement: `n` equal sequential ranges assigned in hash-ID
/// order.  The final range absorbs the (at most `n - 1`) keys left over by
/// integer division so the whole ring is covered.
fn balanced_allocation(nodes: &[NodeId]) -> Vec<(NodeId, KeyRange)> {
    let ring = sorted_ring(nodes);
    let n = ring.len() as u64;
    let width = Key160::space_divided_by(n);
    let mut out = Vec::with_capacity(ring.len());
    for (i, entry) in ring.iter().enumerate() {
        let start = width.wrapping_mul_small(i as u64);
        let end = if i as u64 == n - 1 {
            Key160::ZERO // wrap: the last range runs to the top of the ring
        } else {
            width.wrapping_mul_small(i as u64 + 1)
        };
        out.push((entry.node, KeyRange::new(start, end)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::{rng, Key160};

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn assert_tiles_ring(alloc: &[(NodeId, KeyRange)]) {
        // Every probe key must be owned by exactly one node.
        for probe in 0..200u64 {
            let key = Key160::hash(&probe.to_be_bytes());
            let owners: Vec<&NodeId> = alloc
                .iter()
                .filter(|(_, r)| r.contains(key))
                .map(|(n, _)| n)
                .collect();
            assert_eq!(owners.len(), 1, "key {key} owned by {owners:?}");
        }
    }

    #[test]
    fn single_node_owns_everything() {
        for scheme in [AllocationScheme::PastryStyle, AllocationScheme::Balanced] {
            let alloc = scheme.allocate(&nodes(1));
            assert_eq!(alloc.len(), 1);
            assert!(alloc[0].1.is_full());
        }
    }

    #[test]
    fn balanced_ranges_tile_the_ring() {
        for n in [2u16, 3, 5, 8, 16, 100] {
            let alloc = AllocationScheme::Balanced.allocate(&nodes(n));
            assert_eq!(alloc.len(), n as usize);
            assert_tiles_ring(&alloc);
        }
    }

    #[test]
    fn pastry_ranges_tile_the_ring() {
        for n in [2u16, 3, 5, 8, 16, 100] {
            let alloc = AllocationScheme::PastryStyle.allocate(&nodes(n));
            assert_eq!(alloc.len(), n as usize);
            assert_tiles_ring(&alloc);
        }
    }

    #[test]
    fn balanced_ranges_are_nearly_equal() {
        let alloc = AllocationScheme::Balanced.allocate(&nodes(16));
        let sizes: Vec<Key160> = alloc.iter().map(|(_, r)| r.size()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        // All ranges are within a factor 1+epsilon of each other: the
        // difference between the largest and smallest is at most n keys.
        let diff = max.wrapping_sub(*min);
        assert!(diff < Key160::from_u128(1 << 20));
    }

    #[test]
    fn pastry_ranges_are_skewed_for_small_n() {
        // The motivating observation behind Figure 2: with a handful of
        // nodes, Pastry placement gives some node far more than its fair
        // share.  We check that the largest range is at least twice the
        // smallest for a 5-node ring.
        let alloc = AllocationScheme::PastryStyle.allocate(&nodes(5));
        let sizes: Vec<Key160> = alloc.iter().map(|(_, r)| r.size()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(
            *max > min.wrapping_add(*min),
            "expected skew, got {sizes:?}"
        );
    }

    #[test]
    fn pastry_owner_is_nearest_node() {
        // For the Pastry scheme, the owner of a key must be (one of) the
        // nearest ring positions.
        let ns = nodes(8);
        let alloc = AllocationScheme::PastryStyle.allocate(&ns);
        let ring = crate::ring::sorted_ring(&ns);
        for probe in 0..50u64 {
            let key = Key160::hash(&probe.to_be_bytes());
            let owner = alloc.iter().find(|(_, r)| r.contains(key)).unwrap().0;
            // Distance from key to owner position must be minimal among all nodes
            // (measuring the shorter way around the ring).
            let dist = |p: Key160| {
                let cw = key.clockwise_distance(p);
                let ccw = p.clockwise_distance(key);
                cw.min(ccw)
            };
            let owner_pos = ring.iter().find(|r| r.node == owner).unwrap().position;
            let owner_dist = dist(owner_pos);
            for r in &ring {
                assert!(dist(r.position) >= owner_dist);
            }
        }
    }

    #[test]
    fn every_key_has_exactly_one_owner() {
        // Deterministic sweep standing in for the original property test.
        let mut r = rng::seeded(0xa110c);
        for _ in 0..32 {
            let n = r.random_range(2u16..40);
            let ns = nodes(n);
            for scheme in [AllocationScheme::PastryStyle, AllocationScheme::Balanced] {
                let alloc = scheme.allocate(&ns);
                for _ in 0..50 {
                    let key = Key160::hash(&r.next_u64().to_be_bytes());
                    let owners = alloc.iter().filter(|(_, rg)| rg.contains(key)).count();
                    assert_eq!(owners, 1, "n={n} scheme={scheme:?} key={key}");
                }
            }
        }
    }
}
