//! One-hop routing tables and snapshots.
//!
//! "Recent peer-to-peer research has shown that storing a complete routing
//! table (describing all other nodes) at each node provides superior
//! performance for up to thousands of nodes" (Section III-B).  The
//! substrate therefore keeps a *full* [`RoutingTable`]: an ordered list of
//! range assignments covering the entire ring, plus the ring positions of
//! all live nodes (needed for neighbour-based replica placement).
//!
//! Queries never consult the live table directly: the initiator takes a
//! [`RoutingSnapshot`] (an immutable, shared copy) and disseminates it
//! with the plan, so that every participant uses the same assignment of
//! hash values to nodes for the lifetime of the computation
//! (Section III-C / V-C).  After a failure, [`RoutingTable::reassign_failed`]
//! derives the recovery table in which the failed nodes' ranges are split
//! evenly among the surviving replica holders (Section V-D, stage 1).

use crate::allocation::AllocationScheme;
use crate::replication::{zone_of, ReplicationPolicy};
use crate::ring::{sorted_ring, RingNode};
use orchestra_common::{Key160, KeyRange, NodeId, NodeSet, OrchestraError, Result};
use std::sync::Arc;

/// One entry of the routing table: a contiguous arc of the ring and the
/// node responsible for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeAssignment {
    /// The arc of the key ring.
    pub range: KeyRange,
    /// The node that owns (stores and serves) keys in the arc.
    pub owner: NodeId,
}

/// A complete assignment of the key ring to live nodes.
///
/// Immutable once built; membership changes produce *new* tables (see
/// [`crate::membership::Membership`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingTable {
    /// Range assignments sorted by range start; together they tile the ring.
    entries: Vec<RangeAssignment>,
    /// Live nodes sorted by ring position (used for neighbour replication).
    ring: Vec<RingNode>,
    /// Replication factor `r`: every item lives at its owner plus
    /// ⌊r/2⌋ clockwise and ⌊r/2⌋ counter-clockwise ring neighbours.
    replication_factor: usize,
    /// The placement policy that chose `replication_factor` and shapes
    /// the replica walk (zone-aware for geo-spread deployments).
    policy: ReplicationPolicy,
    /// The allocation scheme that produced the primary ownership ranges.
    scheme: AllocationScheme,
}

/// An immutable, cheaply shareable snapshot of a routing table, taken by a
/// query initiator and shipped with the query plan.
pub type RoutingSnapshot = Arc<RoutingTable>;

impl RoutingTable {
    /// Build a routing table for `nodes` under `scheme` with the given
    /// replication factor (the paper uses small factors such as 3).
    ///
    /// Panics if `nodes` is empty or `replication_factor == 0`.
    pub fn build(
        nodes: &[NodeId],
        scheme: AllocationScheme,
        replication_factor: usize,
    ) -> RoutingTable {
        assert!(replication_factor >= 1, "replication factor must be >= 1");
        Self::build_with_policy(
            nodes,
            scheme,
            ReplicationPolicy::FixedFactor(replication_factor),
        )
    }

    /// Build a routing table whose replication degree and placement are
    /// driven by `policy` (see [`ReplicationPolicy`]).  With
    /// [`ReplicationPolicy::FixedFactor`] this is byte-for-byte identical
    /// to [`RoutingTable::build`]; the other policies derive the degree
    /// from the membership size and, for geo-spread, constrain the replica
    /// walk to cover failure zones.
    ///
    /// Panics if `nodes` is empty.
    pub fn build_with_policy(
        nodes: &[NodeId],
        scheme: AllocationScheme,
        policy: ReplicationPolicy,
    ) -> RoutingTable {
        let replication_factor = match policy {
            // Preserve the historical contract: a fixed factor is stored as
            // given (replica walks clamp to the ring themselves), so every
            // pre-policy figure stays bit-identical.
            ReplicationPolicy::FixedFactor(f) => f.max(1),
            _ => policy.factor_for(nodes.len()),
        };
        let mut entries: Vec<RangeAssignment> = scheme
            .allocate(nodes)
            .into_iter()
            .map(|(owner, range)| RangeAssignment { range, owner })
            .collect();
        entries.sort_by_key(|e| e.range.start);
        RoutingTable {
            entries,
            ring: sorted_ring(nodes),
            replication_factor,
            policy,
            scheme,
        }
    }

    /// The placement policy this table was built with.
    pub fn policy(&self) -> ReplicationPolicy {
        self.policy
    }

    /// The allocation scheme this table was built with.
    pub fn scheme(&self) -> AllocationScheme {
        self.scheme
    }

    /// The configured replication factor.
    pub fn replication_factor(&self) -> usize {
        self.replication_factor
    }

    /// All range assignments, sorted by range start.
    pub fn entries(&self) -> &[RangeAssignment] {
        &self.entries
    }

    /// The live nodes, in ring order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.ring.iter().map(|r| r.node).collect()
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.ring.len()
    }

    /// Is `node` a member of this table?
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.ring.iter().any(|r| r.node == node)
    }

    /// The node that owns `key` under this table.
    pub fn owner_of(&self, key: Key160) -> NodeId {
        debug_assert!(!self.entries.is_empty());
        // Entries are sorted by start and tile the ring; the owner is the
        // entry with the greatest start <= key, or (if key precedes every
        // start) the final, wrapping entry.
        let idx = match self.entries.binary_search_by(|e| e.range.start.cmp(&key)) {
            Ok(i) => i,
            Err(0) => self.entries.len() - 1,
            Err(i) => i - 1,
        };
        let entry = &self.entries[idx];
        if entry.range.contains(key) {
            entry.owner
        } else {
            // Fall back to a scan; only reachable if ranges do not tile the
            // ring, which the constructors guarantee against.
            self.entries
                .iter()
                .find(|e| e.range.contains(key))
                .map(|e| e.owner)
                .unwrap_or(entry.owner)
        }
    }

    /// All ranges owned by `node` (a freshly built table has exactly one;
    /// recovery tables may assign several).
    pub fn ranges_of(&self, node: NodeId) -> Vec<KeyRange> {
        self.entries
            .iter()
            .filter(|e| e.owner == node)
            .map(|e| e.range)
            .collect()
    }

    /// The replica set for `key`: its owner plus ⌊r/2⌋ ring neighbours in
    /// each direction (deduplicated, so small rings yield fewer copies).
    /// The owner is always the first element.
    pub fn replicas_of(&self, key: Key160) -> Vec<NodeId> {
        let owner = self.owner_of(key);
        self.replicas_of_node(owner)
    }

    /// The replica set for data owned by `node` (the node itself first).
    ///
    /// Under a geo-spread policy the neighbour walk is zone-aware: a ring
    /// neighbour is skipped while its failure zone already holds
    /// `copies_per_zone` copies, so the set covers `zones` distinct zones
    /// whenever the ring contains them.
    pub fn replicas_of_node(&self, node: NodeId) -> Vec<NodeId> {
        let n = self.ring.len();
        let Some(pos) = self.ring.iter().position(|r| r.node == node) else {
            return vec![node];
        };
        if let Some((zones, per_zone)) = self.policy.zone_bound() {
            return self.zone_aware_replicas(pos, zones, per_zone);
        }
        let half = self.replication_factor / 2;
        let mut out = vec![node];
        for step in 1..=half {
            let cw = self.ring[(pos + step) % n].node;
            if !out.contains(&cw) {
                out.push(cw);
            }
            let ccw = self.ring[(pos + n - (step % n)) % n].node;
            if !out.contains(&ccw) {
                out.push(ccw);
            }
        }
        out
    }

    /// Greedy clockwise walk from ring position `pos` that accepts a
    /// candidate only while its zone holds fewer than `per_zone` copies;
    /// once every zone present on the ring is saturated the walk falls
    /// back to the nearest remaining neighbours to reach the configured
    /// degree.
    fn zone_aware_replicas(&self, pos: usize, zones: usize, per_zone: usize) -> Vec<NodeId> {
        let n = self.ring.len();
        let target = self.replication_factor.min(n);
        let owner = self.ring[pos].node;
        let mut counts = vec![0usize; zones];
        counts[zone_of(owner, zones)] = 1;
        let mut out = vec![owner];
        for step in 1..n {
            if out.len() == target {
                break;
            }
            let cand = self.ring[(pos + step) % n].node;
            let zone = zone_of(cand, zones);
            if counts[zone] < per_zone && !out.contains(&cand) {
                counts[zone] += 1;
                out.push(cand);
            }
        }
        // The ring may not contain enough distinct zones (or enough nodes
        // per zone) to satisfy the bound; degree still wins over spread.
        if out.len() < target {
            for step in 1..n {
                if out.len() == target {
                    break;
                }
                let cand = self.ring[(pos + step) % n].node;
                if !out.contains(&cand) {
                    out.push(cand);
                }
            }
        }
        out
    }

    /// Derive the recovery routing table after the nodes in `failed` have
    /// been lost (Section V-D, "determine change in assignment of ranges
    /// to nodes").
    ///
    /// Every range owned by a failed node is split into equal sub-ranges,
    /// one per surviving replica holder of that node, so that "the
    /// initiator will evenly divide among them the task of recomputing the
    /// missing answers".  Ranges owned by surviving nodes are unchanged.
    pub fn reassign_failed(&self, failed: &NodeSet) -> Result<RoutingTable> {
        let survivors: Vec<RingNode> = self
            .ring
            .iter()
            .copied()
            .filter(|r| !failed.contains(r.node))
            .collect();
        if survivors.is_empty() {
            return Err(OrchestraError::Substrate(
                "all nodes have failed; no survivors to reassign ranges to".into(),
            ));
        }

        let mut new_entries: Vec<RangeAssignment> = Vec::with_capacity(self.entries.len() * 2);
        for entry in &self.entries {
            if !failed.contains(entry.owner) {
                new_entries.push(*entry);
                continue;
            }
            // Surviving replica holders of the failed owner, falling back to
            // all survivors if every replica holder failed too (the data may
            // still exist elsewhere via background replication).
            let mut heirs: Vec<NodeId> = self
                .replicas_of_node(entry.owner)
                .into_iter()
                .filter(|n| !failed.contains(*n))
                .collect();
            if heirs.is_empty() {
                heirs = survivors.iter().map(|r| r.node).collect();
            }
            for (i, heir) in heirs.iter().enumerate() {
                let sub = split_range(entry.range, heirs.len(), i);
                new_entries.push(RangeAssignment {
                    range: sub,
                    owner: *heir,
                });
            }
        }
        new_entries.sort_by_key(|e| e.range.start);
        Ok(RoutingTable {
            entries: new_entries,
            ring: survivors,
            // The degree was fixed when the table was built; recovery keeps
            // it (and the policy) so heirs are chosen consistently with the
            // snapshot the query was planned against.
            replication_factor: self.replication_factor,
            policy: self.policy,
            scheme: self.scheme,
        })
    }

    /// The ranges whose ownership differs between `self` (the original
    /// snapshot) and `other` (typically a recovery table): for each entry
    /// of `other` whose owner is not the owner of the same keys in `self`,
    /// report `(range, old owner, new owner)`.
    pub fn changed_ranges(&self, other: &RoutingTable) -> Vec<(KeyRange, NodeId, NodeId)> {
        let mut out = Vec::new();
        for entry in &other.entries {
            let probe = entry.range.midpoint();
            let old_owner = self.owner_of(probe);
            if old_owner != entry.owner {
                out.push((entry.range, old_owner, entry.owner));
            }
        }
        out
    }

    /// Wrap the table in an [`Arc`] for dissemination with a query plan.
    pub fn snapshot(&self) -> RoutingSnapshot {
        Arc::new(self.clone())
    }
}

/// Split `range` into `parts` nearly equal sub-ranges and return the
/// `index`-th one.  The final part absorbs any rounding remainder.
fn split_range(range: KeyRange, parts: usize, index: usize) -> KeyRange {
    debug_assert!(index < parts);
    if parts == 1 {
        return range;
    }
    let width = range.size().div_small(parts as u64);
    let start = range
        .start
        .wrapping_add(width.wrapping_mul_small(index as u64));
    let end = if index == parts - 1 {
        range.end
    } else {
        range
            .start
            .wrapping_add(width.wrapping_mul_small(index as u64 + 1))
    };
    KeyRange::new(start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::rng;

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn table(n: u16, r: usize) -> RoutingTable {
        RoutingTable::build(&nodes(n), AllocationScheme::Balanced, r)
    }

    #[test]
    fn owner_lookup_agrees_with_entry_scan() {
        let t = table(16, 3);
        for probe in 0..500u64 {
            let key = Key160::hash(&probe.to_be_bytes());
            let fast = t.owner_of(key);
            let slow = t
                .entries()
                .iter()
                .find(|e| e.range.contains(key))
                .unwrap()
                .owner;
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn replicas_have_requested_cardinality() {
        let t = table(16, 3);
        let key = Key160::hash(b"some key");
        let reps = t.replicas_of(key);
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0], t.owner_of(key));
        // All replicas are distinct nodes.
        let mut dedup = reps.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), reps.len());
    }

    #[test]
    fn replicas_clamp_for_tiny_rings() {
        let t = table(2, 5);
        let reps = t.replicas_of(Key160::hash(b"k"));
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn reassignment_removes_failed_and_preserves_coverage() {
        let t = table(8, 3);
        let failed = NodeSet::singleton(NodeId(3));
        let t2 = t.reassign_failed(&failed).unwrap();
        assert_eq!(t2.node_count(), 7);
        assert!(!t2.contains_node(NodeId(3)));
        // Every key still has exactly one owner, and never a failed one.
        for probe in 0..300u64 {
            let key = Key160::hash(&probe.to_be_bytes());
            let owner = t2.owner_of(key);
            assert_ne!(owner, NodeId(3));
            let owners = t2
                .entries()
                .iter()
                .filter(|e| e.range.contains(key))
                .count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn reassignment_splits_among_replica_holders() {
        let t = table(8, 3);
        let failed_node = NodeId(3);
        let heirs: Vec<NodeId> = t
            .replicas_of_node(failed_node)
            .into_iter()
            .filter(|n| *n != failed_node)
            .collect();
        let t2 = t.reassign_failed(&NodeSet::singleton(failed_node)).unwrap();
        let changed = t.changed_ranges(&t2);
        // All changed ranges previously belonged to the failed node and are
        // now owned by its replica holders.
        assert!(!changed.is_empty());
        for (_, old_owner, new_owner) in &changed {
            assert_eq!(*old_owner, failed_node);
            assert!(heirs.contains(new_owner), "{new_owner} not in {heirs:?}");
        }
        // Both heirs receive a share (the paper divides the work evenly).
        let new_owners: std::collections::BTreeSet<NodeId> =
            changed.iter().map(|(_, _, n)| *n).collect();
        assert_eq!(new_owners.len(), heirs.len());
    }

    #[test]
    fn reassignment_with_all_nodes_failed_errors() {
        let t = table(3, 3);
        let failed = NodeSet::from_iter([NodeId(0), NodeId(1), NodeId(2)]);
        assert!(t.reassign_failed(&failed).is_err());
    }

    #[test]
    fn multi_failure_reassignment_covers_ring() {
        let t = table(10, 3);
        let failed = NodeSet::from_iter([NodeId(2), NodeId(3), NodeId(7)]);
        let t2 = t.reassign_failed(&failed).unwrap();
        assert_eq!(t2.node_count(), 7);
        for probe in 0..300u64 {
            let key = Key160::hash(&probe.to_be_bytes());
            let owner = t2.owner_of(key);
            assert!(!failed.contains(owner));
        }
    }

    #[test]
    fn changed_ranges_empty_for_identical_tables() {
        let t = table(8, 3);
        assert!(t.changed_ranges(&t).is_empty());
    }

    #[test]
    fn snapshot_is_shared_not_copied_per_use() {
        let t = table(4, 3);
        let s1 = t.snapshot();
        let s2 = Arc::clone(&s1);
        assert_eq!(Arc::strong_count(&s1), 2);
        assert_eq!(s2.node_count(), 4);
    }

    #[test]
    fn owner_is_never_a_failed_node() {
        // Deterministic sweep standing in for the original property test:
        // random cluster sizes, failed pairs and probe keys from a fixed
        // seed.
        let mut r = rng::seeded(0x0151);
        for _ in 0..64 {
            let n = r.random_range(4u16..24);
            let fail_a = r.random_range(0..n);
            let fail_b = r.random_range(0..n);
            let failed = NodeSet::from_iter([NodeId(fail_a), NodeId(fail_b)]);
            if failed.len() as u16 >= n {
                continue;
            }
            let t = table(n, 3);
            let t2 = t.reassign_failed(&failed).unwrap();
            for _ in 0..30 {
                let key = Key160::hash(&r.next_u64().to_be_bytes());
                assert!(!failed.contains(t2.owner_of(key)));
            }
        }
    }

    #[test]
    fn policy_build_with_fixed_factor_matches_plain_build() {
        let plain = table(16, 3);
        let policied = RoutingTable::build_with_policy(
            &nodes(16),
            AllocationScheme::Balanced,
            ReplicationPolicy::FixedFactor(3),
        );
        assert_eq!(plain, policied);
        assert_eq!(policied.policy(), ReplicationPolicy::FixedFactor(3));
    }

    #[test]
    fn percentage_policy_scales_degree_with_ring() {
        let t = RoutingTable::build_with_policy(
            &nodes(40),
            AllocationScheme::Balanced,
            ReplicationPolicy::PercentageOfNodes(0.1),
        );
        assert_eq!(t.replication_factor(), 4);
        let reps = t.replicas_of(Key160::hash(b"scaled"));
        assert!(reps.len() >= 4, "expected >=4 replicas, got {reps:?}");
    }

    #[test]
    fn geo_spread_covers_all_zones() {
        let policy = ReplicationPolicy::GeoSpread {
            zones: 3,
            copies_per_zone: 2,
        };
        let t = RoutingTable::build_with_policy(&nodes(24), AllocationScheme::Balanced, policy);
        assert_eq!(t.replication_factor(), 6);
        for probe in 0..50u64 {
            let key = Key160::hash(&probe.to_be_bytes());
            let reps = t.replicas_of(key);
            assert_eq!(reps.len(), 6);
            let mut per_zone = [0usize; 3];
            for r in &reps {
                per_zone[zone_of(*r, 3)] += 1;
            }
            assert_eq!(per_zone, [2, 2, 2], "zone spread violated for {reps:?}");
        }
    }

    #[test]
    fn geo_spread_degrades_gracefully_when_zones_are_thin() {
        // Only nodes 0..4 exist: zone 2 of a 3-zone layout holds just
        // nodes {2}; degree still reaches min(target, ring size).
        let policy = ReplicationPolicy::GeoSpread {
            zones: 3,
            copies_per_zone: 2,
        };
        let t = RoutingTable::build_with_policy(&nodes(4), AllocationScheme::Balanced, policy);
        let reps = t.replicas_of(Key160::hash(b"thin"));
        assert_eq!(reps.len(), 4);
    }

    #[test]
    fn reassignment_preserves_policy() {
        let policy = ReplicationPolicy::GeoSpread {
            zones: 2,
            copies_per_zone: 2,
        };
        let t = RoutingTable::build_with_policy(&nodes(10), AllocationScheme::Balanced, policy);
        let t2 = t.reassign_failed(&NodeSet::singleton(NodeId(4))).unwrap();
        assert_eq!(t2.policy(), policy);
        assert_eq!(t2.replication_factor(), t.replication_factor());
    }

    #[test]
    fn split_range_parts_tile_the_original() {
        let mut r = rng::seeded(0x5917);
        for _ in 0..200 {
            let parts = r.random_range(1usize..7);
            let start = Key160::from_u128(((r.next_u64() as u128) << 64) | r.next_u64() as u128);
            let len = 1 + (((r.next_u64() as u128) << 64) | r.next_u64() as u128) / 2;
            let end = start.wrapping_add(Key160::from_u128(len));
            let range = KeyRange::new(start, end);
            if range.is_full() {
                continue;
            }
            // Consecutive sub-ranges must be adjacent and ordered.
            let mut cursor = range.start;
            for i in 0..parts {
                let sub = split_range(range, parts, i);
                assert_eq!(sub.start, cursor);
                cursor = sub.end;
            }
            assert_eq!(cursor, range.end);
        }
    }
}
