//! Membership management: node arrival, departure, and failure.
//!
//! The substrate targets a low-churn environment: "membership in a CDSS
//! ... consists of perhaps dozens to hundreds of participants ... with
//! good bandwidth and relatively stable machines" (Section I).  The
//! [`Membership`] manager tracks the set of live participants and rebuilds
//! the routing table when nodes join or leave.  Consistent with
//! Section V-C:
//!
//! * a node that **joins** mid-computation is simply not used until the
//!   next query takes a fresh snapshot;
//! * a node that **fails** mid-computation triggers recovery against a
//!   table derived by [`RoutingTable::reassign_failed`];
//! * with balanced allocation "a single node arrival or departure will
//!   cause all the ranges to change slightly" — rebuilding the table is a
//!   membership-time (not query-time) cost, which the paper accepts in
//!   exchange for uniform distribution.
//!
//! Under gossip dissemination ([`crate::gossip`]) there is no longer one
//! authoritative `Membership`: each node *derives* one from its local
//! rumor view ([`Membership::derived`]), and two nodes may briefly derive
//! different memberships.  Snapshots taken from a stale derivation are
//! handled by the engine's existing recovery machinery.

use crate::allocation::AllocationScheme;
use crate::replication::ReplicationPolicy;
use crate::routing::{RoutingSnapshot, RoutingTable};
use orchestra_common::{NodeId, NodeSet, OrchestraError, Result};

/// A change to the membership, recorded for diagnostics and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipChange {
    /// A new participant joined the CDSS.
    Joined(NodeId),
    /// A participant left gracefully (e.g. scheduled maintenance).
    Left(NodeId),
    /// A participant failed (crash or network partition).
    Failed(NodeId),
}

/// Tracks the live participants and produces routing tables.
#[derive(Clone, Debug)]
pub struct Membership {
    live: Vec<NodeId>,
    failed: Vec<NodeId>,
    scheme: AllocationScheme,
    policy: ReplicationPolicy,
    history: Vec<MembershipChange>,
}

impl Membership {
    /// Start a CDSS with `initial` participants.
    pub fn new(
        initial: impl IntoIterator<Item = NodeId>,
        scheme: AllocationScheme,
        replication_factor: usize,
    ) -> Self {
        Self::with_policy(
            initial,
            scheme,
            ReplicationPolicy::FixedFactor(replication_factor),
        )
    }

    /// Start a CDSS whose replica placement is driven by `policy`.
    pub fn with_policy(
        initial: impl IntoIterator<Item = NodeId>,
        scheme: AllocationScheme,
        policy: ReplicationPolicy,
    ) -> Self {
        let mut live: Vec<NodeId> = initial.into_iter().collect();
        live.sort_unstable();
        live.dedup();
        Membership {
            live,
            failed: Vec::new(),
            scheme,
            policy,
            history: Vec::new(),
        }
    }

    /// Reconstruct a membership from a node's local gossip view: the nodes
    /// it currently believes alive, the nodes it believes failed, and the
    /// order in which it accepted those beliefs.  This is a *derived*,
    /// possibly-stale view — another node may derive a different one from
    /// the same cluster at the same instant.
    pub fn derived(
        live: impl IntoIterator<Item = NodeId>,
        failed: impl IntoIterator<Item = NodeId>,
        history: Vec<MembershipChange>,
        scheme: AllocationScheme,
        policy: ReplicationPolicy,
    ) -> Self {
        let mut m = Self::with_policy(live, scheme, policy);
        m.failed = failed.into_iter().collect();
        m.failed.sort_unstable();
        m.failed.dedup();
        m.history = history;
        m
    }

    /// The live participants (sorted by node id).
    pub fn live_nodes(&self) -> &[NodeId] {
        &self.live
    }

    /// Nodes that have failed over the lifetime of the membership, as a
    /// bitset for the engine's recovery paths.
    ///
    /// Panics if any failed node id is ≥ [`NodeSet::CAPACITY`]; clusters
    /// beyond that (the 1000-node gossip scenarios) should use
    /// [`Membership::failed_ids`] instead.
    pub fn failed_nodes(&self) -> NodeSet {
        NodeSet::from_iter(self.failed.iter().copied())
    }

    /// Nodes that have failed, sorted by id, with no capacity limit.
    pub fn failed_ids(&self) -> &[NodeId] {
        &self.failed
    }

    /// The placement policy in force.
    pub fn policy(&self) -> ReplicationPolicy {
        self.policy
    }

    /// Number of live participants.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Is the membership empty?
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The full change history, oldest first.
    pub fn history(&self) -> &[MembershipChange] {
        &self.history
    }

    /// A new participant joins.  Returns an error if it is already live.
    pub fn join(&mut self, node: NodeId) -> Result<()> {
        if self.live.contains(&node) {
            return Err(OrchestraError::Substrate(format!(
                "node {node} is already a member"
            )));
        }
        self.live.push(node);
        self.live.sort_unstable();
        self.failed.retain(|n| *n != node);
        self.history.push(MembershipChange::Joined(node));
        Ok(())
    }

    /// A participant leaves gracefully.
    pub fn leave(&mut self, node: NodeId) -> Result<()> {
        self.remove(node)?;
        self.history.push(MembershipChange::Left(node));
        Ok(())
    }

    /// A participant fails.  The node is recorded in
    /// [`Membership::failed_nodes`] so recovery logic can consult it.
    pub fn fail(&mut self, node: NodeId) -> Result<()> {
        self.remove(node)?;
        if !self.failed.contains(&node) {
            self.failed.push(node);
            self.failed.sort_unstable();
        }
        self.history.push(MembershipChange::Failed(node));
        Ok(())
    }

    fn remove(&mut self, node: NodeId) -> Result<()> {
        let before = self.live.len();
        self.live.retain(|n| *n != node);
        if self.live.len() == before {
            return Err(OrchestraError::Substrate(format!(
                "node {node} is not a live member"
            )));
        }
        Ok(())
    }

    /// Build the current routing table from the live membership.
    pub fn routing_table(&self) -> Result<RoutingTable> {
        if self.live.is_empty() {
            return Err(OrchestraError::Substrate(
                "cannot build a routing table with no live nodes".into(),
            ));
        }
        Ok(RoutingTable::build_with_policy(
            &self.live,
            self.scheme,
            self.policy,
        ))
    }

    /// Convenience: the current routing table as a shareable snapshot.
    pub fn snapshot(&self) -> Result<RoutingSnapshot> {
        Ok(self.routing_table()?.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn membership(n: u16) -> Membership {
        Membership::new((0..n).map(NodeId), AllocationScheme::Balanced, 3)
    }

    #[test]
    fn join_leave_fail_lifecycle() {
        let mut m = membership(4);
        assert_eq!(m.len(), 4);
        m.join(NodeId(10)).unwrap();
        assert_eq!(m.len(), 5);
        assert!(m.join(NodeId(10)).is_err());
        m.leave(NodeId(0)).unwrap();
        assert_eq!(m.len(), 4);
        m.fail(NodeId(1)).unwrap();
        assert_eq!(m.len(), 3);
        assert!(m.failed_nodes().contains(NodeId(1)));
        assert!(!m.failed_nodes().contains(NodeId(0)));
        assert!(m.leave(NodeId(99)).is_err());
        assert_eq!(m.history().len(), 3);
    }

    #[test]
    fn routing_table_tracks_membership() {
        let mut m = membership(8);
        let t1 = m.routing_table().unwrap();
        assert_eq!(t1.node_count(), 8);
        m.fail(NodeId(2)).unwrap();
        let t2 = m.routing_table().unwrap();
        assert_eq!(t2.node_count(), 7);
        assert!(!t2.contains_node(NodeId(2)));
    }

    #[test]
    fn rejoin_after_failure_clears_failed_flag() {
        let mut m = membership(4);
        m.fail(NodeId(3)).unwrap();
        assert!(m.failed_nodes().contains(NodeId(3)));
        m.join(NodeId(3)).unwrap();
        assert!(!m.failed_nodes().contains(NodeId(3)));
    }

    #[test]
    fn empty_membership_cannot_build_table() {
        let mut m = membership(1);
        m.fail(NodeId(0)).unwrap();
        assert!(m.routing_table().is_err());
        assert!(m.is_empty());
    }

    #[test]
    fn history_preserves_event_order() {
        let mut m = membership(4);
        m.join(NodeId(9)).unwrap();
        m.fail(NodeId(1)).unwrap();
        m.leave(NodeId(2)).unwrap();
        m.join(NodeId(1)).unwrap();
        assert_eq!(
            m.history(),
            &[
                MembershipChange::Joined(NodeId(9)),
                MembershipChange::Failed(NodeId(1)),
                MembershipChange::Left(NodeId(2)),
                MembershipChange::Joined(NodeId(1)),
            ],
            "history must record events oldest-first in application order"
        );
        // A rejoin appends; it never rewrites the earlier failure record.
        assert_eq!(m.history()[1], MembershipChange::Failed(NodeId(1)));
        assert!(!m.failed_nodes().contains(NodeId(1)));
    }

    #[test]
    fn derived_view_reports_failures_beyond_nodeset_capacity() {
        // A 1000-node gossip view must be expressible even though NodeSet
        // caps at 256 ids; failed_ids() is the capacity-free accessor.
        let live = (0..1000u16).filter(|n| *n != 900).map(NodeId);
        let m = Membership::derived(
            live,
            [NodeId(900)],
            vec![MembershipChange::Failed(NodeId(900))],
            AllocationScheme::Balanced,
            ReplicationPolicy::PercentageOfNodes(0.01),
        );
        assert_eq!(m.len(), 999);
        assert_eq!(m.failed_ids(), &[NodeId(900)]);
        assert_eq!(m.history().len(), 1);
        let table = m.routing_table().unwrap();
        assert_eq!(table.replication_factor(), 10);
    }

    #[test]
    fn policy_flows_into_routing_table() {
        let policy = ReplicationPolicy::GeoSpread {
            zones: 2,
            copies_per_zone: 1,
        };
        let m = Membership::with_policy((0..8).map(NodeId), AllocationScheme::Balanced, policy);
        assert_eq!(m.policy(), policy);
        assert_eq!(m.routing_table().unwrap().policy(), policy);
    }
}
