//! Membership management: node arrival, departure, and failure.
//!
//! The substrate targets a low-churn environment: "membership in a CDSS
//! ... consists of perhaps dozens to hundreds of participants ... with
//! good bandwidth and relatively stable machines" (Section I).  The
//! [`Membership`] manager tracks the set of live participants and rebuilds
//! the routing table when nodes join or leave.  Consistent with
//! Section V-C:
//!
//! * a node that **joins** mid-computation is simply not used until the
//!   next query takes a fresh snapshot;
//! * a node that **fails** mid-computation triggers recovery against a
//!   table derived by [`RoutingTable::reassign_failed`];
//! * with balanced allocation "a single node arrival or departure will
//!   cause all the ranges to change slightly" — rebuilding the table is a
//!   membership-time (not query-time) cost, which the paper accepts in
//!   exchange for uniform distribution.

use crate::allocation::AllocationScheme;
use crate::routing::{RoutingSnapshot, RoutingTable};
use orchestra_common::{NodeId, NodeSet, OrchestraError, Result};

/// A change to the membership, recorded for diagnostics and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipChange {
    /// A new participant joined the CDSS.
    Joined(NodeId),
    /// A participant left gracefully (e.g. scheduled maintenance).
    Left(NodeId),
    /// A participant failed (crash or network partition).
    Failed(NodeId),
}

/// Tracks the live participants and produces routing tables.
#[derive(Clone, Debug)]
pub struct Membership {
    live: Vec<NodeId>,
    failed: NodeSet,
    scheme: AllocationScheme,
    replication_factor: usize,
    history: Vec<MembershipChange>,
}

impl Membership {
    /// Start a CDSS with `initial` participants.
    pub fn new(
        initial: impl IntoIterator<Item = NodeId>,
        scheme: AllocationScheme,
        replication_factor: usize,
    ) -> Self {
        let mut live: Vec<NodeId> = initial.into_iter().collect();
        live.sort_unstable();
        live.dedup();
        Membership {
            live,
            failed: NodeSet::empty(),
            scheme,
            replication_factor,
            history: Vec::new(),
        }
    }

    /// The live participants (sorted by node id).
    pub fn live_nodes(&self) -> &[NodeId] {
        &self.live
    }

    /// Nodes that have failed over the lifetime of the membership.
    pub fn failed_nodes(&self) -> NodeSet {
        self.failed
    }

    /// Number of live participants.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Is the membership empty?
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The full change history, oldest first.
    pub fn history(&self) -> &[MembershipChange] {
        &self.history
    }

    /// A new participant joins.  Returns an error if it is already live.
    pub fn join(&mut self, node: NodeId) -> Result<()> {
        if self.live.contains(&node) {
            return Err(OrchestraError::Substrate(format!(
                "node {node} is already a member"
            )));
        }
        self.live.push(node);
        self.live.sort_unstable();
        self.failed.remove(node);
        self.history.push(MembershipChange::Joined(node));
        Ok(())
    }

    /// A participant leaves gracefully.
    pub fn leave(&mut self, node: NodeId) -> Result<()> {
        self.remove(node)?;
        self.history.push(MembershipChange::Left(node));
        Ok(())
    }

    /// A participant fails.  The node is recorded in
    /// [`Membership::failed_nodes`] so recovery logic can consult it.
    pub fn fail(&mut self, node: NodeId) -> Result<()> {
        self.remove(node)?;
        self.failed.insert(node);
        self.history.push(MembershipChange::Failed(node));
        Ok(())
    }

    fn remove(&mut self, node: NodeId) -> Result<()> {
        let before = self.live.len();
        self.live.retain(|n| *n != node);
        if self.live.len() == before {
            return Err(OrchestraError::Substrate(format!(
                "node {node} is not a live member"
            )));
        }
        Ok(())
    }

    /// Build the current routing table from the live membership.
    pub fn routing_table(&self) -> Result<RoutingTable> {
        if self.live.is_empty() {
            return Err(OrchestraError::Substrate(
                "cannot build a routing table with no live nodes".into(),
            ));
        }
        Ok(RoutingTable::build(
            &self.live,
            self.scheme,
            self.replication_factor,
        ))
    }

    /// Convenience: the current routing table as a shareable snapshot.
    pub fn snapshot(&self) -> Result<RoutingSnapshot> {
        Ok(self.routing_table()?.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn membership(n: u16) -> Membership {
        Membership::new((0..n).map(NodeId), AllocationScheme::Balanced, 3)
    }

    #[test]
    fn join_leave_fail_lifecycle() {
        let mut m = membership(4);
        assert_eq!(m.len(), 4);
        m.join(NodeId(10)).unwrap();
        assert_eq!(m.len(), 5);
        assert!(m.join(NodeId(10)).is_err());
        m.leave(NodeId(0)).unwrap();
        assert_eq!(m.len(), 4);
        m.fail(NodeId(1)).unwrap();
        assert_eq!(m.len(), 3);
        assert!(m.failed_nodes().contains(NodeId(1)));
        assert!(!m.failed_nodes().contains(NodeId(0)));
        assert!(m.leave(NodeId(99)).is_err());
        assert_eq!(m.history().len(), 3);
    }

    #[test]
    fn routing_table_tracks_membership() {
        let mut m = membership(8);
        let t1 = m.routing_table().unwrap();
        assert_eq!(t1.node_count(), 8);
        m.fail(NodeId(2)).unwrap();
        let t2 = m.routing_table().unwrap();
        assert_eq!(t2.node_count(), 7);
        assert!(!t2.contains_node(NodeId(2)));
    }

    #[test]
    fn rejoin_after_failure_clears_failed_flag() {
        let mut m = membership(4);
        m.fail(NodeId(3)).unwrap();
        assert!(m.failed_nodes().contains(NodeId(3)));
        m.join(NodeId(3)).unwrap();
        assert!(!m.failed_nodes().contains(NodeId(3)));
    }

    #[test]
    fn empty_membership_cannot_build_table() {
        let mut m = membership(1);
        m.fail(NodeId(0)).unwrap();
        assert!(m.routing_table().is_err());
        assert!(m.is_empty());
    }
}
