//! # orchestra-simnet
//!
//! A deterministic discrete-event simulation (DES) of the environments the
//! paper deploys on: a Gigabit-Ethernet LAN cluster, a traffic-shaped
//! wide-area network, and Amazon EC2 instances.
//!
//! ## Why a simulator?
//!
//! The paper's evaluation runs a ~50 kLoC Java engine on a 16-node Xeon
//! cluster and up to 100 EC2 nodes.  Reproducing those testbeds is not
//! possible here, so — per the substitution policy in `DESIGN.md` — the
//! deployment environment is simulated while **the data path is real**:
//! the query engine in `orchestra-engine` executes genuine relational
//! operators over genuine tuples; only *time* (CPU, disk, wire) and
//! *failures* are modelled.  Network traffic is measured exactly, by
//! counting the serialized bytes of every message handed to the simulator.
//!
//! ## What is modelled
//!
//! * [`clock::SimTime`] — a virtual clock with microsecond resolution.
//! * [`sim::Simulator`] — an ordered event queue delivering messages to
//!   nodes at computed times, with stable FIFO tie-breaking so runs are
//!   exactly reproducible.
//! * [`link::LinkState`] — per-node uplink/downlink occupancy: a transfer
//!   of `b` bytes leaves the sender no earlier than `b / uplink_bandwidth`
//!   after the previous transfer finished, arrives one latency later, and
//!   then occupies the receiver's downlink — which is what makes the query
//!   initiator a bottleneck for result-heavy queries (the paper's `Copy`
//!   scenario) and reproduces the bandwidth knee of Figure 17.
//! * [`profiles`] — node and network profiles: LAN cluster, EC2 "large"
//!   instances, and bandwidth/latency-shaped WAN settings (NetEm/HTB in
//!   the paper).
//! * [`stats::TrafficStats`] — total, per-node and per-link byte counts,
//!   the quantities plotted in Figures 8, 9, 11, 12, 15, 16, 19 and 20.
//! * Failure injection: a node can be marked failed at a virtual instant;
//!   undelivered messages from/to it are dropped and peers observe the
//!   drop immediately (the paper relies on TCP connection resets for
//!   prompt failure detection) plus a configurable background ping period
//!   for "hung" nodes.

pub mod clock;
pub mod link;
pub mod profiles;
pub mod sim;
pub mod stats;

pub use clock::SimTime;
pub use link::LinkState;
pub use profiles::{ClusterProfile, NodeProfile};
pub use sim::{Delivery, Simulator};
pub use stats::TrafficStats;
