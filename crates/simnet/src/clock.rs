//! The virtual clock.
//!
//! Simulated time is measured in integer microseconds, which gives ample
//! resolution for the costs being modelled (per-tuple CPU costs are in the
//! hundreds of nanoseconds to microseconds range) while keeping ordering
//! exact — no floating-point comparison issues in the event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant (or duration) of simulated time, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Build from whole seconds.
    pub fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000)
    }

    /// Build from fractional seconds (rounded to the nearest microsecond).
    pub fn from_secs_f64(secs: f64) -> SimTime {
        assert!(secs >= 0.0 && secs.is_finite(), "negative or NaN duration");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Build from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Build from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// The value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The value in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating subtraction (durations never go negative).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(13));
        assert_eq!(a - b, SimTime::from_millis(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(b < a);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_rejected() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
