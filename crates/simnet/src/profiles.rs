//! Node and network profiles describing the simulated deployment.
//!
//! The paper evaluates three environments, reproduced as constructors on
//! [`ClusterProfile`]:
//!
//! * [`ClusterProfile::lan_cluster`] — the 16-node cluster of dual-core
//!   2.4 GHz Xeons on Gigabit Ethernet used for Figures 7–16,
//! * [`ClusterProfile::wan`] — the same cluster with NetEm/HTB traffic
//!   shaping (bandwidth and latency limits) used for Figure 17 and the
//!   latency study, and
//! * [`ClusterProfile::ec2_large`] — Amazon EC2 "large" instances
//!   (virtualised dual-core 2 GHz Opterons, data-centre networking) used
//!   for Figures 18–20.
//!
//! The absolute constants are calibrated so that simulated running times
//! land in the same few-second range the paper reports for comparable
//! configurations; what matters for reproduction is that the *relative*
//! behaviour (speed-up with nodes, bandwidth knees, recovery deltas)
//! emerges from the same mechanisms.

use crate::clock::SimTime;

/// Per-node compute and storage characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeProfile {
    /// CPU time to process one tuple through one non-trivial operator
    /// (hash, probe, aggregate update, marshal), in seconds.
    pub cpu_seconds_per_tuple: f64,
    /// Additional CPU time per tuple for scan-level work (deserialisation
    /// from the local store, predicate evaluation), in seconds.
    pub scan_seconds_per_tuple: f64,
    /// Disk time per page read from the local versioned store, in seconds.
    /// The store is warm in the paper's measurements (they report results
    /// "after results converged", i.e. warm caches), so this is small.
    pub disk_seconds_per_page: f64,
    /// Fixed cost to launch a query fragment on the node (thread wakeup,
    /// plan instantiation), in seconds.
    pub task_startup_seconds: f64,
}

impl NodeProfile {
    /// A 2.4 GHz dual-core Xeon of the paper's local cluster.
    pub fn cluster_xeon() -> NodeProfile {
        NodeProfile {
            cpu_seconds_per_tuple: 1.1e-6,
            scan_seconds_per_tuple: 0.9e-6,
            disk_seconds_per_page: 80e-6,
            task_startup_seconds: 2e-3,
        }
    }

    /// An EC2 "large" instance: virtualised 2 GHz Opteron, slightly slower
    /// per-tuple work and higher task startup overhead than the bare-metal
    /// cluster.
    pub fn ec2_large() -> NodeProfile {
        NodeProfile {
            cpu_seconds_per_tuple: 1.5e-6,
            scan_seconds_per_tuple: 1.2e-6,
            disk_seconds_per_page: 120e-6,
            task_startup_seconds: 4e-3,
        }
    }

    /// CPU time to process `n` tuples through one operator.
    pub fn cpu_time(&self, tuples: usize) -> SimTime {
        SimTime::from_secs_f64(self.cpu_seconds_per_tuple * tuples as f64)
    }

    /// Time to scan `tuples` tuples spread over `pages` pages from the
    /// local store.
    pub fn scan_time(&self, tuples: usize, pages: usize) -> SimTime {
        SimTime::from_secs_f64(
            self.scan_seconds_per_tuple * tuples as f64 + self.disk_seconds_per_page * pages as f64,
        )
    }

    /// Fixed fragment-startup cost.
    pub fn startup_time(&self) -> SimTime {
        SimTime::from_secs_f64(self.task_startup_seconds)
    }
}

/// Network characteristics shared by every link of the simulated cluster.
///
/// The paper's WAN experiments shape *per-node* bandwidth (Figure 17's
/// x-axis is "Per-Node Bandwidth KB/sec"), which is exactly how the
/// simulator applies this number: each node's uplink and downlink is
/// limited to `bandwidth_bytes_per_sec`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterProfile {
    /// Per-node link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency in seconds.
    pub latency_seconds: f64,
    /// Hardware profile of every node.
    pub node: NodeProfile,
    /// Background ping period used to detect hung (but not disconnected)
    /// nodes, in seconds (Section V-C).
    pub ping_period_seconds: f64,
}

impl ClusterProfile {
    /// The paper's local 16-node Gigabit cluster.
    pub fn lan_cluster() -> ClusterProfile {
        ClusterProfile {
            // Gigabit Ethernet ≈ 117 MB/s of goodput per node.
            bandwidth_bytes_per_sec: 117e6,
            latency_seconds: 0.15e-3,
            node: NodeProfile::cluster_xeon(),
            ping_period_seconds: 1.0,
        }
    }

    /// EC2 "large" instances inside one region: plentiful bandwidth but
    /// higher latency and slower virtualised CPUs.
    pub fn ec2_large() -> ClusterProfile {
        ClusterProfile {
            bandwidth_bytes_per_sec: 60e6,
            latency_seconds: 0.8e-3,
            node: NodeProfile::ec2_large(),
            ping_period_seconds: 1.0,
        }
    }

    /// A traffic-shaped wide-area deployment: per-node bandwidth in
    /// kilobytes per second and one-way latency in milliseconds, applied
    /// to cluster-class nodes — mirroring the paper's NetEm/HTB setup.
    pub fn wan(per_node_kb_per_sec: f64, latency_ms: f64) -> ClusterProfile {
        ClusterProfile {
            bandwidth_bytes_per_sec: per_node_kb_per_sec * 1000.0,
            latency_seconds: latency_ms / 1000.0,
            node: NodeProfile::cluster_xeon(),
            ping_period_seconds: 1.0,
        }
    }

    /// A many-node metropolitan WAN for membership-dissemination studies:
    /// broadband-class per-node links (1 MB/s) with 20 ms one-way latency.
    /// Gossip messages are tiny, so what matters here is latency and the
    /// sheer node count (hundreds to thousands of participants), not
    /// bulk-transfer bandwidth.
    pub fn wan_metro() -> ClusterProfile {
        ClusterProfile::wan(1000.0, 20.0)
    }

    /// Transfer time of `bytes` over one node's link, excluding latency.
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimTime {
        SimTime::from_secs_f64(self.latency_seconds)
    }

    /// The background ping period.
    pub fn ping_period(&self) -> SimTime {
        SimTime::from_secs_f64(self.ping_period_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_constructors_are_distinct() {
        let lan = ClusterProfile::lan_cluster();
        let ec2 = ClusterProfile::ec2_large();
        assert!(lan.bandwidth_bytes_per_sec > ec2.bandwidth_bytes_per_sec);
        assert!(lan.node.cpu_seconds_per_tuple < ec2.node.cpu_seconds_per_tuple);
    }

    #[test]
    fn wan_profile_translates_units() {
        let wan = ClusterProfile::wan(400.0, 50.0);
        assert!((wan.bandwidth_bytes_per_sec - 400_000.0).abs() < 1e-6);
        assert!((wan.latency_seconds - 0.05).abs() < 1e-9);
        // 400 KB at 400 KB/s takes one second.
        assert_eq!(wan.transfer_time(400_000), SimTime::from_secs(1));
    }

    #[test]
    fn cost_helpers_scale_linearly() {
        let node = NodeProfile::cluster_xeon();
        let t1 = node.cpu_time(1_000);
        let t2 = node.cpu_time(2_000);
        assert_eq!(t2.as_micros(), t1.as_micros() * 2);
        assert!(node.scan_time(1_000, 10) > node.scan_time(1_000, 0));
        assert!(node.startup_time() > SimTime::ZERO);
    }
}
