//! The discrete-event simulator core.
//!
//! [`Simulator`] owns the virtual clock, the event queue, one
//! [`LinkState`] and one CPU-availability time per node, the failure
//! record, and the traffic counters.  It is generic over the message type
//! `M`, so the query engine defines its own message enum and the
//! simulator stays a pure transport/timing substrate.
//!
//! ### Determinism
//!
//! Events are ordered by `(delivery time, sequence number)`; the sequence
//! number is assigned at enqueue time, so simultaneous events are
//! delivered in the order they were produced.  Given identical inputs the
//! simulation is bit-for-bit reproducible.
//!
//! ### Failures
//!
//! [`Simulator::fail_node`] marks a node dead from a virtual instant
//! onwards.  Messages sent by a dead node are discarded at the send call;
//! messages addressed to a node that is dead at delivery time are
//! discarded at the pop.  Both kinds are counted in
//! [`Simulator::dropped_messages`], and the engine — exactly like the
//! paper's engine observing a TCP connection reset — learns of the failure
//! synchronously (the failure is injected by the experiment driver, which
//! then invokes the engine's recovery path).

use crate::clock::SimTime;
use crate::link::LinkState;
use crate::profiles::ClusterProfile;
use crate::stats::TrafficStats;
use orchestra_common::{NodeId, NodeSet};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event delivered by the simulator.
#[derive(Clone, Debug)]
pub struct Delivery<M> {
    /// Virtual time at which the event fires at the destination.
    pub time: SimTime,
    /// The node that produced the event.
    pub from: NodeId,
    /// The node at which the event fires.
    pub to: NodeId,
    /// The engine-defined payload.
    pub payload: M,
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    from: NodeId,
    to: NodeId,
    payload: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event simulator over `node_count` nodes.
pub struct Simulator<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event<M>>,
    links: Vec<LinkState>,
    cpu_free_at: Vec<SimTime>,
    failed_at: Vec<Option<SimTime>>,
    profile: ClusterProfile,
    stats: TrafficStats,
    dropped: u64,
}

impl<M> Simulator<M> {
    /// Create a simulator for `node_count` nodes sharing `profile`.
    pub fn new(node_count: usize, profile: ClusterProfile) -> Simulator<M> {
        assert!(node_count > 0, "simulator needs at least one node");
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            links: vec![LinkState::idle(); node_count],
            cpu_free_at: vec![SimTime::ZERO; node_count],
            failed_at: vec![None; node_count],
            profile,
            stats: TrafficStats::new(),
            dropped: 0,
        }
    }

    /// Current virtual time (the timestamp of the most recently delivered
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of simulated nodes.
    pub fn node_count(&self) -> usize {
        self.links.len()
    }

    /// The cluster profile in force.
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    /// Accumulated traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Number of messages dropped because the sender or receiver had
    /// failed.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped
    }

    /// Are there pending events?
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Delivery instant of the next pending event, without popping it.
    /// `None` means the simulation has quiesced.  Open-loop drivers peek
    /// this to decide whether an external arrival precedes the next
    /// simulated event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|ev| ev.time)
    }

    /// Advance the virtual clock to `at` without delivering anything —
    /// the idle time between a quiesced (or not-yet-due) event queue and
    /// an externally scheduled instant, e.g. the next session arrival of
    /// an open-loop workload.  The clock never moves backwards.
    pub fn advance_to(&mut self, at: SimTime) {
        self.now = self.now.max(at);
    }

    /// Mark `node` as failed from `at` onwards.
    pub fn fail_node(&mut self, node: NodeId, at: SimTime) {
        let slot = &mut self.failed_at[node.index()];
        match slot {
            Some(existing) if *existing <= at => {}
            _ => *slot = Some(at),
        }
    }

    /// Clear `node`'s failure record: it participates again from the next
    /// event onwards (a churned node rejoining with a fresh process).
    ///
    /// Messages that were addressed to the node while it was down and have
    /// already been popped stay dropped; events still queued will now be
    /// delivered — the simulated equivalent of a packet arriving just as
    /// the replacement process binds the port.
    pub fn revive_node(&mut self, node: NodeId) {
        self.failed_at[node.index()] = None;
    }

    /// Has `node` failed as of `at`?
    pub fn is_failed_at(&self, node: NodeId, at: SimTime) -> bool {
        matches!(self.failed_at[node.index()], Some(t) if t <= at)
    }

    /// The set of nodes failed as of `at`.
    pub fn failed_nodes_at(&self, at: SimTime) -> NodeSet {
        let mut s = NodeSet::empty();
        for i in 0..self.failed_at.len() {
            if self.is_failed_at(NodeId(i as u16), at) {
                s.insert(NodeId(i as u16));
            }
        }
        s
    }

    /// Reserve CPU on `node`: work of length `duration` that cannot start
    /// before `ready` completes at the returned time, and the node's CPU
    /// is busy until then.
    pub fn charge_cpu(&mut self, node: NodeId, ready: SimTime, duration: SimTime) -> SimTime {
        let start = self.cpu_free_at[node.index()].max(ready);
        let done = start + duration;
        self.cpu_free_at[node.index()] = done;
        done
    }

    /// The time `node`'s CPU becomes free.
    pub fn cpu_free_at(&self, node: NodeId) -> SimTime {
        self.cpu_free_at[node.index()]
    }

    /// Enqueue a purely local event at `node`, firing at `at` (no network
    /// involvement, no traffic recorded).
    pub fn schedule(&mut self, node: NodeId, at: SimTime, payload: M) {
        let seq = self.next_seq();
        self.push(Event {
            time: at,
            seq,
            from: node,
            to: node,
            payload,
        });
    }

    /// Send `bytes` of payload from `src` to `dst`, no earlier than
    /// `ready`.  Returns the delivery time, or `None` if the sender had
    /// already failed (the message is silently dropped, as with a crashed
    /// process).
    ///
    /// Same-node sends are delivered after the sender's CPU is free at
    /// `ready` with no link cost and no traffic recorded, matching the
    /// paper's engine where co-located operators hand tuples over in
    /// memory.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        ready: SimTime,
        payload: M,
    ) -> Option<SimTime> {
        if self.is_failed_at(src, ready) {
            self.dropped += 1;
            return None;
        }
        let arrival = if src == dst {
            ready
        } else {
            self.stats.record(src, dst, bytes);
            let uplink_done = self.links[src.index()].reserve_uplink(ready, bytes, &self.profile);
            let at_receiver = uplink_done + self.profile.latency();
            self.links[dst.index()].reserve_downlink(at_receiver, bytes, &self.profile)
        };
        let seq = self.next_seq();
        self.push(Event {
            time: arrival,
            seq,
            from: src,
            to: dst,
            payload,
        });
        Some(arrival)
    }

    /// Pop the next event.  Events addressed to nodes that are failed at
    /// the delivery instant are discarded (and counted); `None` means the
    /// simulation has quiesced.
    ///
    /// Deliberately not an `Iterator` impl: callers interleave `send`
    /// calls between pops, which a borrowing iterator would forbid.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Delivery<M>> {
        while let Some((d, delivered)) = self.next_any() {
            if delivered {
                return Some(d);
            }
        }
        None
    }

    /// Pop the next event, delivered or not.  The flag is `false` when
    /// the destination was failed at the delivery instant: the event was
    /// counted as dropped and must not be processed, but callers that
    /// multiplex several sessions over one simulator can still read the
    /// payload to attribute the drop.  `None` means the simulation has
    /// quiesced.
    pub fn next_any(&mut self) -> Option<(Delivery<M>, bool)> {
        let ev = self.queue.pop()?;
        self.now = self.now.max(ev.time);
        let delivered = !self.is_failed_at(ev.to, ev.time);
        if !delivered {
            self.dropped += 1;
        }
        Some((
            Delivery {
                time: ev.time,
                from: ev.from,
                to: ev.to,
                payload: ev.payload,
            },
            delivered,
        ))
    }

    /// Total time all links have spent transferring bytes, both
    /// directions over every node.
    pub fn link_busy_time(&self) -> SimTime {
        self.links
            .iter()
            .fold(SimTime::ZERO, |acc, l| acc + l.busy_time())
    }

    /// Aggregate link utilization over the window `[0, until]`: transfer
    /// time summed across every node's uplink and downlink, divided by
    /// the total link capacity of the window (`2 × nodes × until`).
    /// Returns 0 for an empty window.
    ///
    /// Busy time accrues in full at reservation, so a transfer still in
    /// flight at `until` contributes its whole duration: the figure is
    /// an upper bound on the window's true utilization.  Each direction
    /// is clamped to the window (a link cannot be busy longer than the
    /// window lasts), which also caps the result at 1.0.
    pub fn link_utilization(&self, until: SimTime) -> f64 {
        let capacity = 2 * self.links.len() as u64 * until.as_micros();
        if capacity == 0 {
            return 0.0;
        }
        let busy: u64 = self
            .links
            .iter()
            .map(|l| {
                l.uplink_busy.as_micros().min(until.as_micros())
                    + l.downlink_busy.as_micros().min(until.as_micros())
            })
            .sum();
        busy as f64 / capacity as f64
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push(&mut self, ev: Event<M>) {
        self.queue.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: usize) -> Simulator<&'static str> {
        Simulator::new(n, ClusterProfile::wan(1000.0, 10.0)) // 1 MB/s, 10 ms
    }

    #[test]
    fn events_pop_in_time_then_fifo_order() {
        let mut s = sim(2);
        s.schedule(NodeId(0), SimTime::from_millis(5), "b");
        s.schedule(NodeId(0), SimTime::from_millis(1), "a");
        s.schedule(NodeId(0), SimTime::from_millis(5), "c");
        let order: Vec<&str> = std::iter::from_fn(|| s.next().map(|d| d.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_millis(5));
    }

    #[test]
    fn peek_and_advance_drive_an_open_loop_clock() {
        let mut s = sim(2);
        assert_eq!(s.next_time(), None);
        s.schedule(NodeId(0), SimTime::from_millis(5), "later");
        assert_eq!(s.next_time(), Some(SimTime::from_millis(5)));
        // Peeking never advances the clock or pops the event.
        assert_eq!(s.now(), SimTime::ZERO);
        // An arrival at t = 2 ms precedes the event: advance to it.
        s.advance_to(SimTime::from_millis(2));
        assert_eq!(s.now(), SimTime::from_millis(2));
        // The clock never moves backwards.
        s.advance_to(SimTime::from_millis(1));
        assert_eq!(s.now(), SimTime::from_millis(2));
        let d = s.next().unwrap();
        assert_eq!(d.payload, "later");
        assert_eq!(s.now(), SimTime::from_millis(5));
    }

    #[test]
    fn send_accounts_for_bandwidth_and_latency() {
        let mut s = sim(2);
        // 1000 bytes at 1 MB/s = 1 ms on the uplink, +10 ms latency,
        // +1 ms on the receiver downlink.
        let arrival = s
            .send(NodeId(0), NodeId(1), 1000, SimTime::ZERO, "msg")
            .unwrap();
        assert_eq!(arrival, SimTime::from_millis(12));
        assert_eq!(s.stats().total_bytes(), 1000);
        let d = s.next().unwrap();
        assert_eq!(d.to, NodeId(1));
        assert_eq!(d.time, arrival);
    }

    #[test]
    fn local_sends_are_free_and_unrecorded() {
        let mut s = sim(2);
        let arrival = s
            .send(
                NodeId(1),
                NodeId(1),
                1_000_000,
                SimTime::from_millis(3),
                "x",
            )
            .unwrap();
        assert_eq!(arrival, SimTime::from_millis(3));
        assert_eq!(s.stats().total_bytes(), 0);
    }

    #[test]
    fn consecutive_sends_share_the_uplink() {
        let mut s = sim(3);
        let a1 = s
            .send(NodeId(0), NodeId(1), 1000, SimTime::ZERO, "a")
            .unwrap();
        let a2 = s
            .send(NodeId(0), NodeId(2), 1000, SimTime::ZERO, "b")
            .unwrap();
        // The second message cannot start until the first left the uplink.
        assert!(a2 > a1);
        assert_eq!(a2, SimTime::from_millis(13));
    }

    #[test]
    fn cpu_charges_serialize_per_node() {
        let mut s = sim(2);
        let d1 = s.charge_cpu(NodeId(0), SimTime::ZERO, SimTime::from_millis(4));
        let d2 = s.charge_cpu(NodeId(0), SimTime::ZERO, SimTime::from_millis(4));
        let other = s.charge_cpu(NodeId(1), SimTime::ZERO, SimTime::from_millis(4));
        assert_eq!(d1, SimTime::from_millis(4));
        assert_eq!(d2, SimTime::from_millis(8));
        assert_eq!(other, SimTime::from_millis(4));
        assert_eq!(s.cpu_free_at(NodeId(0)), SimTime::from_millis(8));
    }

    #[test]
    fn failed_sender_drops_messages() {
        let mut s = sim(2);
        s.fail_node(NodeId(0), SimTime::from_millis(1));
        assert!(s
            .send(NodeId(0), NodeId(1), 10, SimTime::from_millis(2), "late")
            .is_none());
        // A send that was initiated before the failure still goes out.
        assert!(s
            .send(NodeId(0), NodeId(1), 10, SimTime::ZERO, "early")
            .is_some());
        assert_eq!(s.dropped_messages(), 1);
    }

    #[test]
    fn failed_receiver_discards_at_delivery() {
        let mut s = sim(2);
        s.send(NodeId(0), NodeId(1), 1000, SimTime::ZERO, "doomed")
            .unwrap();
        s.fail_node(NodeId(1), SimTime::from_millis(1));
        assert!(s.next().is_none());
        assert_eq!(s.dropped_messages(), 1);
        assert!(s.is_failed_at(NodeId(1), SimTime::from_millis(1)));
        assert!(!s.is_failed_at(NodeId(1), SimTime::ZERO));
        assert_eq!(s.failed_nodes_at(SimTime::from_secs(1)).len(), 1);
    }

    #[test]
    fn revived_node_sends_and_receives_again() {
        let mut s = sim(2);
        s.fail_node(NodeId(1), SimTime::ZERO);
        assert!(s
            .send(NodeId(1), NodeId(0), 10, SimTime::from_millis(1), "dead")
            .is_none());
        s.revive_node(NodeId(1));
        assert!(!s.is_failed_at(NodeId(1), SimTime::from_secs(1)));
        assert!(s
            .send(NodeId(1), NodeId(0), 10, SimTime::from_millis(2), "alive")
            .is_some());
        assert!(s
            .send(NodeId(0), NodeId(1), 10, SimTime::from_millis(2), "inbound")
            .is_some());
        let delivered: Vec<&str> = std::iter::from_fn(|| s.next().map(|d| d.payload)).collect();
        assert_eq!(delivered, vec!["alive", "inbound"]);
    }

    #[test]
    fn next_any_surfaces_dropped_deliveries() {
        let mut s = sim(2);
        s.send(NodeId(0), NodeId(1), 1000, SimTime::ZERO, "doomed")
            .unwrap();
        s.fail_node(NodeId(1), SimTime::from_millis(1));
        let (d, delivered) = s.next_any().unwrap();
        assert!(!delivered, "receiver is dead at the delivery instant");
        assert_eq!(d.payload, "doomed");
        assert_eq!(s.dropped_messages(), 1);
        assert!(s.next_any().is_none());
    }

    #[test]
    fn link_utilization_tracks_busy_fraction() {
        let mut s = sim(2); // 1 MB/s, 10 ms latency
        assert_eq!(s.link_utilization(SimTime::from_secs(1)), 0.0);
        // 1000 bytes = 1 ms on the uplink + 1 ms on the downlink.
        s.send(NodeId(0), NodeId(1), 1000, SimTime::ZERO, "m");
        assert_eq!(s.link_busy_time(), SimTime::from_millis(2));
        // 2 ms busy over a 100 ms window of 2 nodes × 2 directions.
        let util = s.link_utilization(SimTime::from_millis(100));
        assert!((util - 2.0 / 400.0).abs() < 1e-12, "{util}");
        assert_eq!(s.link_utilization(SimTime::ZERO), 0.0);
        // A transfer longer than the window is clamped to it: the
        // utilization figure never exceeds 1.0 even when stragglers are
        // still in flight at the window's end.
        s.send(NodeId(0), NodeId(1), 10_000_000, SimTime::ZERO, "big"); // 10 s
        let clamped = s.link_utilization(SimTime::from_millis(100));
        assert!(clamped <= 1.0, "{clamped}");
        assert!((clamped - 0.5).abs() < 0.02, "{clamped}"); // 2 of 4 links saturated
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut s = sim(4);
            for i in 0..50u16 {
                let src = NodeId(i % 4);
                let dst = NodeId((i + 1) % 4);
                s.send(src, dst, 100 * (i as usize + 1), SimTime::ZERO, "m");
            }
            let mut trace = Vec::new();
            while let Some(d) = s.next() {
                trace.push((d.time, d.from, d.to));
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
