//! Per-node link occupancy.
//!
//! The engine's performance in the paper is frequently network-bound: the
//! `Copy` scenario saturates the query initiator's downlink, and
//! Figure 17 shows running time exploding once per-node bandwidth drops
//! below a few hundred kB/s.  To reproduce those effects the simulator
//! serialises transfers through each node's uplink and downlink:
//!
//! * a transfer occupies the sender's **uplink** for `bytes / bandwidth`
//!   starting no earlier than the uplink is free,
//! * it then takes one propagation latency to cross the wire, and
//! * it occupies the receiver's **downlink** for `bytes / bandwidth`
//!   starting no earlier than the downlink is free.
//!
//! Messages between co-located operators on the same node skip the link
//! entirely (the engine batches and routes locally, as in the paper).

use crate::clock::SimTime;
use crate::profiles::ClusterProfile;

/// Occupancy state of one node's uplink and downlink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkState {
    /// Earliest time the node can start sending the next message.
    pub uplink_free_at: SimTime,
    /// Earliest time the node can start receiving the next message.
    pub downlink_free_at: SimTime,
    /// Cumulative time the uplink has spent transferring bytes.
    pub uplink_busy: SimTime,
    /// Cumulative time the downlink has spent transferring bytes.
    pub downlink_busy: SimTime,
}

impl LinkState {
    /// A link that has never been used.
    pub fn idle() -> LinkState {
        LinkState::default()
    }

    /// Reserve the uplink for a transfer of `bytes` starting no earlier
    /// than `ready`; returns the time the last byte leaves the sender.
    pub fn reserve_uplink(
        &mut self,
        ready: SimTime,
        bytes: usize,
        profile: &ClusterProfile,
    ) -> SimTime {
        let start = self.uplink_free_at.max(ready);
        let occupied = profile.transfer_time(bytes);
        let done = start + occupied;
        self.uplink_free_at = done;
        self.uplink_busy += occupied;
        done
    }

    /// Total time this node's links have spent transferring bytes, both
    /// directions combined — the numerator of a utilization figure.
    pub fn busy_time(&self) -> SimTime {
        self.uplink_busy + self.downlink_busy
    }

    /// Reserve the downlink for a transfer of `bytes` whose first byte
    /// arrives at `arrival_start`; returns the time the last byte has been
    /// received.
    pub fn reserve_downlink(
        &mut self,
        arrival_start: SimTime,
        bytes: usize,
        profile: &ClusterProfile,
    ) -> SimTime {
        let start = self.downlink_free_at.max(arrival_start);
        let occupied = profile.transfer_time(bytes);
        let done = start + occupied;
        self.downlink_free_at = done;
        self.downlink_busy += occupied;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_sends_serialize_on_the_uplink() {
        let profile = ClusterProfile::wan(1000.0, 0.0); // 1 MB/s, no latency
        let mut link = LinkState::idle();
        let d1 = link.reserve_uplink(SimTime::ZERO, 500_000, &profile);
        let d2 = link.reserve_uplink(SimTime::ZERO, 500_000, &profile);
        assert_eq!(d1, SimTime::from_secs_f64(0.5));
        assert_eq!(d2, SimTime::from_secs(1));
    }

    #[test]
    fn idle_gaps_are_not_accumulated() {
        let profile = ClusterProfile::wan(1000.0, 0.0);
        let mut link = LinkState::idle();
        link.reserve_uplink(SimTime::ZERO, 1000, &profile);
        // A much later send starts when it is ready, not when the link
        // became free.
        let done = link.reserve_uplink(SimTime::from_secs(10), 1000, &profile);
        assert_eq!(done, SimTime::from_secs(10) + SimTime::from_millis(1));
    }

    #[test]
    fn busy_time_accumulates_transfer_time_not_idle_gaps() {
        let profile = ClusterProfile::wan(1000.0, 0.0); // 1 MB/s
        let mut link = LinkState::idle();
        link.reserve_uplink(SimTime::ZERO, 1000, &profile); // 1 ms
        link.reserve_uplink(SimTime::from_secs(5), 1000, &profile); // 1 ms, after a gap
        link.reserve_downlink(SimTime::from_secs(7), 2000, &profile); // 2 ms
        assert_eq!(link.uplink_busy, SimTime::from_millis(2));
        assert_eq!(link.downlink_busy, SimTime::from_millis(2));
        assert_eq!(link.busy_time(), SimTime::from_millis(4));
    }

    #[test]
    fn downlink_contention_delays_receipt() {
        let profile = ClusterProfile::wan(1000.0, 0.0);
        let mut link = LinkState::idle();
        let r1 = link.reserve_downlink(SimTime::ZERO, 1_000_000, &profile);
        let r2 = link.reserve_downlink(SimTime::ZERO, 1_000_000, &profile);
        assert_eq!(r1, SimTime::from_secs(1));
        assert_eq!(r2, SimTime::from_secs(2));
    }
}
