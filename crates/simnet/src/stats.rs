//! Network traffic accounting.
//!
//! Half of the paper's figures plot network traffic — total across the
//! system (Figures 8, 11, 15, 16, 19) or per node (Figures 9, 12, 20).
//! The simulator counts the serialized size of every inter-node message at
//! the moment it is handed to [`crate::sim::Simulator::send`], so the
//! numbers reported by [`TrafficStats`] are exact for a given execution,
//! not estimates.

use orchestra_common::NodeId;
use std::collections::BTreeMap;

/// Byte and message counters for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    total_bytes: u64,
    total_messages: u64,
    sent_bytes: BTreeMap<NodeId, u64>,
    received_bytes: BTreeMap<NodeId, u64>,
    link_bytes: BTreeMap<(NodeId, NodeId), u64>,
}

impl TrafficStats {
    /// Fresh, all-zero counters.
    pub fn new() -> TrafficStats {
        TrafficStats::default()
    }

    /// Record one inter-node message of `bytes` bytes from `src` to `dst`.
    pub fn record(&mut self, src: NodeId, dst: NodeId, bytes: usize) {
        let bytes = bytes as u64;
        self.total_bytes += bytes;
        self.total_messages += 1;
        *self.sent_bytes.entry(src).or_default() += bytes;
        *self.received_bytes.entry(dst).or_default() += bytes;
        *self.link_bytes.entry((src, dst)).or_default() += bytes;
    }

    /// Total bytes shipped between distinct nodes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total bytes, in megabytes (the unit of the paper's traffic figures).
    pub fn total_megabytes(&self) -> f64 {
        self.total_bytes as f64 / 1e6
    }

    /// Total number of inter-node messages.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Bytes sent by `node`.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.sent_bytes.get(&node).copied().unwrap_or(0)
    }

    /// Bytes received by `node`.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.received_bytes.get(&node).copied().unwrap_or(0)
    }

    /// Bytes carried on the directed link `src -> dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> u64 {
        self.link_bytes.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Every directed link that carried traffic, with its byte count, in
    /// `(src, dst)` order.  This is the exact per-link breakdown the query
    /// reports expose.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), u64)> + '_ {
        self.link_bytes.iter().map(|(l, b)| (*l, *b))
    }

    /// Average traffic per node (sent + received, halved so each byte is
    /// counted once), over `node_count` nodes, in megabytes.  This is the
    /// quantity plotted in the paper's "per-node network traffic" figures.
    pub fn per_node_megabytes(&self, node_count: usize) -> f64 {
        if node_count == 0 {
            0.0
        } else {
            self.total_megabytes() / node_count as f64
        }
    }

    /// The node that received the most bytes, if any traffic flowed.
    /// Useful for spotting the query-initiator bottleneck in result-heavy
    /// queries.
    pub fn busiest_receiver(&self) -> Option<(NodeId, u64)> {
        self.received_bytes
            .iter()
            .max_by_key(|(_, b)| **b)
            .map(|(n, b)| (*n, *b))
    }

    /// Merge another run's counters into this one (used when a harness
    /// aggregates warm-up plus measured runs).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.total_bytes += other.total_bytes;
        self.total_messages += other.total_messages;
        for (n, b) in &other.sent_bytes {
            *self.sent_bytes.entry(*n).or_default() += b;
        }
        for (n, b) in &other.received_bytes {
            *self.received_bytes.entry(*n).or_default() += b;
        }
        for (l, b) in &other.link_bytes {
            *self.link_bytes.entry(*l).or_default() += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TrafficStats::new();
        s.record(NodeId(0), NodeId(1), 1000);
        s.record(NodeId(0), NodeId(2), 500);
        s.record(NodeId(1), NodeId(0), 250);
        assert_eq!(s.total_bytes(), 1750);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.sent_by(NodeId(0)), 1500);
        assert_eq!(s.received_by(NodeId(0)), 250);
        assert_eq!(s.link(NodeId(0), NodeId(1)), 1000);
        assert_eq!(s.link(NodeId(1), NodeId(2)), 0);
    }

    #[test]
    fn per_node_average_and_busiest() {
        let mut s = TrafficStats::new();
        s.record(NodeId(0), NodeId(1), 4_000_000);
        s.record(NodeId(2), NodeId(1), 2_000_000);
        assert!((s.per_node_megabytes(3) - 2.0).abs() < 1e-9);
        assert_eq!(s.busiest_receiver(), Some((NodeId(1), 6_000_000)));
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = TrafficStats::new();
        a.record(NodeId(0), NodeId(1), 100);
        let mut b = TrafficStats::new();
        b.record(NodeId(0), NodeId(1), 50);
        b.record(NodeId(1), NodeId(0), 25);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 175);
        assert_eq!(a.link(NodeId(0), NodeId(1)), 150);
        assert_eq!(a.total_messages(), 3);
    }

    #[test]
    fn links_enumerates_every_directed_pair() {
        let mut s = TrafficStats::new();
        s.record(NodeId(0), NodeId(1), 100);
        s.record(NodeId(1), NodeId(0), 50);
        s.record(NodeId(0), NodeId(1), 10);
        let links: Vec<((NodeId, NodeId), u64)> = s.links().collect();
        assert_eq!(
            links,
            vec![((NodeId(0), NodeId(1)), 110), ((NodeId(1), NodeId(0)), 50)]
        );
        assert_eq!(links.iter().map(|(_, b)| b).sum::<u64>(), s.total_bytes());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TrafficStats::new();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.per_node_megabytes(0), 0.0);
        assert_eq!(s.busiest_receiver(), None);
    }
}
