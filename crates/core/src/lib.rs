//! # orchestra-core
//!
//! Facade over the ORCHESTRA reproduction (Taylor & Ives, *Reliable
//! Storage and Querying for Collaborative Data Sharing Systems*, ICDE
//! 2010): one crate to depend on when a consumer wants the whole stack —
//! the shared primitives, the hashing substrate, the versioned storage
//! layer, the simulated cluster and the reliable query engine — without
//! naming five crates.
//!
//! The layering mirrors the paper's architecture:
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | primitives | [`common`] | III-A (key space), IV (tuple IDs) |
//! | partitioning substrate | [`substrate`] | III |
//! | versioned storage | [`storage`] | IV |
//! | simulated deployment | [`simnet`] | VI (testbeds) |
//! | query engine + recovery | [`engine`] | V |
//! | cost-based optimizer | [`optimizer`] | V (System-R planning) |
//! | workload catalogue | [`workloads`] | VI-B/VI-C |
//! | experiment harness | [`bench`](mod@bench) | VI (figures) |

pub use orchestra_bench as bench;
pub use orchestra_common as common;
pub use orchestra_engine as engine;
pub use orchestra_optimizer as optimizer;
pub use orchestra_simnet as simnet;
pub use orchestra_storage as storage;
pub use orchestra_substrate as substrate;
pub use orchestra_workloads as workloads;

pub use orchestra_bench::{
    failure_sweep_points, poisson_arrivals, run_adaptivity, run_churn, run_maintenance,
    run_plan_quality, run_recovery_sweep, run_scale_out, run_serving_experiment, run_subscriptions,
    run_tagging_overhead, run_throughput, trace_arrivals, AdaptivityReport, AdaptivitySpec,
    ChurnBenchSpec, ChurnReport, MaintenanceReport, MaintenanceSweepSpec, PlanQuality,
    RecoverySweep, ScaleOutPoint, ServingPoint, ServingSpec, ServingSweep, SubscriptionSweep,
    SubscriptionsReport, SubscriptionsSpec, TaggingOverhead, ThroughputPoint, ThroughputSweep,
};
pub use orchestra_common::{Epoch, NodeId, QueryFingerprint, Relation, Schema, Tuple, Value};
pub use orchestra_engine::{
    refresh_view, AdmissionPolicy, CacheStats, EngineConfig, EvictionPolicy, FailureSpec,
    MaintenanceMode, MaintenancePlan, MaintenanceRun, MaterializedView, PhysicalPlan, PlanBuilder,
    QueryExecutor, QueryReport, QuerySession, RecoveryStrategy, RegistryRefresh, ResultCache,
    ScanOverrides, SchedulerConfig, SessionId, SessionReport, SessionScheduler, ShedEvent,
    ViewDiff, ViewRegistry, WorkloadReport,
};
pub use orchestra_optimizer::{
    choose_maintenance, compile, compile_delta_legs, estimate_plan_cost, fingerprint, LogicalExpr,
    LogicalQuery, MaintenanceChoice, MaintenanceDecision, PlanCost, Statistics, TableStats,
};
pub use orchestra_simnet::{ClusterProfile, SimTime};
pub use orchestra_storage::{DistributedStorage, RelationDelta, StorageConfig, UpdateBatch};
pub use orchestra_substrate::{
    AllocationScheme, Gossip, GossipConfig, MembershipChange, ReplicationPolicy, RoutingTable,
};
pub use orchestra_workloads::{
    compiled_plan, deploy, deploy_all, epoch_stream, mixed_stream, ConcatenateScenario,
    CopyScenario, EpochSpec, EpochStream, TpchDataset, TpchQuery, TpchWorkload, Workload,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reaches_every_layer() {
        // A miniature end-to-end pass using only facade re-exports.
        let routing = RoutingTable::build(
            &(0..3).map(NodeId).collect::<Vec<_>>(),
            AllocationScheme::Balanced,
            3,
        );
        let mut store = DistributedStorage::new(routing, StorageConfig::default());
        store.register_relation(Relation::partitioned(
            "R",
            Schema::keyed_on_first(vec![
                ("k", common::ColumnType::Int),
                ("v", common::ColumnType::Int),
            ]),
        ));
        let mut batch = UpdateBatch::new();
        for k in 0..10 {
            batch.insert("R", Tuple::new(vec![Value::Int(k), Value::Int(k * k)]));
        }
        store.publish(&batch).unwrap();

        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 2, None);
        let ship = b.ship(scan);
        let plan = b.output(ship);
        let exec = QueryExecutor::new(&store, EngineConfig::default());
        let report = exec.execute(&plan, Epoch(0), NodeId(0)).unwrap();
        assert_eq!(report.rows.len(), 10);
    }

    #[test]
    fn facade_reaches_workloads_and_bench() {
        // An experiment is one `use orchestra_core::*` away: deploy a
        // catalogue workload and sweep a failure-free scale-out.
        let workload = CopyScenario { seed: 5, rows: 60 };
        let points = run_scale_out(&workload, &[4], &EngineConfig::default(), false).unwrap();
        assert_eq!(points.len(), 1);
        assert!(points[0].total_bytes > 0);
        let (storage, epoch) = deploy(&workload, 4).unwrap();
        let report = QueryExecutor::new(&storage, EngineConfig::default())
            .execute(&workload.reference_plan(), epoch, NodeId(0))
            .unwrap();
        assert_eq!(report.rows, workload.reference());
        assert!(!failure_sweep_points(report.running_time, 3).is_empty());
    }

    #[test]
    fn facade_reaches_the_session_scheduler() {
        // Two catalogue workloads scheduled concurrently over one
        // cluster, reached purely through facade re-exports.
        let q6 = TpchWorkload::scaled(TpchQuery::Q6, 3, 120);
        let copy = CopyScenario { seed: 3, rows: 60 };
        let all: [&dyn Workload; 2] = [&q6, &copy];
        let (storage, epoch) = deploy_all(&all, 4).unwrap();
        let stats = Statistics::collect(&storage, epoch);
        let sessions: Vec<QuerySession> = all
            .iter()
            .map(|w| {
                let plan = compile(&w.logical(), &stats).unwrap();
                let cost = estimate_plan_cost(&plan, &stats).unwrap().total();
                QuerySession {
                    name: w.name(),
                    plan,
                    epoch,
                    initiator: NodeId(0),
                    arrival: SimTime::ZERO,
                    fingerprint: Some(fingerprint(&w.logical())),
                    estimated_cost: cost,
                    overrides: Default::default(),
                    plan_resident: false,
                }
            })
            .collect();
        let scheduler = SessionScheduler::new(SchedulerConfig {
            max_concurrent: 2,
            queue_capacity: 4,
            policy: AdmissionPolicy::ShortestCostFirst,
            slo: None,
        });
        let workload = scheduler
            .run(&storage, &EngineConfig::default(), &sessions)
            .unwrap();
        assert_eq!(workload.sessions.len(), 2);
        for (i, sr) in workload.sessions.iter().enumerate() {
            assert_eq!(sr.report.rows, all[i].reference(), "{}", sr.name);
        }
        assert!(workload.link_utilization > 0.0);
    }

    #[test]
    fn facade_reaches_view_maintenance() {
        // Materialize a workload answer, publish a delta epoch, absorb
        // it incrementally — all through facade re-exports.
        let w = CopyScenario { seed: 7, rows: 80 };
        let (mut storage, e0) = deploy(&w, 4).unwrap();
        let plan = compiled_plan(&w, &storage, e0).unwrap();
        let mut view = MaterializedView::new("copy", &plan).unwrap();
        refresh_view(
            &mut view,
            &storage,
            &EngineConfig::default(),
            MaintenanceMode::Recompute,
            e0,
            NodeId(0),
            None,
        )
        .unwrap();
        assert_eq!(view.answer(), w.reference());

        let stream = epoch_stream(&w, 3, &[EpochSpec::new(3, 2, 1)]).unwrap();
        let e1 = storage.publish(stream.batch(0)).unwrap();
        let run = refresh_view(
            &mut view,
            &storage,
            &EngineConfig::default(),
            MaintenanceMode::Incremental,
            e1,
            NodeId(0),
            None,
        )
        .unwrap();
        assert_eq!(run.legs, 1);
        assert_eq!(view.answer(), stream.reference(0));
        assert_eq!(view.epoch(), Some(e1));
    }

    #[test]
    fn facade_reaches_the_optimizer() {
        // Compile a catalogue workload's logical query through the
        // facade re-exports and execute the optimizer-chosen plan.
        let workload = TpchWorkload::scaled(TpchQuery::Q6, 9, 200);
        let (storage, epoch) = deploy(&workload, 4).unwrap();
        let plan = compiled_plan(&workload, &storage, epoch).unwrap();
        let stats = Statistics::collect(&storage, epoch);
        let cost = estimate_plan_cost(&plan, &stats).unwrap();
        let hand = estimate_plan_cost(&workload.reference_plan(), &stats).unwrap();
        assert!(cost.total() <= hand.total());
        let report = QueryExecutor::new(&storage, EngineConfig::default())
            .execute(&plan, epoch, NodeId(0))
            .unwrap();
        assert_eq!(report.rows, workload.reference());
    }
}
