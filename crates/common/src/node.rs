//! Participant identifiers and compact sets of participants.
//!
//! The paper's recovery machinery (Section V-D) tags every tuple flowing
//! through the query engine with "the set of nodes that have processed it
//! (or any tuple used to create it)".  With dozens to hundreds of
//! participants — the paper's stated target scale — a fixed-size bitset is
//! the natural representation: [`NodeSet`] supports up to
//! [`NodeSet::CAPACITY`] (256) participants in 32 bytes, with O(1) insert,
//! membership test, union and intersection.

use std::fmt;

/// Identifier of a participant (peer) in the CDSS.
///
/// Node IDs are dense small integers assigned by the cluster builder; the
/// substrate separately derives each node's *ring position* by hashing its
/// (simulated) network address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The dense index of this node, usable as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A synthetic network address for the node, hashed by the substrate
    /// to obtain its ring position (the paper hashes the node's IP
    /// address).
    pub fn address(self) -> String {
        format!("10.0.{}.{}:7800", self.0 / 256, self.0 % 256)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A set of participants, stored as a 256-bit bitset.
///
/// Used for provenance tags on tuples, aggregate sub-group keys, and the
/// sets of failed nodes handed to the recovery machinery.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet {
    words: [u64; 4],
}

impl NodeSet {
    /// Maximum number of distinct participants representable.
    pub const CAPACITY: usize = 256;

    /// The empty set.
    pub fn empty() -> Self {
        NodeSet::default()
    }

    /// A set containing a single node.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = NodeSet::empty();
        s.insert(node);
        s
    }

    /// Insert a node.  Panics if the node index exceeds [`Self::CAPACITY`],
    /// which would indicate a cluster larger than the system supports.
    pub fn insert(&mut self, node: NodeId) {
        let i = node.index();
        assert!(
            i < Self::CAPACITY,
            "NodeSet supports at most {} nodes (got {i})",
            Self::CAPACITY
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Remove a node (no-op if absent).
    pub fn remove(&mut self, node: NodeId) {
        let i = node.index();
        if i < Self::CAPACITY {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Is `node` a member?
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        i < Self::CAPACITY && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set union.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = *self;
        for i in 0..4 {
            out.words[i] |= other.words[i];
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut out = *self;
        for i in 0..4 {
            out.words[i] &= other.words[i];
        }
        out
    }

    /// Does this set share any member with `other`?
    ///
    /// This is the core "taint" test of incremental recovery: a tuple is
    /// tainted if the set of nodes that processed it intersects the set of
    /// failed nodes.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Iterate over the members in ascending node-id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..Self::CAPACITY as u16)
            .map(NodeId)
            .filter(move |n| self.contains(*n))
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::empty();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::empty();
        assert!(s.is_empty());
        s.insert(NodeId(3));
        s.insert(NodeId(200));
        assert!(s.contains(NodeId(3)));
        assert!(s.contains(NodeId(200)));
        assert!(!s.contains(NodeId(4)));
        assert_eq!(s.len(), 2);
        s.remove(NodeId(3));
        assert!(!s.contains(NodeId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_intersection() {
        let a = NodeSet::from_iter([NodeId(1), NodeId(2), NodeId(3)]);
        let b = NodeSet::from_iter([NodeId(3), NodeId(4)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert!(a.intersection(&b).contains(NodeId(3)));
    }

    #[test]
    fn intersects_is_taint_test() {
        let provenance = NodeSet::from_iter([NodeId(0), NodeId(5)]);
        let failed = NodeSet::singleton(NodeId(5));
        let unrelated = NodeSet::singleton(NodeId(9));
        assert!(provenance.intersects(&failed));
        assert!(!provenance.intersects(&unrelated));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s = NodeSet::from_iter([NodeId(9), NodeId(1), NodeId(255)]);
        let got: Vec<u16> = s.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![1, 9, 255]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn inserting_out_of_capacity_panics() {
        let mut s = NodeSet::empty();
        s.insert(NodeId(256));
    }

    #[test]
    fn node_addresses_are_distinct() {
        assert_ne!(NodeId(0).address(), NodeId(1).address());
        assert_ne!(NodeId(1).address(), NodeId(257).address());
    }
}
