//! The 160-bit key space and ring arithmetic.
//!
//! ORCHESTRA's substrate (paper Section III-A) places nodes and data on a
//! ring of 160-bit unsigned integers — the output space of SHA-1 — that
//! "starts at 0 and increases clockwise until `2^160 - 1` and then
//! overflows back to 0".  [`Key160`] is that integer type, implemented as
//! three 64-bit limbs (the top limb holds only 32 significant bits), with
//! exactly the operations the substrate, storage and query layers need:
//!
//! * wrapping addition and subtraction (ring arithmetic),
//! * clockwise distance between two points,
//! * midpoints of ranges (used to co-locate index pages with the middle of
//!   the tuple-key range they describe, Section IV),
//! * division of the whole space into `n` equal contiguous ranges (the
//!   "balanced range allocation" of Figure 2(b)), and
//! * hashing arbitrary byte strings onto the ring via SHA-1.
//!
//! [`KeyRange`] is a half-open clockwise arc `[start, end)` on the ring,
//! which is how both the substrate (node ownership ranges) and the storage
//! layer (index-page key ranges) describe responsibility.

use crate::sha1::{sha1, DIGEST_LEN};
use std::cmp::Ordering;
use std::fmt;

/// Number of significant bits in a key.
pub const KEY_BITS: u32 = 160;

/// A 160-bit unsigned integer on the ORCHESTRA ring.
///
/// Stored as three little-endian 64-bit limbs; the most significant limb
/// (`limbs[2]`) only ever holds 32 significant bits, so every arithmetic
/// result is masked back into the 160-bit space.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key160 {
    limbs: [u64; 3],
}

const TOP_MASK: u64 = 0xFFFF_FFFF;

impl Key160 {
    /// The additive identity (the "12 o'clock" position of the ring).
    pub const ZERO: Key160 = Key160 { limbs: [0, 0, 0] };

    /// The largest representable key, `2^160 - 1`.
    pub const MAX: Key160 = Key160 {
        limbs: [u64::MAX, u64::MAX, TOP_MASK],
    };

    /// Construct a key from raw little-endian limbs, masking to 160 bits.
    pub fn from_limbs(limbs: [u64; 3]) -> Self {
        Key160 {
            limbs: [limbs[0], limbs[1], limbs[2] & TOP_MASK],
        }
    }

    /// Raw little-endian limbs.
    pub fn limbs(&self) -> [u64; 3] {
        self.limbs
    }

    /// Construct from a 20-byte big-endian digest (e.g. a SHA-1 output).
    pub fn from_bytes(bytes: &[u8; DIGEST_LEN]) -> Self {
        // bytes[0] is the most significant byte.
        let hi = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as u64;
        let mid = u64::from_be_bytes([
            bytes[4], bytes[5], bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11],
        ]);
        let lo = u64::from_be_bytes([
            bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
        ]);
        Key160 {
            limbs: [lo, mid, hi],
        }
    }

    /// Serialize to a 20-byte big-endian digest.
    pub fn to_bytes(self) -> [u8; DIGEST_LEN] {
        let mut out = [0u8; DIGEST_LEN];
        out[0..4].copy_from_slice(&(self.limbs[2] as u32).to_be_bytes());
        out[4..12].copy_from_slice(&self.limbs[1].to_be_bytes());
        out[12..20].copy_from_slice(&self.limbs[0].to_be_bytes());
        out
    }

    /// Hash an arbitrary byte string onto the ring with SHA-1, exactly as
    /// the paper hashes node addresses, tuple keys and `(relation, epoch)`
    /// pairs.
    pub fn hash(data: &[u8]) -> Self {
        Key160::from_bytes(&sha1(data))
    }

    /// Hash a sequence of byte-string components, unambiguously.  Each
    /// component is length-prefixed so that `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn hash_parts(parts: &[&[u8]]) -> Self {
        let mut buf = Vec::new();
        for p in parts {
            buf.extend_from_slice(&(p.len() as u64).to_be_bytes());
            buf.extend_from_slice(p);
        }
        Key160::hash(&buf)
    }

    /// Construct from a `u128` (useful in tests and doc examples).
    pub fn from_u128(v: u128) -> Self {
        Key160 {
            limbs: [v as u64, (v >> 64) as u64, 0],
        }
    }

    /// Lossy view of the top 64 significant bits of the key; handy for
    /// approximate positioning and diagnostics.
    pub fn top64(&self) -> u64 {
        (self.limbs[2] << 32) | (self.limbs[1] >> 32)
    }

    /// Ring (wrapping) addition.
    pub fn wrapping_add(self, rhs: Key160) -> Key160 {
        let (l0, c0) = self.limbs[0].overflowing_add(rhs.limbs[0]);
        let (l1a, c1a) = self.limbs[1].overflowing_add(rhs.limbs[1]);
        let (l1, c1b) = l1a.overflowing_add(c0 as u64);
        let l2 = self.limbs[2]
            .wrapping_add(rhs.limbs[2])
            .wrapping_add((c1a as u64) + (c1b as u64));
        Key160 {
            limbs: [l0, l1, l2 & TOP_MASK],
        }
    }

    /// Ring (wrapping) subtraction.
    pub fn wrapping_sub(self, rhs: Key160) -> Key160 {
        let (l0, b0) = self.limbs[0].overflowing_sub(rhs.limbs[0]);
        let (l1a, b1a) = self.limbs[1].overflowing_sub(rhs.limbs[1]);
        let (l1, b1b) = l1a.overflowing_sub(b0 as u64);
        let l2 = self.limbs[2]
            .wrapping_sub(rhs.limbs[2])
            .wrapping_sub((b1a as u64) + (b1b as u64));
        Key160 {
            limbs: [l0, l1, l2 & TOP_MASK],
        }
    }

    /// Clockwise distance from `self` to `other`: how far one must travel
    /// clockwise (increasing key values, wrapping at `2^160`) to reach
    /// `other` starting at `self`.
    pub fn clockwise_distance(self, other: Key160) -> Key160 {
        other.wrapping_sub(self)
    }

    /// Halve the key (logical shift right by one bit).
    pub fn half(self) -> Key160 {
        Key160 {
            limbs: [
                (self.limbs[0] >> 1) | (self.limbs[1] << 63),
                (self.limbs[1] >> 1) | (self.limbs[2] << 63),
                (self.limbs[2] >> 1) & TOP_MASK,
            ],
        }
    }

    /// Multiply by a small unsigned factor, wrapping within the 160-bit
    /// space.  Used to lay out the `i`-th balanced range boundary as
    /// `i * width`.
    pub fn wrapping_mul_small(self, factor: u64) -> Key160 {
        let mut acc = [0u128; 3];
        for (i, limb) in self.limbs.iter().enumerate() {
            acc[i] += (*limb as u128) * (factor as u128);
        }
        // Propagate carries.
        let mut out = [0u64; 3];
        let mut carry: u128 = 0;
        for i in 0..3 {
            let v = acc[i] + carry;
            out[i] = v as u64;
            carry = v >> 64;
        }
        Key160 {
            limbs: [out[0], out[1], out[2] & TOP_MASK],
        }
    }

    /// Divide by a small unsigned divisor, returning the quotient
    /// (remainder discarded).  Panics if `divisor == 0`.
    pub fn div_small(self, divisor: u64) -> Key160 {
        assert!(divisor != 0, "division by zero in Key160::div_small");
        let d = divisor as u128;
        let mut rem: u128 = 0;
        let mut out = [0u64; 3];
        for i in (0..3).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d) as u64;
            rem = cur % d;
        }
        Key160 {
            limbs: [out[0], out[1], out[2] & TOP_MASK],
        }
    }

    /// Width of each range when the whole key space is divided into `n`
    /// equal contiguous ranges (the balanced allocation of Figure 2(b)).
    ///
    /// Computed as `floor((2^160 - 1) / n)`; for `n` not a power of two the
    /// final range absorbs the few leftover keys.
    pub fn space_divided_by(n: u64) -> Key160 {
        Key160::MAX.div_small(n)
    }

    /// Render the most significant bytes as hex, with an ellipsis — the
    /// same visual style used in the paper's examples (`0x55...`).
    pub fn short_hex(&self) -> String {
        let b = self.to_bytes();
        format!("0x{:02x}{:02x}{:02x}..", b[0], b[1], b[2])
    }
}

impl Ord for Key160 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..3).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for Key160 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Key160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key160({})", self.short_hex())
    }
}

impl fmt::Display for Key160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

/// A half-open clockwise arc `[start, end)` on the key ring.
///
/// If `start == end` the range covers the *entire* ring (this is the
/// natural representation when a single node owns everything, as in the
/// paper's single-node baseline measurements).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KeyRange {
    /// First key of the arc (inclusive).
    pub start: Key160,
    /// Key just past the end of the arc (exclusive); may be numerically
    /// smaller than `start` when the arc wraps past `2^160 - 1`.
    pub end: Key160,
}

impl KeyRange {
    /// Build a range; `start == end` means the full ring.
    pub fn new(start: Key160, end: Key160) -> Self {
        KeyRange { start, end }
    }

    /// The range covering the entire ring.
    pub fn full() -> Self {
        KeyRange {
            start: Key160::ZERO,
            end: Key160::ZERO,
        }
    }

    /// Does this range cover the whole ring?
    pub fn is_full(&self) -> bool {
        self.start == self.end
    }

    /// Does the arc contain `key`?
    pub fn contains(&self, key: Key160) -> bool {
        if self.is_full() {
            return true;
        }
        if self.start < self.end {
            key >= self.start && key < self.end
        } else {
            // Wrapping arc.
            key >= self.start || key < self.end
        }
    }

    /// Number of keys in the arc, as a `Key160` (the full ring reports
    /// `Key160::MAX`, i.e. `2^160 - 1`, which is off by one but only used
    /// for relative comparisons of range sizes).
    pub fn size(&self) -> Key160 {
        if self.is_full() {
            Key160::MAX
        } else {
            self.start.clockwise_distance(self.end)
        }
    }

    /// The midpoint of the arc — the key halfway along the clockwise walk
    /// from `start` to `end`.  The storage layer places index pages at the
    /// midpoint of the tuple-key range they describe so that they are
    /// co-located with most of the tuples they reference (Section IV).
    pub fn midpoint(&self) -> Key160 {
        self.start.wrapping_add(self.size().half())
    }

    /// Does `other` overlap this arc at all?
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        if self.is_full() || other.is_full() {
            return true;
        }
        self.contains(other.start)
            || other.contains(self.start)
            || self.contains(other.end.wrapping_sub(Key160::from_u128(1)))
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_round_trip() {
        let a = Key160::hash(b"a");
        let b = Key160::hash(b"b");
        assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        assert_eq!(a.wrapping_sub(b).wrapping_add(b), a);
    }

    #[test]
    fn max_plus_one_wraps_to_zero() {
        let one = Key160::from_u128(1);
        assert_eq!(Key160::MAX.wrapping_add(one), Key160::ZERO);
        assert_eq!(Key160::ZERO.wrapping_sub(one), Key160::MAX);
    }

    #[test]
    fn byte_round_trip() {
        let k = Key160::hash(b"round trip");
        assert_eq!(Key160::from_bytes(&k.to_bytes()), k);
    }

    #[test]
    fn ordering_matches_byte_ordering() {
        let a = Key160::from_u128(5);
        let b = Key160::from_u128(6);
        assert!(a < b);
        assert!(Key160::MAX > b);
    }

    #[test]
    fn clockwise_distance_wraps() {
        let near_end = Key160::MAX.wrapping_sub(Key160::from_u128(9));
        let near_start = Key160::from_u128(10);
        // From near the top of the ring, a short clockwise hop reaches a
        // small key.
        let d = near_end.clockwise_distance(near_start);
        assert_eq!(d, Key160::from_u128(20));
    }

    #[test]
    fn division_into_equal_ranges_tiles_the_ring() {
        let n = 7u64;
        let width = Key160::space_divided_by(n);
        let mut start = Key160::ZERO;
        let mut total = Key160::ZERO;
        for _ in 0..n {
            total = total.wrapping_add(width);
            start = start.wrapping_add(width);
        }
        // n * floor(MAX/n) must not exceed MAX and must be close to it.
        assert!(total <= Key160::MAX);
        let leftover = Key160::MAX.wrapping_sub(total);
        assert!(leftover < Key160::from_u128(u128::from(n)));
        let _ = start;
    }

    #[test]
    fn mul_then_div_small_consistent() {
        let w = Key160::space_divided_by(16);
        let x = w.wrapping_mul_small(13);
        assert_eq!(x.div_small(13), w);
    }

    #[test]
    fn range_contains_non_wrapping() {
        let r = KeyRange::new(Key160::from_u128(100), Key160::from_u128(200));
        assert!(r.contains(Key160::from_u128(100)));
        assert!(r.contains(Key160::from_u128(150)));
        assert!(!r.contains(Key160::from_u128(200)));
        assert!(!r.contains(Key160::from_u128(99)));
    }

    #[test]
    fn range_contains_wrapping() {
        let r = KeyRange::new(
            Key160::MAX.wrapping_sub(Key160::from_u128(10)),
            Key160::from_u128(10),
        );
        assert!(r.contains(Key160::MAX));
        assert!(r.contains(Key160::ZERO));
        assert!(r.contains(Key160::from_u128(9)));
        assert!(!r.contains(Key160::from_u128(10)));
        assert!(!r.contains(Key160::from_u128(1_000_000)));
    }

    #[test]
    fn full_range_contains_everything() {
        let r = KeyRange::full();
        assert!(r.is_full());
        assert!(r.contains(Key160::ZERO));
        assert!(r.contains(Key160::MAX));
        assert!(r.contains(Key160::hash(b"anything")));
    }

    #[test]
    fn midpoint_lies_inside_range() {
        let r = KeyRange::new(Key160::hash(b"s"), Key160::hash(b"e"));
        assert!(r.contains(r.midpoint()));
        let wrap = KeyRange::new(
            Key160::MAX.wrapping_sub(Key160::from_u128(100)),
            Key160::from_u128(100),
        );
        assert!(wrap.contains(wrap.midpoint()));
    }

    #[test]
    fn hash_parts_is_unambiguous() {
        let a = Key160::hash_parts(&[b"ab", b"c"]);
        let b = Key160::hash_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn short_hex_matches_leading_bytes() {
        let k = Key160::from_bytes(&[
            0xAB, 0xCD, 0xEF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(k.short_hex(), "0xabcdef..");
    }

    #[test]
    fn overlaps_detects_intersection_and_disjointness() {
        let a = KeyRange::new(Key160::from_u128(0), Key160::from_u128(100));
        let b = KeyRange::new(Key160::from_u128(50), Key160::from_u128(150));
        let c = KeyRange::new(Key160::from_u128(200), Key160::from_u128(300));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
