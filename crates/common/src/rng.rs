//! Deterministic random-generation helpers.
//!
//! Every experiment in the benchmark harness must be exactly reproducible,
//! so all randomness in the workspace flows from explicitly seeded
//! [`rand::rngs::StdRng`] instances created here.  The helpers also cover
//! the string shapes the workload generators need (STBenchmark's 25-char
//! alphanumeric fields, TPC-H-style comment text).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Create a deterministic RNG derived from a base seed and a stream label,
/// so independent generators (e.g. one per relation) never share a stream.
pub fn seeded_stream(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

const ALPHANUMERIC: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// A random alphanumeric string of exactly `len` characters.
pub fn alphanumeric(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| ALPHANUMERIC[rng.random_range(0..ALPHANUMERIC.len())] as char)
        .collect()
}

/// A random lowercase "word" of length between `min_len` and `max_len`.
pub fn word(rng: &mut StdRng, min_len: usize, max_len: usize) -> String {
    let len = rng.random_range(min_len..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
        .collect()
}

/// A random "sentence" of `words` space-separated words, used for TPC-H
/// style comment columns.
pub fn sentence(rng: &mut StdRng, words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&word(rng, 3, 9));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..16 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = seeded_stream(7, "lineitem");
        let mut b = seeded_stream(7, "orders");
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn alphanumeric_has_requested_length_and_charset() {
        let mut rng = seeded(1);
        let s = alphanumeric(&mut rng, 25);
        assert_eq!(s.len(), 25);
        assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
    }

    #[test]
    fn word_and_sentence_shapes() {
        let mut rng = seeded(2);
        let w = word(&mut rng, 3, 9);
        assert!((3..=9).contains(&w.len()));
        let s = sentence(&mut rng, 5);
        assert_eq!(s.split(' ').count(), 5);
    }
}
