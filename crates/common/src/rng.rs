//! Deterministic random-generation helpers.
//!
//! Every experiment in the benchmark harness must be exactly reproducible,
//! so all randomness in the workspace flows from explicitly seeded
//! [`StdRng`] instances created here.  The generator is a self-contained
//! xoshiro256** (seeded through SplitMix64) — no external crate, identical
//! output on every platform.  The helpers also cover the string shapes the
//! workload generators need (STBenchmark's 25-char alphanumeric fields,
//! TPC-H-style comment text).

/// A deterministic pseudo-random generator (xoshiro256**).
///
/// Not cryptographically secure — it only needs to be fast, uniform and
/// exactly reproducible across runs and platforms.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    /// Seed the generator from a 64-bit value via SplitMix64, as the
    /// xoshiro authors recommend (avoids the all-zero state and decorrelates
    /// nearby seeds).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).  Panics if `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range passed to StdRng");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform sample from `range`, which may be a half-open (`a..b`) or
    /// inclusive (`a..=b`) range over any unsigned integer type.
    pub fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform boolean with probability `p` of `true`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// An exponential sample with the given `mean` (inverse-CDF over one
    /// uniform draw) — the inter-arrival time of a Poisson process whose
    /// rate is `1 / mean`.  Panics unless `mean` is positive and finite.
    ///
    /// Exactly one `next_u64` is consumed per call, so arrival streams
    /// are byte-reproducible across runs and platforms.
    pub fn sample_exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "sample_exp needs a positive finite mean, got {mean}"
        );
        // random_f64 is in [0, 1); flip to (0, 1] so ln never sees zero.
        let u = 1.0 - self.random_f64();
        -mean * u.ln()
    }

    /// A Zipf-distributed rank in `1..=table.n()` drawn against a
    /// precomputed [`ZipfSampler`] — one uniform draw plus a binary
    /// search, so query-popularity streams stay byte-reproducible.
    pub fn sample_zipf(&mut self, table: &ZipfSampler) -> usize {
        table.sample(self)
    }
}

/// Inverse-CDF sampler for the bounded Zipf distribution: rank `k` of
/// `n` is drawn with probability proportional to `k^-s`.  The cumulative
/// weights are precomputed once (O(n)), so each sample costs one uniform
/// draw and a binary search — build it outside the sampling loop.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// `cumulative[k-1]` = Σ_{i ≤ k} i^-s; the last entry is the
    /// normalizing constant.
    cumulative: Vec<f64>,
    /// The harmonic normalizer H_{n,s} = Σ_{i ≤ n} i^-s, memoized at
    /// construction — bit-identical to `cumulative.last()`, so draws are
    /// unchanged; the per-draw bounds-checked re-read is what goes away.
    total: f64,
    exponent: f64,
}

impl ZipfSampler {
    /// A sampler over ranks `1..=n` with skew `exponent` (s = 0 is
    /// uniform; s ≥ 1 is the heavy skew web popularity follows).  Panics
    /// on `n == 0` or a non-finite/negative exponent.
    pub fn new(n: usize, exponent: f64) -> ZipfSampler {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "ZipfSampler needs a finite non-negative exponent, got {exponent}"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-exponent);
            cumulative.push(total);
        }
        ZipfSampler {
            cumulative,
            total,
            exponent,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// The skew exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `k` (1-based).
    pub fn probability(&self, k: usize) -> f64 {
        assert!((1..=self.n()).contains(&k), "rank {k} out of range");
        (k as f64).powf(-self.exponent) / self.total
    }

    /// Draw a rank in `1..=n` (one uniform draw, one binary search).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let target = rng.random_f64() * self.total;
        // First rank whose cumulative weight exceeds the target; the
        // clamp guards the rounding edge where `u * total` lands exactly
        // on the final cumulative weight.
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.n() - 1)
            + 1
    }
}

/// Ranges [`StdRng::random_range`] can sample from.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw a uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range passed to StdRng");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range passed to StdRng");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Create a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Create a deterministic RNG derived from a base seed and a stream label,
/// so independent generators (e.g. one per relation) never share a stream.
pub fn seeded_stream(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

const ALPHANUMERIC: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// A random alphanumeric string of exactly `len` characters.
pub fn alphanumeric(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| ALPHANUMERIC[rng.random_range(0..ALPHANUMERIC.len())] as char)
        .collect()
}

/// A random lowercase "word" of length between `min_len` and `max_len`.
pub fn word(rng: &mut StdRng, min_len: usize, max_len: usize) -> String {
    let len = rng.random_range(min_len..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
        .collect()
}

/// A random "sentence" of `words` space-separated words, used for TPC-H
/// style comment columns.
pub fn sentence(rng: &mut StdRng, words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&word(rng, 3, 9));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..16 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = seeded_stream(7, "lineitem");
        let mut b = seeded_stream(7, "orders");
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn alphanumeric_has_requested_length_and_charset() {
        let mut rng = seeded(1);
        let s = alphanumeric(&mut rng, 25);
        assert_eq!(s.len(), 25);
        assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
    }

    #[test]
    fn word_and_sentence_shapes() {
        let mut rng = seeded(2);
        let w = word(&mut rng, 3, 9);
        assert!((3..=9).contains(&w.len()));
        let s = sentence(&mut rng, 5);
        assert_eq!(s.split(' ').count(), 5);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = seeded(3);
        for _ in 0..1000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5..=5usize);
            assert_eq!(w, 5);
            let f = rng.random_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = seeded(4);
        // 0..=u64::MAX exercises the span == u64::MAX special case.
        let _ = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = seeded(5);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!(
                (800..1200).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    fn exponential_first_draws_are_pinned() {
        // The serving experiment's arrival streams must stay
        // byte-reproducible: these exact values are part of the contract.
        let mut rng = seeded(42);
        let draws: Vec<u64> = (0..4).map(|_| rng.sample_exp(1000.0) as u64).collect();
        assert_eq!(draws, vec![87, 476, 1139, 2586]);
    }

    #[test]
    fn exponential_mean_and_cv_are_sane() {
        let mut rng = seeded(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.sample_exp(250.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 250.0).abs() < 250.0 * 0.05, "mean {mean} far off");
        // An exponential's coefficient of variation is exactly 1.
        assert!((cv - 1.0).abs() < 0.05, "CV {cv} far from 1");
    }

    #[test]
    fn zipf_first_draws_are_pinned() {
        let table = ZipfSampler::new(5, 1.2);
        let mut rng = seeded(42);
        let draws: Vec<usize> = (0..8).map(|_| rng.sample_zipf(&table)).collect();
        assert_eq!(draws, vec![1, 1, 2, 4, 5, 3, 3, 4]);
    }

    #[test]
    fn zipf_normalizer_memo_leaves_the_sequence_unchanged() {
        // Regression for memoizing the harmonic normalizer: the memoized
        // total must be bit-identical to the last cumulative weight, so
        // every previously pinned popularity stream replays byte-exact.
        for (n, s, seed) in [(5, 1.2, 42u64), (100, 0.8, 7), (1000, 1.0, 99)] {
            let table = ZipfSampler::new(n, s);
            let direct: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
            assert_eq!(table.probability(1), 1.0 / direct, "n={n} s={s}");
            let mut rng = seeded(seed);
            let draws: Vec<usize> = (0..16).map(|_| rng.sample_zipf(&table)).collect();
            assert!(draws.iter().all(|&k| (1..=n).contains(&k)));
            // The serving sweep's exact draw prefix at its default seed.
            if (n, s, seed) == (5, 1.2, 42) {
                assert_eq!(&draws[..8], &[1, 1, 2, 4, 5, 3, 3, 4]);
            }
        }
    }

    #[test]
    fn zipf_frequencies_follow_the_power_law() {
        let table = ZipfSampler::new(10, 1.0);
        let mut rng = seeded(11);
        let mut counts = [0usize; 10];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.sample_zipf(&table) - 1] += 1;
        }
        // Frequencies must be monotone-ish and match p(k) within 10%.
        for k in 1..=10 {
            let expected = table.probability(k) * n as f64;
            let got = counts[k - 1] as f64;
            assert!(
                (got - expected).abs() < expected * 0.10 + 30.0,
                "rank {k}: got {got}, expected ≈{expected}"
            );
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9]);
        // s = 0 degenerates to uniform.
        let uniform = ZipfSampler::new(4, 0.0);
        for k in 1..=4 {
            assert!((uniform.probability(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = seeded(6);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads));
    }
}
