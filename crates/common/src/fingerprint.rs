//! Canonical query fingerprints.
//!
//! A [`QueryFingerprint`] names a *logical query* by the SHA-1 digest of
//! its canonical encoding.  The optimizer computes it from a normalized
//! `LogicalQuery` (`orchestra_optimizer::fingerprint`), so trivially
//! equivalent spellings — permuted relation slots, flipped join edges,
//! reordered conjuncts — collide on the same fingerprint.  Paired with an
//! [`crate::Epoch`], the fingerprint is the key of the engine's result
//! cache: epochs are immutable once published, so `(fingerprint, epoch)`
//! identifies an answer forever and cache invalidation reduces to the
//! epoch bump a publication already performs.
//!
//! The type lives in `orchestra-common` (not the optimizer) because the
//! engine's serving layer keys on it without depending on the optimizer.

use crate::sha1::{sha1, to_hex, DIGEST_LEN};
use std::fmt;

/// The 160-bit identity of a canonical logical query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryFingerprint(pub [u8; DIGEST_LEN]);

impl QueryFingerprint {
    /// Fingerprint of an already-canonical byte encoding.
    pub fn of_bytes(canonical: &[u8]) -> QueryFingerprint {
        QueryFingerprint(sha1(canonical))
    }

    /// The digest as lowercase hex (the form experiment output prints).
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }
}

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueryFingerprint({})", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_encodings_collide_and_different_ones_do_not() {
        let a = QueryFingerprint::of_bytes(b"select * from r");
        let b = QueryFingerprint::of_bytes(b"select * from r");
        let c = QueryFingerprint::of_bytes(b"select * from s");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_hex().len(), 40);
        assert_eq!(format!("{a}"), a.to_hex());
    }
}
