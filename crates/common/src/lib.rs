//! # orchestra-common
//!
//! Shared primitives used by every other crate in the ORCHESTRA
//! reproduction (Taylor & Ives, *Reliable Storage and Querying for
//! Collaborative Data Sharing Systems*, ICDE 2010).
//!
//! The paper's substrate works over the 160-bit output space of the SHA-1
//! cryptographic hash function (Section III-A); its storage layer
//! manipulates relational tuples identified by `(key attributes, epoch)`
//! tuple IDs (Section IV); and its recovery machinery tracks which nodes
//! have touched each tuple (Section V-D).  This crate provides the
//! corresponding building blocks:
//!
//! * [`Key160`] — a 160-bit unsigned integer with the ring arithmetic the
//!   substrate needs (wrapping add/sub, clockwise distance, midpoints, and
//!   division of the key space into equal ranges).
//! * [`sha1`] — a self-contained SHA-1 implementation (the paper hashes
//!   node addresses, tuple keys, relation/epoch pairs and page identifiers
//!   with SHA-1; we avoid an external dependency).
//! * [`Value`], [`Tuple`], [`Schema`], [`Relation`] — the relational data
//!   model, including serialized-size accounting used by the network
//!   traffic measurements.
//! * [`NodeId`], [`NodeSet`] — compact identifiers for participants and
//!   bitsets of participants (the provenance tags of Section V-D).
//! * [`ColumnarBatch`] — the columnar block format the engine moves
//!   tuples in: type-specialised column vectors, an interned-string pool
//!   ([`StringPool`]), and parallel sign/provenance tag columns, with
//!   lossless conversion to and from [`Tuple`] rows.
//! * [`QueryFingerprint`] — the SHA-1 identity of a canonical logical
//!   query, the `(fingerprint, epoch)` key of the serving layer's result
//!   cache.
//! * [`OrchestraError`] — the shared error type.
//! * [`rng`] — deterministic random-generation helpers so that every
//!   experiment in the benchmark harness is reproducible.

pub mod column;
pub mod error;
pub mod fingerprint;
pub mod key;
pub mod node;
pub mod rng;
pub mod schema;
pub mod sha1;
pub mod tuple;
pub mod value;

pub use column::{Column, ColumnData, ColumnarBatch, PoolMemo, StringPool};
pub use error::{OrchestraError, Result};
pub use fingerprint::QueryFingerprint;
pub use key::{Key160, KeyRange};
pub use node::{NodeId, NodeSet};
pub use schema::{ColumnType, Relation, Schema};
pub use tuple::{Epoch, Tuple, TupleId};
pub use value::Value;
