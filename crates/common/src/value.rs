//! Field values of relational tuples.
//!
//! The workloads the paper evaluates — STBenchmark mapping scenarios and
//! TPC-H OLAP queries — need integers, decimals, dates and (many, long)
//! strings.  [`Value`] covers those, plus `Null`, with:
//!
//! * total ordering and hashing (doubles are compared via their IEEE-754
//!   total order so values can key hash tables in joins and aggregates),
//! * serialized-size accounting, which is what the network-traffic
//!   measurements of Figures 8/9/11/12/15/16/19/20 count, and
//! * the scalar operations the `Compute-function` operator and the
//!   aggregate operator need (concatenation, arithmetic, min/max/sum).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single field value.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer (also used for dates, encoded as days since
    /// 1970-01-01, matching how TPC-H predicates compare dates).
    Int(i64),
    /// Double-precision float (TPC-H prices, discounts, aggregates).
    Double(f64),
    /// Variable-length string (STBenchmark's 25-character fields, TPC-H
    /// comments, names, flags).
    Str(String),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view (returns `None` for non-integers).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view: integers are widened to doubles.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number of bytes this value occupies in the wire format used by the
    /// engine's batched tuple shipping (a 1-byte type tag plus the payload;
    /// strings carry a 4-byte length prefix).  Network-traffic figures are
    /// sums of these sizes (before compression).
    pub fn serialized_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 1 + 8,
            Value::Double(_) => 1 + 8,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }

    /// Append the wire encoding of this value to `out`.  Used both for
    /// real data shipping in the simulator and for computing stable hash
    /// keys of composite tuple keys.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_be_bytes());
            }
            Value::Double(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_be_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Addition for numeric values (used by SUM); any NULL operand yields
    /// the other operand, matching SQL aggregate semantics of ignoring
    /// NULLs.
    pub fn add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, v) | (v, Value::Null) => v.clone(),
            (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Double(x + y),
                _ => Value::Null,
            },
        }
    }

    /// Multiplication for numeric values (used by compute-function
    /// expressions such as `extendedprice * (1 - discount)`).
    pub fn mul(&self, other: &Value) -> Value {
        match (self.as_f64(), other.as_f64()) {
            (Some(x), Some(y)) => match (self, other) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a * b),
                _ => Value::Double(x * y),
            },
            _ => Value::Null,
        }
    }

    /// Subtraction for numeric values.
    pub fn sub(&self, other: &Value) -> Value {
        match (self.as_f64(), other.as_f64()) {
            (Some(x), Some(y)) => match (self, other) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a - b),
                _ => Value::Double(x - y),
            },
            _ => Value::Null,
        }
    }

    /// String concatenation (the STBenchmark "Concatenate" scenario glues
    /// three attributes together); non-string operands are rendered with
    /// `Display`.
    pub fn concat(&self, other: &Value) -> Value {
        Value::Str(format!("{self}{other}"))
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Double(_) => 1, // numerics compare against each other
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Double(b)) => (*a as f64).total_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Double(v) => {
                // Hash the canonical integer form when the double is
                // integral so Int(2) and Double(2.0) (which compare equal)
                // also hash identically.
                if v.fract() == 0.0
                    && v.is_finite()
                    && *v >= i64::MIN as f64
                    && *v <= i64::MAX as f64
                {
                    1u8.hash(state);
                    (*v as i64).hash(state);
                } else {
                    2u8.hash(state);
                    v.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_and_equal_double_compare_and_hash_alike() {
        let a = Value::Int(42);
        let b = Value::Double(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("abc") < Value::str("abd"));
        assert!(Value::Double(1.5) < Value::Int(2));
    }

    #[test]
    fn serialized_size_counts_string_payload() {
        assert_eq!(Value::Null.serialized_size(), 1);
        assert_eq!(Value::Int(7).serialized_size(), 9);
        assert_eq!(Value::str("hello").serialized_size(), 1 + 4 + 5);
    }

    #[test]
    fn encode_is_prefix_free_per_value() {
        let mut a = Vec::new();
        Value::str("ab").encode_to(&mut a);
        let mut b = Vec::new();
        Value::str("a").encode_to(&mut b);
        Value::str("b").encode_to(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn arithmetic_and_concat() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).mul(&Value::Double(1.5)), Value::Double(3.0));
        assert_eq!(Value::Int(7).sub(&Value::Int(2)), Value::Int(5));
        assert_eq!(Value::str("a").concat(&Value::Int(1)), Value::str("a1"));
        // NULL behaves as the identity for add (SQL aggregates skip NULLs).
        assert_eq!(Value::Null.add(&Value::Int(3)), Value::Int(3));
    }

    #[test]
    fn as_views() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
    }
}
