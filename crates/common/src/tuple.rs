//! Tuples, tuple identifiers, and epochs.
//!
//! Section IV of the paper requires that "each tuple must be uniquely
//! identifiable using a tuple identifier that includes its version", that
//! the tuple's hash key be derivable from (a subset of) the attributes in
//! its ID, and that versions be tracked by a logical timestamp — the
//! *epoch* — that "advances after each batch of updates is published by a
//! peer".  This module provides:
//!
//! * [`Epoch`] — the logical publication timestamp,
//! * [`TupleId`] — `(key attribute values, epoch of last modification)`,
//!   e.g. `⟨f, 1⟩` in the paper's running example, and
//! * [`Tuple`] — a row of [`Value`]s carried through storage and the query
//!   engine, with serialized-size accounting and key/hash extraction.

use crate::key::Key160;
use crate::value::Value;
use std::fmt;

/// A logical timestamp that advances each time a participant publishes a
/// batch of updates (paper Section IV).  Epoch 0 is the first publication.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The epoch following this one.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// The epoch preceding this one, or `None` at epoch 0.
    pub fn prev(self) -> Option<Epoch> {
        self.0.checked_sub(1).map(Epoch)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The unique identifier of a tuple version: the tuple's key attribute
/// values plus the epoch in which that version was created.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Values of the partitioning-key attributes.
    pub key: Vec<Value>,
    /// Epoch in which this version of the tuple was last modified.
    pub epoch: Epoch,
}

impl TupleId {
    /// Build a tuple ID from key values and an epoch.
    pub fn new(key: Vec<Value>, epoch: Epoch) -> Self {
        TupleId { key, epoch }
    }

    /// The ring position of this tuple, derived — as the paper requires —
    /// from the key attributes only, so that every version of the same
    /// logical tuple hashes to the same place and can be found from its ID.
    pub fn hash_key(&self) -> Key160 {
        hash_values(&self.key)
    }

    /// Wire size of the ID (used when index pages list tuple IDs).
    pub fn serialized_size(&self) -> usize {
        8 + self.key.iter().map(Value::serialized_size).sum::<usize>()
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ",{}⟩", self.epoch.0)
    }
}

/// Hash a slice of values onto the key ring.  This is the hash used for
/// data partitioning, for rehash (exchange) routing, and for locating
/// tuples by key.
pub fn hash_values(values: &[Value]) -> Key160 {
    let mut buf = Vec::with_capacity(16 * values.len());
    for v in values {
        v.encode_to(&mut buf);
    }
    Key160::hash(&buf)
}

/// A relational tuple: an ordered row of values.
///
/// Tuples are deliberately plain data — provenance tags, phases and other
/// execution metadata are carried alongside tuples by the engine rather
/// than inside them, so the storage layer stores exactly the user data.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from a row of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values of the tuple.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the tuple, yielding its values (no clones — used when
    /// loading rows into a columnar batch).
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at column `i`.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The leading `key_len` values, i.e. the partitioning key.
    pub fn key(&self, key_len: usize) -> &[Value] {
        &self.values[..key_len]
    }

    /// Ring position of the tuple given its key length.
    pub fn hash_key(&self, key_len: usize) -> Key160 {
        hash_values(self.key(key_len))
    }

    /// Ring position computed over an arbitrary subset of columns; used by
    /// the rehash operator, which partitions "by hashing on some subset of
    /// the tuples' attributes".
    pub fn hash_columns(&self, columns: &[usize]) -> Key160 {
        let projected: Vec<Value> = columns.iter().map(|c| self.values[*c].clone()).collect();
        hash_values(&projected)
    }

    /// Tuple ID for this tuple at `epoch`, with the first `key_len`
    /// columns as the key.
    pub fn id(&self, key_len: usize, epoch: Epoch) -> TupleId {
        TupleId::new(self.key(key_len).to_vec(), epoch)
    }

    /// Project the tuple onto the given column indices.
    pub fn project(&self, columns: &[usize]) -> Tuple {
        Tuple::new(columns.iter().map(|c| self.values[*c].clone()).collect())
    }

    /// Concatenate two tuples (used by joins to form output rows).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Wire size of the tuple in the engine's batch format: a 2-byte
    /// column count plus each value's encoding.  This is what the
    /// network-traffic figures count.
    pub fn serialized_size(&self) -> usize {
        2 + self
            .values
            .iter()
            .map(Value::serialized_size)
            .sum::<usize>()
    }

    /// Append the wire encoding of the tuple to `out`.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.values.len() as u16).to_be_bytes());
        for v in &self.values {
            v.encode_to(out);
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn epoch_advances_and_rewinds() {
        let e = Epoch(3);
        assert_eq!(e.next(), Epoch(4));
        assert_eq!(e.prev(), Some(Epoch(2)));
        assert_eq!(Epoch(0).prev(), None);
        assert!(Epoch(1) < Epoch(2));
    }

    #[test]
    fn tuple_id_hash_depends_only_on_key() {
        let id_v1 = TupleId::new(vec![Value::str("f")], Epoch(0));
        let id_v2 = TupleId::new(vec![Value::str("f")], Epoch(1));
        // Different versions of the same logical tuple live at the same
        // ring position, as required for lookup-by-ID.
        assert_eq!(id_v1.hash_key(), id_v2.hash_key());
        assert_ne!(id_v1, id_v2);
    }

    #[test]
    fn tuple_hash_matches_id_hash() {
        let tup = t(vec![Value::str("f"), Value::str("a")]);
        let id = tup.id(1, Epoch(1));
        assert_eq!(tup.hash_key(1), id.hash_key());
    }

    #[test]
    fn projection_and_concat() {
        let a = t(vec![Value::Int(1), Value::str("x"), Value::Int(3)]);
        let b = t(vec![Value::str("y")]);
        assert_eq!(a.project(&[2, 0]).values(), &[Value::Int(3), Value::Int(1)]);
        assert_eq!(a.concat(&b).arity(), 4);
        assert_eq!(a.concat(&b).value(3), &Value::str("y"));
    }

    #[test]
    fn hash_columns_matches_projection_hash() {
        let a = t(vec![Value::Int(1), Value::str("x"), Value::Int(3)]);
        assert_eq!(a.hash_columns(&[1]), hash_values(&[Value::str("x")]));
        assert_ne!(a.hash_columns(&[0]), a.hash_columns(&[2]));
    }

    #[test]
    fn serialized_size_is_consistent_with_encoding() {
        let a = t(vec![Value::Int(1), Value::str("hello"), Value::Null]);
        let mut buf = Vec::new();
        a.encode_to(&mut buf);
        assert_eq!(buf.len(), a.serialized_size());
    }

    #[test]
    fn display_renders_values() {
        let a = t(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(format!("{a}"), "(1, x)");
        let id = TupleId::new(vec![Value::str("f")], Epoch(1));
        assert_eq!(format!("{id}"), "⟨f,1⟩");
    }
}
