//! Relation schemas.
//!
//! The storage layer partitions each relation "along a set of key
//! attributes (as with a clustered index)" and derives every tuple's hash
//! key from (a subset of) its key attributes (paper Section IV).  A
//! [`Schema`] therefore records the column names, their types, and which
//! leading columns form the partitioning key; a [`Relation`] couples a
//! name with its schema and, for small relations such as TPC-H `nation`
//! and `region`, a flag saying the relation is replicated at every node
//! rather than partitioned.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Column data types understood by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer (also used for dates as day numbers).
    Int,
    /// Double-precision float.
    Double,
    /// Variable-length string.
    Str,
}

impl ColumnType {
    /// Does `value` inhabit this type (NULL inhabits every type)?
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Double, Value::Double(_))
                | (ColumnType::Double, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

/// The schema of a relation: named, typed columns plus the number of
/// leading columns that form the partitioning key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
    key_len: usize,
}

impl Schema {
    /// Build a schema.  `key_len` leading columns form the partitioning
    /// key; it must be at least 1 and at most the number of columns.
    pub fn new(columns: Vec<(String, ColumnType)>, key_len: usize) -> Self {
        assert!(!columns.is_empty(), "schema must have at least one column");
        assert!(
            key_len >= 1 && key_len <= columns.len(),
            "key length {key_len} out of range for {} columns",
            columns.len()
        );
        Schema { columns, key_len }
    }

    /// Convenience constructor from `(name, type)` pairs with a 1-column key.
    pub fn keyed_on_first(columns: Vec<(&str, ColumnType)>) -> Self {
        Schema::new(
            columns
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
            1,
        )
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of leading key columns.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Column names in order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Type of column `i`.
    pub fn column_type(&self, i: usize) -> ColumnType {
        self.columns[i].1
    }

    /// Name of column `i`.
    pub fn column_name(&self, i: usize) -> &str {
        &self.columns[i].0
    }

    /// Index of the column called `name`, if any.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Does a row of `values` satisfy this schema (arity and types)?
    pub fn admits_row(&self, values: &[Value]) -> bool {
        values.len() == self.arity()
            && values
                .iter()
                .zip(self.columns.iter())
                .all(|(v, (_, t))| t.admits(v))
    }
}

/// A named relation together with its schema and placement policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    name: String,
    schema: Arc<Schema>,
    /// Small relations (TPC-H `nation`, `region`) are replicated at every
    /// node instead of hash-partitioned, exactly as in the paper's setup.
    replicated: bool,
}

impl Relation {
    /// A hash-partitioned relation (the default placement).
    pub fn partitioned(name: impl Into<String>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema: Arc::new(schema),
            replicated: false,
        }
    }

    /// A relation replicated in full at every node.
    pub fn replicated(name: impl Into<String>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema: Arc::new(schema),
            replicated: true,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema (cheap to clone into operators).
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Is this relation replicated at every node?
    pub fn is_replicated(&self) -> bool {
        self.replicated
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, name) in self.schema.column_names().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::keyed_on_first(vec![
            ("x", ColumnType::Int),
            ("y", ColumnType::Str),
            ("z", ColumnType::Double),
        ])
    }

    #[test]
    fn basic_accessors() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key_len(), 1);
        assert_eq!(s.column_name(1), "y");
        assert_eq!(s.column_type(2), ColumnType::Double);
        assert_eq!(s.column_index("z"), Some(2));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn row_admission_checks_arity_and_types() {
        let s = sample();
        assert!(s.admits_row(&[Value::Int(1), Value::str("a"), Value::Double(2.0)]));
        // Ints are admitted into Double columns (numeric widening).
        assert!(s.admits_row(&[Value::Int(1), Value::str("a"), Value::Int(2)]));
        assert!(s.admits_row(&[Value::Null, Value::Null, Value::Null]));
        assert!(!s.admits_row(&[Value::Int(1), Value::Int(2), Value::Double(2.0)]));
        assert!(!s.admits_row(&[Value::Int(1), Value::str("a")]));
    }

    #[test]
    #[should_panic(expected = "key length")]
    fn zero_key_len_rejected() {
        Schema::new(vec![("x".into(), ColumnType::Int)], 0);
    }

    #[test]
    fn relation_placement_flags() {
        let part = Relation::partitioned("R", sample());
        let repl = Relation::replicated("Nation", sample());
        assert!(!part.is_replicated());
        assert!(repl.is_replicated());
        assert_eq!(part.name(), "R");
        assert_eq!(format!("{part}"), "R(x, y, z)");
    }
}
