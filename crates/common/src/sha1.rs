//! A small, self-contained SHA-1 implementation.
//!
//! The paper's substrate (Section III-A) uses SHA-1 to map node addresses,
//! tuple keys, relation/epoch pairs and page identifiers into its 160-bit
//! key space.  Cryptographic strength is irrelevant here — SHA-1 is used
//! purely as a uniform hash into the ring — so a compact, dependency-free
//! implementation is sufficient.  It is validated against the FIPS 180-1
//! test vectors in the unit tests below.

/// Output size of SHA-1 in bytes (160 bits).
pub const DIGEST_LEN: usize = 20;

/// Compute the SHA-1 digest of `data`.
///
/// ```
/// use orchestra_common::sha1::sha1;
/// let d = sha1(b"abc");
/// assert_eq!(d[0], 0xa9);
/// assert_eq!(d.len(), 20);
/// ```
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut state: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Message padding: append 0x80, zeros, then the 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let (mut a, mut b, mut c, mut d, mut e) =
            (state[0], state[1], state[2], state[3], state[4]);

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }

    let mut out = [0u8; DIGEST_LEN];
    for (i, s) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
    }
    out
}

/// Hexadecimal rendering of a SHA-1 digest, handy for debugging and tests.
pub fn to_hex(digest: &[u8; DIGEST_LEN]) -> String {
    let mut s = String::with_capacity(DIGEST_LEN * 2);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 appendix A/B test vectors plus a couple of extras.
    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            to_hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            to_hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            to_hex(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn length_exactly_at_block_boundary() {
        // 64-byte input exercises the padding path that adds a whole block.
        let data = vec![0x61u8; 64];
        assert_eq!(
            to_hex(&sha1(&data)),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d"
        );
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha1(b"node-1"), sha1(b"node-2"));
    }
}
