//! Error handling shared across the workspace.
//!
//! Every fallible public operation in the ORCHESTRA reproduction returns
//! [`Result<T>`], whose error type [`OrchestraError`] enumerates the
//! failure classes the paper's system distinguishes: storage-level lookup
//! failures (missing coordinators, index pages, or tuples), substrate and
//! membership problems, query-execution failures, and plain configuration
//! or workload-generation mistakes.

use std::fmt;

/// Convenience alias used across all `orchestra-*` crates.
pub type Result<T> = std::result::Result<T, OrchestraError>;

/// The unified error type for the ORCHESTRA reproduction.
///
/// Variants are deliberately coarse-grained: the paper's prototype reacts
/// to failures at the granularity of "retry the request", "recover the
/// query" or "abort", so a small set of categories with a descriptive
/// message is sufficient and keeps error handling uniform across crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrchestraError {
    /// A relation coordinator, index page, or tuple expected to exist at
    /// some epoch could not be located anywhere in the system.
    StorageMissing(String),
    /// The storage layer was asked to do something inconsistent, e.g.
    /// publishing to an epoch that has already been sealed.
    StorageInvalid(String),
    /// Substrate-level problems: empty membership, unknown node, a range
    /// that no live node owns, or a malformed routing snapshot.
    Substrate(String),
    /// A message was addressed to a node that has failed or never existed.
    NodeUnreachable(String),
    /// Query planning failed (unknown relation/column, unsupported shape).
    Planning(String),
    /// Query execution failed in a way that recovery cannot mask, e.g. all
    /// replicas of a required range are gone.
    Execution(String),
    /// The caller supplied an invalid configuration value.
    Config(String),
    /// Workload generation was asked for something impossible.
    Workload(String),
}

impl OrchestraError {
    /// Short machine-readable category name, useful in logs and tests.
    pub fn category(&self) -> &'static str {
        match self {
            OrchestraError::StorageMissing(_) => "storage-missing",
            OrchestraError::StorageInvalid(_) => "storage-invalid",
            OrchestraError::Substrate(_) => "substrate",
            OrchestraError::NodeUnreachable(_) => "node-unreachable",
            OrchestraError::Planning(_) => "planning",
            OrchestraError::Execution(_) => "execution",
            OrchestraError::Config(_) => "config",
            OrchestraError::Workload(_) => "workload",
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            OrchestraError::StorageMissing(m)
            | OrchestraError::StorageInvalid(m)
            | OrchestraError::Substrate(m)
            | OrchestraError::NodeUnreachable(m)
            | OrchestraError::Planning(m)
            | OrchestraError::Execution(m)
            | OrchestraError::Config(m)
            | OrchestraError::Workload(m) => m,
        }
    }
}

impl fmt::Display for OrchestraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.category(), self.message())
    }
}

impl std::error::Error for OrchestraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = OrchestraError::StorageMissing("relation R at epoch 3".into());
        let s = e.to_string();
        assert!(s.contains("storage-missing"));
        assert!(s.contains("relation R at epoch 3"));
    }

    #[test]
    fn category_is_stable_per_variant() {
        assert_eq!(OrchestraError::Planning("x".into()).category(), "planning");
        assert_eq!(
            OrchestraError::NodeUnreachable("x".into()).category(),
            "node-unreachable"
        );
        assert_eq!(OrchestraError::Config("x".into()).category(), "config");
    }

    #[test]
    fn errors_are_comparable_for_tests() {
        let a = OrchestraError::Substrate("no nodes".into());
        let b = OrchestraError::Substrate("no nodes".into());
        assert_eq!(a, b);
    }

    #[test]
    fn message_round_trips() {
        let e = OrchestraError::Execution("join state lost".into());
        assert_eq!(e.message(), "join state lost");
    }
}
