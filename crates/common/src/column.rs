//! Columnar tuple batches with interned strings.
//!
//! The engine's data path moves tuples in blocks; storing a block as one
//! vector per *column* instead of one [`Tuple`] per row keeps values of
//! the same type contiguous, stores every repeated string exactly once
//! (an interned-string pool, compared by id), and computes the per-column
//! distinct-value dictionaries — which the wire-size encoder needs — in
//! one cached pass on first demand, so the many intermediate batches that
//! never reach the wire pay nothing for them.
//!
//! A [`ColumnarBatch`] holds:
//!
//! * one [`Column`] per attribute, type-specialised as `Int`/`Double`/
//!   `Str` vectors with a lossless [`Value`] fallback for mixed or
//!   NULL-bearing columns (a column is *demoted* the moment a value of a
//!   different type arrives, so `Int(2)` round-trips as `Int(2)` and
//!   never silently widens to `Double`);
//! * a [`StringPool`]: `Str` columns store `u32` ids into the pool, so a
//!   string that appears in a thousand rows is stored once and equality
//!   is an integer compare;
//! * parallel *tag columns* — sign, provenance node-set and phase — the
//!   execution metadata the engine's recovery machinery carries per row.
//!
//! Conversion to and from row form ([`ColumnarBatch::push_row`],
//! [`ColumnarBatch::tuple_at`]) is lossless: the row seams that remain
//! in the engine (operator unit tests, the report boundary, the
//! materialized-view fold) reconstruct exactly the values that went in.

use crate::key::Key160;
use crate::node::NodeSet;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// An interned-string pool: every distinct string is stored once and
/// addressed by a dense `u32` id, so two cells are equal iff their ids
/// are equal.
#[derive(Clone, Debug, Default)]
pub struct StringPool {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringPool {
    /// An empty pool.
    pub fn new() -> StringPool {
        StringPool::default()
    }

    /// Intern `s`, returning its id (existing id if already present).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(id) = self.index.get(s) {
            return *id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    /// Intern an owned string without copying it when it is new.
    pub fn intern_owned(&mut self, s: String) -> u32 {
        if let Some(id) = self.index.get(&s) {
            return *id;
        }
        let id = self.strings.len() as u32;
        self.index.insert(s.clone(), id);
        self.strings.push(s);
        id
    }

    /// The string behind `id`.
    pub fn get(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// Translation memo for copying rows between batches: maps string ids of
/// a *source* pool to ids in a *destination* pool, so appending many rows
/// from the same source batch interns each distinct string once instead
/// of hashing its bytes per row.
#[derive(Debug, Default)]
pub struct PoolMemo {
    map: Vec<Option<u32>>,
}

impl PoolMemo {
    /// A fresh memo (valid for one (source pool, destination pool) pair).
    pub fn new() -> PoolMemo {
        PoolMemo::default()
    }

    /// Translate `id` from `src` into `dst`, caching the answer.
    pub fn translate(&mut self, src: &StringPool, dst: &mut StringPool, id: u32) -> u32 {
        let i = id as usize;
        if i >= self.map.len() {
            self.map.resize(src.len().max(i + 1), None);
        }
        if let Some(mapped) = self.map[i] {
            return mapped;
        }
        let mapped = dst.intern(src.get(id));
        self.map[i] = Some(mapped);
        mapped
    }
}

/// The type-specialised cell storage of one column.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// All cells are `Value::Int`.
    Int(Vec<i64>),
    /// All cells are `Value::Double`.
    Double(Vec<f64>),
    /// All cells are `Value::Str`, stored as ids into the batch's pool.
    Str(Vec<u32>),
    /// Mixed-type or NULL-bearing column: the lossless row-value fallback.
    Values(Vec<Value>),
}

/// Per-column dictionary accounting, computed lazily: total plain bytes,
/// distinct-cell count, and the bytes of one copy of each distinct value.
/// Within a typed column the typed equality coincides with [`Value`]
/// equality (strings by id via the pool, doubles by IEEE bits —
/// `total_cmp` equality); the `Values` fallback uses `Value`'s own
/// `Hash`/`Eq`, which treats `Int(2)` and `Double(2.0)` as one distinct
/// value exactly like the row-path dictionary encoder did.
#[derive(Clone, Copy, Debug)]
struct Accounting {
    distinct: usize,
    plain_bytes: usize,
    dict_bytes: usize,
}

/// One column of a batch: typed cells plus lazily computed dictionary
/// accounting.  Most batches are intermediate — built by a scan or an
/// operator and consumed by the next operator without ever being sized
/// for the wire — so the accounting is not maintained per push; it is
/// computed on first demand (the flush boundary) and cached until the
/// column next mutates.
#[derive(Clone, Debug)]
pub struct Column {
    data: ColumnData,
    acct: RefCell<Option<Accounting>>,
}

impl Column {
    fn new() -> Column {
        // Until the first cell arrives the variant is undetermined; an
        // empty `Values` column promotes cheaply on first push.
        Column {
            data: ColumnData::Values(Vec::new()),
            acct: RefCell::new(None),
        }
    }

    fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Values(v) => v.len(),
        }
    }

    /// Drop the cached accounting after a mutation.
    fn invalidate(&mut self) {
        *self.acct.get_mut() = None;
    }

    fn push_int(&mut self, v: i64) {
        let ColumnData::Int(cells) = &mut self.data else {
            unreachable!("push_int on a non-Int column")
        };
        cells.push(v);
        self.invalidate();
    }

    fn push_double(&mut self, v: f64) {
        let ColumnData::Double(cells) = &mut self.data else {
            unreachable!("push_double on a non-Double column")
        };
        cells.push(v);
        self.invalidate();
    }

    fn push_str_id(&mut self, id: u32) {
        let ColumnData::Str(cells) = &mut self.data else {
            unreachable!("push_str_id on a non-Str column")
        };
        cells.push(id);
        self.invalidate();
    }

    fn push_value(&mut self, v: Value) {
        let ColumnData::Values(cells) = &mut self.data else {
            unreachable!("push_value on a typed column")
        };
        cells.push(v);
        self.invalidate();
    }

    /// Convert a typed column to the `Values` fallback.
    fn demote(&mut self, pool: &StringPool) {
        let values: Vec<Value> = match &self.data {
            ColumnData::Int(v) => v.iter().map(|x| Value::Int(*x)).collect(),
            ColumnData::Double(v) => v.iter().map(|x| Value::Double(*x)).collect(),
            ColumnData::Str(v) => v.iter().map(|id| Value::str(pool.get(*id))).collect(),
            ColumnData::Values(_) => return,
        };
        self.data = ColumnData::Values(values);
        self.invalidate();
    }

    /// Push a cell, demoting the column if the value's type no longer
    /// matches the storage variant.
    fn push(&mut self, v: Value, pool: &mut StringPool) {
        if self.len() == 0 {
            // First cell fixes the variant.
            match &v {
                Value::Int(_) => {
                    self.data = ColumnData::Int(Vec::new());
                }
                Value::Double(_) => {
                    self.data = ColumnData::Double(Vec::new());
                }
                Value::Str(_) => {
                    self.data = ColumnData::Str(Vec::new());
                }
                Value::Null => {}
            }
        }
        match (&self.data, v) {
            (ColumnData::Int(_), Value::Int(x)) => self.push_int(x),
            (ColumnData::Double(_), Value::Double(x)) => self.push_double(x),
            (ColumnData::Str(_), Value::Str(s)) => {
                let id = pool.intern_owned(s);
                self.push_str_id(id);
            }
            (ColumnData::Values(_), v) => self.push_value(v),
            (_, v) => {
                self.demote(pool);
                self.push_value(v);
            }
        }
    }

    /// Materialize the cell at `row` as a [`Value`].
    fn value_at(&self, row: usize, pool: &StringPool) -> Value {
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Double(v) => Value::Double(v[row]),
            ColumnData::Str(v) => Value::str(pool.get(v[row])),
            ColumnData::Values(v) => v[row].clone(),
        }
    }

    /// Serialized size of the cell at `row`.
    fn cell_size(&self, row: usize, pool: &StringPool) -> usize {
        match &self.data {
            ColumnData::Int(_) | ColumnData::Double(_) => 9,
            ColumnData::Str(v) => 5 + pool.get(v[row]).len(),
            ColumnData::Values(v) => v[row].serialized_size(),
        }
    }

    /// Append the wire encoding of the cell at `row` (byte-identical to
    /// [`Value::encode_to`]).
    fn encode_cell(&self, row: usize, pool: &StringPool, out: &mut Vec<u8>) {
        match &self.data {
            ColumnData::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v[row].to_be_bytes());
            }
            ColumnData::Double(v) => {
                out.push(2);
                out.extend_from_slice(&v[row].to_be_bytes());
            }
            ColumnData::Str(v) => {
                let s = pool.get(v[row]);
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ColumnData::Values(v) => v[row].encode_to(out),
        }
    }

    fn retain(&mut self, mask: &[bool]) {
        let mut i = 0;
        match &mut self.data {
            ColumnData::Int(v) => v.retain(|_| {
                let keep = mask[i];
                i += 1;
                keep
            }),
            ColumnData::Double(v) => v.retain(|_| {
                let keep = mask[i];
                i += 1;
                keep
            }),
            ColumnData::Str(v) => v.retain(|_| {
                let keep = mask[i];
                i += 1;
                keep
            }),
            ColumnData::Values(v) => v.retain(|_| {
                let keep = mask[i];
                i += 1;
                keep
            }),
        }
        self.invalidate();
    }

    /// The cached accounting, computing it on first demand after a
    /// mutation: one pass over the cells, one hash insert per cell.
    fn acct(&self, pool: &StringPool) -> Accounting {
        if let Some(a) = *self.acct.borrow() {
            return a;
        }
        let mut plain_bytes = 0;
        let mut dict_bytes = 0;
        let distinct = match &self.data {
            ColumnData::Int(cells) => {
                let mut seen = HashSet::with_capacity(cells.len());
                for v in cells {
                    plain_bytes += 9;
                    if seen.insert(*v) {
                        dict_bytes += 9;
                    }
                }
                seen.len()
            }
            ColumnData::Double(cells) => {
                let mut seen = HashSet::with_capacity(cells.len());
                for v in cells {
                    plain_bytes += 9;
                    if seen.insert(v.to_bits()) {
                        dict_bytes += 9;
                    }
                }
                seen.len()
            }
            ColumnData::Str(cells) => {
                let mut seen = HashSet::with_capacity(cells.len());
                for id in cells {
                    let size = 5 + pool.get(*id).len();
                    plain_bytes += size;
                    if seen.insert(*id) {
                        dict_bytes += size;
                    }
                }
                seen.len()
            }
            ColumnData::Values(cells) => {
                let mut seen = HashSet::with_capacity(cells.len());
                for v in cells {
                    let size = v.serialized_size();
                    plain_bytes += size;
                    if seen.insert(v.clone()) {
                        dict_bytes += size;
                    }
                }
                seen.len()
            }
        };
        let a = Accounting {
            distinct,
            plain_bytes,
            dict_bytes,
        };
        *self.acct.borrow_mut() = Some(a);
        a
    }

    /// Build a column from a run of cells, interning strings into `pool`.
    pub fn from_values(cells: Vec<Value>, pool: &mut StringPool) -> Column {
        let mut col = Column::new();
        for v in cells {
            col.push(v, pool);
        }
        col
    }

    /// The typed cell storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Total serialized bytes of all cells (the plain encoding).
    pub fn plain_bytes(&self, pool: &StringPool) -> usize {
        self.acct(pool).plain_bytes
    }

    /// Serialized bytes of one copy of each distinct cell (the
    /// dictionary).
    pub fn dict_bytes(&self, pool: &StringPool) -> usize {
        self.acct(pool).dict_bytes
    }

    /// Number of distinct cells.
    pub fn distinct_count(&self, pool: &StringPool) -> usize {
        self.acct(pool).distinct
    }
}

/// A block of tuples stored column-wise, with interned strings and
/// parallel sign / provenance / phase tag columns.  See the module docs
/// for the layout.
#[derive(Clone, Debug)]
pub struct ColumnarBatch {
    columns: Vec<Column>,
    pool: StringPool,
    signs: Vec<i8>,
    provenance: Vec<NodeSet>,
    phases: Vec<u32>,
}

impl ColumnarBatch {
    /// An empty batch of `arity` columns.
    pub fn new(arity: usize) -> ColumnarBatch {
        ColumnarBatch {
            columns: (0..arity).map(|_| Column::new()).collect(),
            pool: StringPool::new(),
            signs: Vec::new(),
            provenance: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Build a batch from plain tuples sharing one tag (the scan-emission
    /// seam: freshly scanned rows all carry the scanning node's tag).
    /// Rows shorter than `arity` are padded with NULLs.
    pub fn from_tuples<I>(
        arity: usize,
        tuples: I,
        sign: i8,
        provenance: NodeSet,
        phase: u32,
    ) -> Self
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut batch = ColumnarBatch::new(arity);
        for t in tuples {
            let mut values = t.into_values();
            values.resize(arity, Value::Null);
            batch.push_row_owned(values, sign, provenance, phase);
        }
        batch
    }

    /// Assemble a batch from prebuilt columns whose string cells are ids
    /// into `pool`, plus parallel tag vectors.  This is how vectorized
    /// operators that mix passthrough and computed columns (e.g.
    /// compute-function) build their output: passthrough columns are
    /// cloned wholesale — cells, dictionary accounting and all — against a
    /// clone of the input pool, and only freshly computed columns pay
    /// per-cell construction ([`Column::from_values`]).
    pub fn from_parts(
        pool: StringPool,
        columns: Vec<Column>,
        signs: Vec<i8>,
        provenance: Vec<NodeSet>,
        phases: Vec<u32>,
    ) -> ColumnarBatch {
        let rows = signs.len();
        assert_eq!(provenance.len(), rows, "tag column length mismatch");
        assert_eq!(phases.len(), rows, "tag column length mismatch");
        for col in &columns {
            assert_eq!(col.len(), rows, "column length mismatch");
        }
        ColumnarBatch {
            columns,
            pool,
            signs,
            provenance,
            phases,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Widen the batch to `arity` columns, filling any new column with
    /// one NULL per existing row (how ragged rows are represented
    /// column-wise: a missing cell *is* a NULL and costs its real
    /// 1-byte serialized size).
    pub fn pad_to_arity(&mut self, arity: usize) {
        while self.columns.len() < arity {
            let mut col = Column::new();
            for _ in 0..self.len() {
                col.push_value(Value::Null);
            }
            self.columns.push(col);
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// Append one row, cloning the cells.  Panics if `values` does not
    /// match the batch arity — ragged rows cannot exist column-wise; pad
    /// them (e.g. with [`Value::Null`]) before pushing.
    pub fn push_row(&mut self, values: &[Value], sign: i8, provenance: NodeSet, phase: u32) {
        assert_eq!(values.len(), self.arity(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v.clone(), &mut self.pool);
        }
        self.push_tag_row(sign, provenance, phase);
    }

    /// Append one row, consuming the cells (no string copies for new
    /// strings).
    pub fn push_row_owned(
        &mut self,
        values: Vec<Value>,
        sign: i8,
        provenance: NodeSet,
        phase: u32,
    ) {
        assert_eq!(values.len(), self.arity(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v, &mut self.pool);
        }
        self.push_tag_row(sign, provenance, phase);
    }

    /// Append one tag row only.  Use together with
    /// [`Self::append_cells_from`] when assembling a row from other
    /// batches (e.g. a join result); every column must end up with
    /// exactly one new cell per tag row.
    pub fn push_tag_row(&mut self, sign: i8, provenance: NodeSet, phase: u32) {
        self.signs.push(sign);
        self.provenance.push(provenance);
        self.phases.push(phase);
    }

    /// Append the cells of `other`'s row into this batch's columns
    /// starting at `dst_offset`, translating string ids through `memo`.
    /// Tags are *not* appended — combine with [`Self::push_tag_row`].
    pub fn append_cells_from(
        &mut self,
        other: &ColumnarBatch,
        row: usize,
        dst_offset: usize,
        memo: &mut PoolMemo,
    ) {
        for (i, src) in other.columns.iter().enumerate() {
            let dst = &mut self.columns[dst_offset + i];
            match (&dst.data, &src.data) {
                (ColumnData::Int(_), ColumnData::Int(v)) => dst.push_int(v[row]),
                (ColumnData::Double(_), ColumnData::Double(v)) => dst.push_double(v[row]),
                (ColumnData::Str(_), ColumnData::Str(v)) => {
                    let id = memo.translate(&other.pool, &mut self.pool, v[row]);
                    dst.push_str_id(id);
                }
                _ => {
                    let v = src.value_at(row, &other.pool);
                    dst.push(v, &mut self.pool);
                }
            }
        }
    }

    /// Append one whole row (cells + tags) of `other`.
    pub fn append_row_from(&mut self, other: &ColumnarBatch, row: usize, memo: &mut PoolMemo) {
        self.append_cells_from(other, row, 0, memo);
        self.push_tag_row(other.signs[row], other.provenance[row], other.phases[row]);
    }

    /// Append one whole row of `other` without a [`PoolMemo`]: strings
    /// re-intern by content (no allocation when already pooled).  Use when
    /// the destination batch can be replaced between calls, invalidating
    /// any memo.  If `other` is narrower, the trailing columns get NULLs.
    pub fn append_row_interned(&mut self, other: &ColumnarBatch, row: usize) {
        assert!(other.arity() <= self.arity(), "row wider than batch");
        enum Cell {
            Int(i64),
            Double(f64),
            StrId(u32),
            Slow,
            Pad,
        }
        for i in 0..self.arity() {
            let cell = if i >= other.arity() {
                Cell::Pad
            } else {
                match (&self.columns[i].data, &other.columns[i].data) {
                    (ColumnData::Int(_), ColumnData::Int(v)) => Cell::Int(v[row]),
                    (ColumnData::Double(_), ColumnData::Double(v)) => Cell::Double(v[row]),
                    (ColumnData::Str(_), ColumnData::Str(v)) => Cell::StrId(v[row]),
                    _ => Cell::Slow,
                }
            };
            match cell {
                Cell::Int(x) => self.columns[i].push_int(x),
                Cell::Double(x) => self.columns[i].push_double(x),
                Cell::StrId(src_id) => {
                    let id = self.pool.intern(other.pool.get(src_id));
                    self.columns[i].push_str_id(id);
                }
                Cell::Slow => {
                    let v = other.columns[i].value_at(row, &other.pool);
                    self.columns[i].push(v, &mut self.pool);
                }
                Cell::Pad => self.columns[i].push(Value::Null, &mut self.pool),
            }
        }
        self.push_tag_row(other.signs[row], other.provenance[row], other.phases[row]);
    }

    /// Project onto the given column indices (tags carried through
    /// unchanged).  The string pool is cloned whole, so ids stay valid.
    pub fn project(&self, columns: &[usize]) -> ColumnarBatch {
        ColumnarBatch {
            columns: columns.iter().map(|c| self.columns[*c].clone()).collect(),
            pool: self.pool.clone(),
            signs: self.signs.clone(),
            provenance: self.provenance.clone(),
            phases: self.phases.clone(),
        }
    }

    /// Materialize the cell at (`row`, `col`).
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row, &self.pool)
    }

    /// Materialize the row at `row` as a [`Tuple`].
    pub fn tuple_at(&self, row: usize) -> Tuple {
        Tuple::new((0..self.arity()).map(|c| self.value_at(row, c)).collect())
    }

    /// The sign of `row` (`+1` assertion, `-1` retraction).
    pub fn sign_at(&self, row: usize) -> i8 {
        self.signs[row]
    }

    /// The provenance tag of `row`.
    pub fn provenance_at(&self, row: usize) -> NodeSet {
        self.provenance[row]
    }

    /// The phase tag of `row`.
    pub fn phase_at(&self, row: usize) -> u32 {
        self.phases[row]
    }

    /// The whole provenance column.
    pub fn provenance_column(&self) -> &[NodeSet] {
        &self.provenance
    }

    /// The whole sign column.
    pub fn sign_column(&self) -> &[i8] {
        &self.signs
    }

    /// The whole phase column.
    pub fn phase_column(&self) -> &[u32] {
        &self.phases
    }

    /// Overwrite every row's tags (scan emission: all rows of a freshly
    /// scanned partition carry the scanning node's singleton provenance
    /// and the current phase).
    pub fn fill_tags(&mut self, sign: i8, provenance: NodeSet, phase: u32) {
        self.signs.iter_mut().for_each(|s| *s = sign);
        self.provenance.iter_mut().for_each(|p| *p = provenance);
        self.phases.iter_mut().for_each(|p| *p = phase);
    }

    /// The column at `col`.
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// The batch's interned-string pool.
    pub fn pool(&self) -> &StringPool {
        &self.pool
    }

    /// Serialized size of the cell at (`row`, `col`).
    pub fn cell_size(&self, row: usize, col: usize) -> usize {
        self.columns[col].cell_size(row, &self.pool)
    }

    /// Append the wire encoding of the cell at (`row`, `col`)
    /// (byte-identical to [`Value::encode_to`]).
    pub fn encode_cell(&self, row: usize, col: usize, out: &mut Vec<u8>) {
        self.columns[col].encode_cell(row, &self.pool, out)
    }

    /// The dictionary-encoded wire size of one column: one copy of each
    /// distinct value plus a 2-byte code per row, never worse than the
    /// plain encoding.  Identical to the row path's per-flush dictionary
    /// scan, but read off the incrementally maintained column state.
    pub fn encoded_column_size(&self, col: usize) -> usize {
        let c = &self.columns[col];
        (c.dict_bytes(&self.pool) + 2 * self.len()).min(c.plain_bytes(&self.pool))
    }

    /// Sum of all columns' plain cell bytes.
    pub fn plain_cell_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.plain_bytes(&self.pool)).sum()
    }

    /// Keep only the rows whose mask entry is `true`, preserving order.
    /// The string pool is untouched (ids stay valid).
    pub fn retain(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        if mask.iter().all(|&k| k) {
            return;
        }
        for col in &mut self.columns {
            col.retain(mask);
        }
        let mut i = 0;
        self.signs.retain(|_| {
            let keep = mask[i];
            i += 1;
            keep
        });
        let mut i = 0;
        self.provenance.retain(|_| {
            let keep = mask[i];
            i += 1;
            keep
        });
        let mut i = 0;
        self.phases.retain(|_| {
            let keep = mask[i];
            i += 1;
            keep
        });
    }

    /// Hash the projected cells of `row` exactly like
    /// [`Tuple::hash_columns`]: encode each projected value in order and
    /// hash the bytes.  `scratch` is a reusable buffer.
    pub fn hash_columns_at(&self, row: usize, cols: &[usize], scratch: &mut Vec<u8>) -> Key160 {
        scratch.clear();
        for &c in cols {
            self.encode_cell(row, c, scratch);
        }
        Key160::hash(scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn tags() -> (i8, NodeSet, u32) {
        (1, NodeSet::singleton(NodeId(3)), 0)
    }

    #[test]
    fn round_trip_is_lossless_per_type() {
        let rows = vec![
            vec![Value::Int(1), Value::Double(1.5), Value::str("a")],
            vec![Value::Int(2), Value::Double(2.5), Value::str("b")],
            vec![Value::Int(1), Value::Double(1.5), Value::str("a")],
        ];
        let mut b = ColumnarBatch::new(3);
        let (sign, prov, phase) = tags();
        for r in &rows {
            b.push_row(r, sign, prov, phase);
        }
        assert_eq!(b.len(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(b.tuple_at(i), Tuple::new(r.clone()));
            assert_eq!(b.sign_at(i), 1);
            assert_eq!(b.provenance_at(i), prov);
        }
        // Typed columns, repeated strings interned once.
        assert!(matches!(b.column(0).data(), ColumnData::Int(_)));
        assert!(matches!(b.column(2).data(), ColumnData::Str(_)));
        assert_eq!(b.pool().len(), 2);
    }

    #[test]
    fn mixed_and_null_columns_demote_losslessly() {
        let rows = vec![
            vec![Value::Int(2)],
            vec![Value::Double(2.0)],
            vec![Value::Null],
            vec![Value::str("x")],
        ];
        let mut b = ColumnarBatch::new(1);
        let (sign, prov, phase) = tags();
        for r in &rows {
            b.push_row(r, sign, prov, phase);
        }
        assert!(matches!(b.column(0).data(), ColumnData::Values(_)));
        // Int(2) must come back as Int(2), not Double(2.0).
        assert!(matches!(b.value_at(0, 0), Value::Int(2)));
        assert!(matches!(b.value_at(1, 0), Value::Double(_)));
        assert!(b.value_at(2, 0).is_null());
        // Distinctness under Value equality: Int(2) == Double(2.0).
        assert_eq!(b.column(0).distinct_count(b.pool()), 3);
    }

    #[test]
    fn dictionary_accounting_matches_a_row_scan() {
        // Oracle: the row path's dictionary size — one copy of each
        // distinct value (Value equality) plus the plain total.
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i % 3),
                    Value::str(if i % 2 == 0 { "even" } else { "odd" }),
                    Value::str(format!("unique-{i}")),
                ]
            })
            .collect();
        let mut b = ColumnarBatch::new(3);
        let (sign, prov, phase) = tags();
        for r in &rows {
            b.push_row(r, sign, prov, phase);
        }
        for col in 0..3 {
            let mut seen: HashSet<Value> = HashSet::new();
            let mut dict = 0;
            let mut plain = 0;
            for r in &rows {
                let v = &r[col];
                plain += v.serialized_size();
                if seen.insert(v.clone()) {
                    dict += v.serialized_size();
                }
            }
            assert_eq!(b.column(col).plain_bytes(b.pool()), plain, "col {col}");
            assert_eq!(b.column(col).dict_bytes(b.pool()), dict, "col {col}");
            assert_eq!(
                b.column(col).distinct_count(b.pool()),
                seen.len(),
                "col {col}"
            );
            assert_eq!(
                b.encoded_column_size(col),
                (dict + 2 * rows.len()).min(plain),
                "col {col}"
            );
        }
    }

    #[test]
    fn retain_preserves_order_and_reaccounts() {
        let mut b = ColumnarBatch::new(2);
        let (_, prov, phase) = tags();
        for i in 0..6i64 {
            b.push_row(
                &[Value::Int(i), Value::str(if i < 3 { "lo" } else { "hi" })],
                if i % 2 == 0 { 1 } else { -1 },
                prov,
                phase,
            );
        }
        let mask = [true, false, true, false, true, false];
        b.retain(&mask);
        assert_eq!(b.len(), 3);
        assert_eq!(
            (0..3).map(|r| b.value_at(r, 0)).collect::<Vec<_>>(),
            vec![Value::Int(0), Value::Int(2), Value::Int(4)]
        );
        assert!(b.sign_column().iter().all(|s| *s == 1));
        // Accounting reflects the surviving cells only.
        assert_eq!(b.column(0).plain_bytes(b.pool()), 3 * 9);
        assert_eq!(b.column(0).distinct_count(b.pool()), 3);
        assert_eq!(b.column(1).distinct_count(b.pool()), 2);
    }

    #[test]
    fn append_between_batches_translates_string_ids() {
        let (sign, prov, phase) = tags();
        let mut src = ColumnarBatch::new(2);
        src.push_row(&[Value::str("shared"), Value::Int(1)], sign, prov, phase);
        src.push_row(&[Value::str("only-src"), Value::Int(2)], sign, prov, phase);
        let mut dst = ColumnarBatch::new(2);
        dst.push_row(&[Value::str("shared"), Value::Int(0)], sign, prov, phase);
        let mut memo = PoolMemo::new();
        dst.append_row_from(&src, 0, &mut memo);
        dst.append_row_from(&src, 1, &mut memo);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.value_at(1, 0), Value::str("shared"));
        assert_eq!(dst.value_at(2, 0), Value::str("only-src"));
        // "shared" interned once in the destination pool.
        assert_eq!(dst.pool().len(), 2);
    }

    #[test]
    fn hash_columns_matches_tuple_hashing() {
        let (sign, prov, phase) = tags();
        let rows = vec![
            vec![Value::Int(7), Value::str("k"), Value::Double(1.25)],
            vec![Value::Null, Value::str("m"), Value::Int(-3)],
        ];
        let mut b = ColumnarBatch::new(3);
        for r in &rows {
            b.push_row(r, sign, prov, phase);
        }
        let mut scratch = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            let t = Tuple::new(r.clone());
            for cols in [&[0usize][..], &[1, 2][..], &[2, 0, 1][..]] {
                assert_eq!(
                    b.hash_columns_at(i, cols, &mut scratch),
                    t.hash_columns(cols),
                    "row {i} cols {cols:?}"
                );
            }
        }
    }

    #[test]
    fn fill_tags_overwrites_every_row() {
        let mut b = ColumnarBatch::new(1);
        let (sign, prov, phase) = tags();
        b.push_row(&[Value::Int(1)], sign, prov, phase);
        b.push_row(&[Value::Int(2)], sign, prov, phase);
        let new_prov = NodeSet::singleton(NodeId(9));
        b.fill_tags(-1, new_prov, 4);
        assert!(b.sign_column().iter().all(|s| *s == -1));
        assert!(b.provenance_column().iter().all(|p| *p == new_prov));
        assert!(b.phase_column().iter().all(|p| *p == 4));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn ragged_rows_are_rejected() {
        let mut b = ColumnarBatch::new(2);
        let (sign, prov, phase) = tags();
        b.push_row(&[Value::Int(1)], sign, prov, phase);
    }
}
