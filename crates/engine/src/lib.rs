//! # orchestra-engine
//!
//! The reliable distributed query execution engine of Section V of the
//! paper, running over the versioned storage layer (`orchestra-storage`),
//! the hashing substrate (`orchestra-substrate`) and the simulated cluster
//! (`orchestra-simnet`).
//!
//! ## Execution model
//!
//! Queries are physical operator trees ([`plan::PhysicalPlan`]) built from
//! the operators of Table I: distributed and covering-index scans, select,
//! project, compute-function, pipelined (symmetric) hash join, hash
//! aggregation with re-aggregation, rehash and ship.  Execution is
//! push-based: every participant runs an instance of every operator below
//! the `Ship` boundary; leaf scans read that node's partition of the
//! versioned store and push tuples through the local pipeline; `Rehash`
//! repartitions tuples by hashing a column subset and consulting the
//! routing snapshot; `Ship` forwards results to the query initiator, which
//! runs the operators above the boundary (final aggregation, output
//! collection).  Tuples are batched per destination and
//! dictionary-compressed before crossing the (simulated) wire
//! ([`batch`]).
//!
//! Between operators the data path is columnar: batches travel as typed
//! column vectors with interned strings and parallel sign / provenance /
//! phase tag columns, and the operators are vectorized over that layout.
//! [`exec::EngineConfig::legacy_row_path`] switches a run back to the
//! row-at-a-time path (every batch materialized into tagged row objects
//! and re-packed afterwards) — the two paths produce bit-identical
//! simulated figures and differ only in host CPU cost, which
//! [`exec::QueryReport::wall_clock`] exposes per operator class.
//!
//! ## Reliability
//!
//! Every in-flight tuple carries a provenance tag — the set of nodes that
//! processed it or any tuple used to derive it — and a phase number
//! ([`provenance`]).  On node failure the executor supports both
//! strategies of Section V-D ([`exec::RecoveryStrategy`]):
//!
//! * **Restart** — discard all state, reassign the failed node's ranges to
//!   its replica holders, and re-run the query on the survivors.
//! * **Incremental** — purge exactly the tainted state (tuples and
//!   aggregate sub-groups whose provenance intersects the failed set),
//!   bump the phase, re-run leaf scans over the inherited ranges only, and
//!   re-transmit from the rehash/ship output caches the tuples that had
//!   been sent to the failed node — guaranteeing a correct, complete and
//!   duplicate-free answer without redoing unaffected work.
//!
//! The executor returns both the answer set and an execution report
//! ([`exec::QueryReport`]) with simulated running time and exact traffic
//! counts — the quantities plotted in the paper's figures.
//!
//! ## Layout
//!
//! The executor is a layered module tree under [`exec`]: `exec/mod.rs`
//! holds the public driver ([`exec::QueryExecutor`] and its
//! configuration), `exec/pipeline.rs` the per-node operator pipelines and
//! the push loop, `exec/scan.rs` the leaf scans over the versioned store,
//! `exec/exchange.rs` the rehash/ship batching and recovery output
//! caches, `exec/recovery.rs` the two Section V-D strategies, and
//! `exec/report.rs` the report assembly.  The building blocks the layers
//! share live beside them: [`plan`], [`expr`], [`ops`], [`batch`] and
//! [`provenance`].

pub mod batch;
pub mod exec;
pub mod expr;
pub mod ops;
pub mod plan;
pub mod provenance;

pub use exec::{
    refresh_view, AdmissionPolicy, CacheStats, CachedAnswer, EngineConfig, EntryStats,
    EvictionPolicy, FailureSpec, FoldMode, MaintenanceLeg, MaintenanceMode, MaintenancePlan,
    MaintenanceRun, MaterializedView, QueryExecutor, QueryReport, QuerySession, RecoveryStrategy,
    RegistryRefresh, ResultCache, ScanOverrides, SchedulerConfig, SessionId, SessionReport,
    SessionScheduler, ShedEvent, ViewDiff, ViewRegistry, WallClock, WorkloadReport,
};
pub use expr::{AggFunc, CmpOp, Predicate, ScalarExpr};
pub use ops::{ExtremumKind, ExtremumSketch, EXTREMUM_SKETCH_K};
pub use plan::{AggMode, OpId, Operator, OperatorKind, PhysicalPlan, PlanBuilder};
pub use provenance::{Phase, TaggedTuple};
