//! Runtime state of the stateful operators.
//!
//! The executor (`exec`) owns one instance of every plan operator per
//! participating node; this module holds the state those instances carry
//! between messages:
//!
//! * [`JoinState`] — the two hash tables of the pipelined *symmetric* hash
//!   join (the paper's "pipelined hash join"), whose entries are tagged
//!   tuples so tainted build rows can be purged on failure.
//! * [`AggState`] — the grouping operator's state, organised as
//!   *sub-groups* keyed by `(group key, provenance set, phase)` exactly as
//!   Section V-D prescribes, so that on failure the sub-groups derived
//!   from a failed node can be dropped without touching the rest, and so
//!   that re-emission after recovery never double-counts.
//! * [`RehashState`] — per-destination output buffers plus the output
//!   cache used by recovery stage 4 ("re-create data that was sent to the
//!   failed nodes' hash key space ranges").

use crate::expr::AggFunc;
use crate::provenance::{Phase, TaggedTuple};
use orchestra_common::{NodeId, NodeSet, Tuple, Value};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Symmetric hash join
// ---------------------------------------------------------------------------

/// State of one pipelined (symmetric) hash join instance.
#[derive(Clone, Debug, Default)]
pub struct JoinState {
    left: HashMap<Vec<Value>, Vec<TaggedTuple>>,
    right: HashMap<Vec<Value>, Vec<TaggedTuple>>,
}

impl JoinState {
    /// Fresh, empty join state.
    pub fn new() -> JoinState {
        JoinState::default()
    }

    /// Number of buffered rows on both sides.
    pub fn len(&self) -> usize {
        self.left.values().map(Vec::len).sum::<usize>()
            + self.right.values().map(Vec::len).sum::<usize>()
    }

    /// Is the state empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Process one input row arriving on `input` (0 = left, 1 = right):
    /// insert it into its side's table, probe the other side, and return
    /// the join results (left columns then right columns), tagged with the
    /// union of the parents' provenance plus `node`.
    pub fn process(
        &mut self,
        input: usize,
        row: TaggedTuple,
        left_keys: &[usize],
        right_keys: &[usize],
        node: NodeId,
    ) -> Vec<TaggedTuple> {
        let mut out = Vec::new();
        if input == 0 {
            let key: Vec<Value> = left_keys
                .iter()
                .map(|c| row.tuple.value(*c).clone())
                .collect();
            if let Some(matches) = self.right.get(&key) {
                for other in matches {
                    let joined = row.tuple.concat(&other.tuple);
                    out.push(TaggedTuple::derived(joined, &row, other, node));
                }
            }
            self.left.entry(key).or_default().push(row);
        } else {
            let key: Vec<Value> = right_keys
                .iter()
                .map(|c| row.tuple.value(*c).clone())
                .collect();
            if let Some(matches) = self.left.get(&key) {
                for other in matches {
                    let joined = other.tuple.concat(&row.tuple);
                    out.push(TaggedTuple::derived(joined, other, &row, node));
                }
            }
            self.right.entry(key).or_default().push(row);
        }
        out
    }

    /// Drop every buffered row whose provenance intersects `failed`;
    /// returns how many rows were dropped.
    pub fn purge_tainted(&mut self, failed: &NodeSet) -> usize {
        let mut dropped = 0;
        for table in [&mut self.left, &mut self.right] {
            for rows in table.values_mut() {
                let before = rows.len();
                rows.retain(|r| !r.is_tainted(failed));
                dropped += before - rows.len();
            }
            table.retain(|_, v| !v.is_empty());
        }
        dropped
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Running state of one aggregate function for one sub-group.
#[derive(Clone, Debug)]
pub enum Accumulator {
    /// COUNT(*) — number of input rows.
    Count(i64),
    /// SUM(col).
    Sum(Value),
    /// MIN(col).
    Min(Option<Value>),
    /// MAX(col).
    Max(Option<Value>),
    /// AVG(col) carried as (sum, count).
    Avg(Value, i64),
}

impl Accumulator {
    /// A fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Accumulator {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::Sum(Value::Null),
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Avg => Accumulator::Avg(Value::Null, 0),
        }
    }

    /// Fold one raw input value into the accumulator.
    pub fn update(&mut self, value: &Value) {
        self.update_signed(value, 1);
    }

    /// Is this accumulator *subtractable* — can a retraction be folded by
    /// inverting the contribution of the original insertion?  COUNT, SUM
    /// and AVG are; MIN and MAX are not (removing the current extremum
    /// would require the discarded runners-up).
    pub fn is_subtractable(&self) -> bool {
        !matches!(self, Accumulator::Min(_) | Accumulator::Max(_))
    }

    /// Fold one raw input value with a delta sign: `+1` accumulates as
    /// [`Self::update`], `-1` inverts the contribution.  Retractions into
    /// MIN/MAX are a planning error (maintenance plans refuse
    /// non-subtractable aggregates) and panic.
    pub fn update_signed(&mut self, value: &Value, sign: i64) {
        match self {
            Accumulator::Count(c) => *c += sign,
            Accumulator::Sum(s) => {
                if !value.is_null() {
                    *s = s.add(&signed_value(value, sign));
                }
            }
            Accumulator::Min(m) => {
                assert!(sign > 0, "MIN cannot fold a retraction");
                if m.as_ref().map(|cur| value < cur).unwrap_or(true) && !value.is_null() {
                    *m = Some(value.clone());
                }
            }
            Accumulator::Max(m) => {
                assert!(sign > 0, "MAX cannot fold a retraction");
                if m.as_ref().map(|cur| value > cur).unwrap_or(true) && !value.is_null() {
                    *m = Some(value.clone());
                }
            }
            Accumulator::Avg(s, c) => {
                if !value.is_null() {
                    *s = s.add(&signed_value(value, sign));
                    *c += sign;
                }
            }
        }
    }

    /// Merge a *partial state* (as produced by [`Self::partial_values`]) —
    /// the re-aggregation path of a `Final` aggregate.
    pub fn merge_partial(&mut self, state: &[Value]) {
        self.merge_partial_signed(state, 1);
    }

    /// Merge a partial state with a delta sign: `-1` removes the state's
    /// whole contribution (the retraction path of view maintenance).
    pub fn merge_partial_signed(&mut self, state: &[Value], sign: i64) {
        match self {
            Accumulator::Count(c) => *c += sign * state[0].as_int().unwrap_or(0),
            Accumulator::Sum(s) => {
                if !state[0].is_null() {
                    *s = s.add(&signed_value(&state[0], sign));
                }
            }
            Accumulator::Min(m) => {
                assert!(sign > 0, "MIN cannot fold a retraction");
                if !state[0].is_null() && m.as_ref().map(|cur| &state[0] < cur).unwrap_or(true) {
                    *m = Some(state[0].clone());
                }
            }
            Accumulator::Max(m) => {
                assert!(sign > 0, "MAX cannot fold a retraction");
                if !state[0].is_null() && m.as_ref().map(|cur| &state[0] > cur).unwrap_or(true) {
                    *m = Some(state[0].clone());
                }
            }
            Accumulator::Avg(s, c) => {
                if !state[0].is_null() {
                    *s = s.add(&signed_value(&state[0], sign));
                }
                *c += sign * state[1].as_int().unwrap_or(0);
            }
        }
    }

    /// The mergeable partial representation of the state.
    pub fn partial_values(&self) -> Vec<Value> {
        match self {
            Accumulator::Count(c) => vec![Value::Int(*c)],
            Accumulator::Sum(s) => vec![s.clone()],
            Accumulator::Min(m) => vec![m.clone().unwrap_or(Value::Null)],
            Accumulator::Max(m) => vec![m.clone().unwrap_or(Value::Null)],
            Accumulator::Avg(s, c) => vec![s.clone(), Value::Int(*c)],
        }
    }

    /// The final scalar result.
    pub fn final_value(&self) -> Value {
        match self {
            Accumulator::Count(c) => Value::Int(*c),
            Accumulator::Sum(s) => s.clone(),
            Accumulator::Min(m) | Accumulator::Max(m) => m.clone().unwrap_or(Value::Null),
            Accumulator::Avg(s, c) => {
                if *c == 0 {
                    Value::Null
                } else {
                    Value::Double(s.as_f64().unwrap_or(0.0) / *c as f64)
                }
            }
        }
    }
}

/// A numeric value scaled by a delta sign (`-1` negates, `+1` is the
/// identity).  `Int(0).sub` keeps integers integer and promotes doubles.
fn signed_value(value: &Value, sign: i64) -> Value {
    if sign >= 0 {
        value.clone()
    } else {
        Value::Int(0).sub(value)
    }
}

/// One sub-group of an aggregate: the accumulators for a particular
/// `(group key, provenance set, phase)` combination, plus whether it has
/// already been emitted downstream.
#[derive(Clone, Debug)]
struct SubGroup {
    accumulators: Vec<Accumulator>,
    emitted: bool,
}

/// State of one aggregation operator instance.
#[derive(Clone, Debug, Default)]
pub struct AggState {
    groups: HashMap<(Vec<Value>, NodeSet, Phase), SubGroup>,
}

impl AggState {
    /// Fresh, empty aggregation state.
    pub fn new() -> AggState {
        AggState::default()
    }

    /// Number of sub-groups currently held.
    pub fn subgroup_count(&self) -> usize {
        self.groups.len()
    }

    /// Fold one raw input row (modes `Single` and `Partial`), honouring
    /// the row's delta sign — a retraction inverts its contribution.
    pub fn update_raw(&mut self, row: &TaggedTuple, group_by: &[usize], aggs: &[(AggFunc, usize)]) {
        let key: Vec<Value> = group_by
            .iter()
            .map(|c| row.tuple.value(*c).clone())
            .collect();
        let entry = self
            .groups
            .entry((key, row.provenance, row.phase))
            .or_insert_with(|| SubGroup {
                accumulators: aggs.iter().map(|(f, _)| Accumulator::new(*f)).collect(),
                emitted: false,
            });
        for (i, (_, col)) in aggs.iter().enumerate() {
            entry.accumulators[i].update_signed(row.tuple.value(*col), row.sign as i64);
        }
    }

    /// Fold one partial-state row (mode `Final`): `aggs[i].1` is the
    /// column at which the i-th aggregate's partial state begins.
    pub fn update_partial(
        &mut self,
        row: &TaggedTuple,
        group_by: &[usize],
        aggs: &[(AggFunc, usize)],
    ) {
        let key: Vec<Value> = group_by
            .iter()
            .map(|c| row.tuple.value(*c).clone())
            .collect();
        let entry = self
            .groups
            .entry((key, row.provenance, row.phase))
            .or_insert_with(|| SubGroup {
                accumulators: aggs.iter().map(|(f, _)| Accumulator::new(*f)).collect(),
                emitted: false,
            });
        for (i, (f, col)) in aggs.iter().enumerate() {
            let width = f.partial_width();
            let state: Vec<Value> = (0..width)
                .map(|k| row.tuple.value(col + k).clone())
                .collect();
            entry.accumulators[i].merge_partial_signed(&state, row.sign as i64);
        }
    }

    /// Drop every sub-group whose provenance intersects `failed`; returns
    /// the number of sub-groups dropped.
    pub fn purge_tainted(&mut self, failed: &NodeSet) -> usize {
        let before = self.groups.len();
        self.groups
            .retain(|(_, prov, _), _| !prov.intersects(failed));
        before - self.groups.len()
    }

    /// Emit every sub-group that has not been emitted yet, marking it
    /// emitted.  `partial` selects between the mergeable partial layout
    /// and the final scalar layout.  Output rows are tagged with the
    /// sub-group's provenance plus `node`, at `phase`.
    pub fn emit_unemitted(
        &mut self,
        partial: bool,
        node: NodeId,
        phase: Phase,
    ) -> Vec<TaggedTuple> {
        let mut keys: Vec<(Vec<Value>, NodeSet, Phase)> = self
            .groups
            .iter()
            .filter(|(_, g)| !g.emitted)
            .map(|(k, _)| k.clone())
            .collect();
        // Deterministic emission order (group key, then provenance order is
        // irrelevant but stable via the sort on the full key tuple).
        keys.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let group = self.groups.get_mut(&key).expect("subgroup exists");
            group.emitted = true;
            let mut values = key.0.clone();
            for acc in &group.accumulators {
                if partial {
                    values.extend(acc.partial_values());
                } else {
                    values.push(acc.final_value());
                }
            }
            let mut provenance = key.1;
            provenance.insert(node);
            // Emitted states are assertions: any retractions the
            // sub-group absorbed are already folded into its values.
            out.push(TaggedTuple {
                tuple: Tuple::new(values),
                provenance,
                phase,
                sign: 1,
            });
        }
        out
    }

    /// Merge-and-finalise: collapse all sub-groups (regardless of
    /// provenance/phase) by group key and return final values.  This is
    /// the executor's query-completion path for the top-level
    /// `Single`/`Final` aggregate — it runs exactly once, when the
    /// initiator's `Output` segment closes, merging the per-provenance
    /// sub-groups into the duplicate-free answer.  Unit tests also use it
    /// to validate accumulator algebra directly.
    pub fn collapsed_final(&self, aggs: &[(AggFunc, usize)]) -> Vec<Tuple> {
        let mut merged: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        for ((key, _, _), group) in &self.groups {
            let accs = merged
                .entry(key.clone())
                .or_insert_with(|| aggs.iter().map(|(f, _)| Accumulator::new(*f)).collect());
            for (i, acc) in group.accumulators.iter().enumerate() {
                accs[i].merge_partial(&acc.partial_values());
            }
        }
        let mut out: Vec<Tuple> = merged
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(accs.iter().map(Accumulator::final_value));
                Tuple::new(key)
            })
            .collect();
        out.sort();
        out
    }
}

// ---------------------------------------------------------------------------
// Rehash / Ship buffering and output caching
// ---------------------------------------------------------------------------

/// State of one `Rehash` or `Ship` operator instance: the per-destination
/// output buffers awaiting a full batch, and (when recovery support is
/// enabled) the cache of everything sent, used to re-create data that had
/// been sent to a failed node.
#[derive(Clone, Debug, Default)]
pub struct RehashState {
    buffers: HashMap<NodeId, Vec<TaggedTuple>>,
    cache: Vec<(NodeId, TaggedTuple)>,
    cache_enabled: bool,
}

impl RehashState {
    /// Fresh state; `cache_enabled` mirrors the engine's recovery-support
    /// switch.
    pub fn new(cache_enabled: bool) -> RehashState {
        RehashState {
            cache_enabled,
            ..RehashState::default()
        }
    }

    /// Append a row destined for `dest`, returning the buffer length after
    /// insertion (the executor flushes when this reaches the batch size).
    pub fn buffer(&mut self, dest: NodeId, row: TaggedTuple) -> usize {
        if self.cache_enabled {
            self.cache.push((dest, row.clone()));
        }
        let buf = self.buffers.entry(dest).or_default();
        buf.push(row);
        buf.len()
    }

    /// Take (and clear) the pending buffer for `dest`.
    pub fn take_buffer(&mut self, dest: NodeId) -> Vec<TaggedTuple> {
        self.buffers.remove(&dest).unwrap_or_default()
    }

    /// Destinations that currently have pending rows.
    pub fn pending_destinations(&self) -> Vec<NodeId> {
        let mut dests: Vec<NodeId> = self
            .buffers
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(d, _)| *d)
            .collect();
        dests.sort_unstable();
        dests
    }

    /// Remove and return the untainted rows cached as having been sent to
    /// `dest` — exactly the rows recovery stage 4 must re-transmit.  The
    /// entries are *consumed*: re-buffering re-caches each row under its
    /// new destination, and a later recovery round must not find (and
    /// duplicate) the stale entries still keyed to the failed node, so no
    /// non-consuming variant is offered.
    pub fn take_cached_for(&mut self, dest: NodeId, failed: &NodeSet) -> Vec<TaggedTuple> {
        let mut out = Vec::new();
        self.cache.retain(|(d, row)| {
            if *d == dest && !row.is_tainted(failed) {
                out.push(row.clone());
                false
            } else {
                true
            }
        });
        out
    }

    /// Drop tainted rows from the cache and from the pending buffers;
    /// returns how many *logical* rows were dropped.  When the cache is
    /// enabled every pending row is also cached, so only the cache drops
    /// are counted — counting both would tally the same row twice.
    pub fn purge_tainted(&mut self, failed: &NodeSet) -> usize {
        let before = self.cache.len();
        self.cache.retain(|(_, row)| !row.is_tainted(failed));
        let cache_dropped = before - self.cache.len();
        let mut buffer_dropped = 0;
        for buf in self.buffers.values_mut() {
            let before = buf.len();
            buf.retain(|row| !row.is_tainted(failed));
            buffer_dropped += before - buf.len();
        }
        if self.cache_enabled {
            cache_dropped
        } else {
            buffer_dropped
        }
    }

    /// Number of rows currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::Value;

    fn tagged(vals: Vec<Value>, node: u16) -> TaggedTuple {
        TaggedTuple::scanned(Tuple::new(vals), NodeId(node), 0)
    }

    #[test]
    fn symmetric_join_finds_matches_in_either_arrival_order() {
        let mut j = JoinState::new();
        let node = NodeId(9);
        // Left arrives first: no match yet.
        let out = j.process(
            0,
            tagged(vec![Value::Int(1), Value::str("a")], 0),
            &[0],
            &[0],
            node,
        );
        assert!(out.is_empty());
        // Matching right arrives: one result.
        let out = j.process(
            1,
            tagged(vec![Value::Int(1), Value::str("x")], 1),
            &[0],
            &[0],
            node,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].tuple.values(),
            &[
                Value::Int(1),
                Value::str("a"),
                Value::Int(1),
                Value::str("x")
            ]
        );
        assert!(out[0].provenance.contains(NodeId(0)));
        assert!(out[0].provenance.contains(NodeId(1)));
        assert!(out[0].provenance.contains(node));
        // A second left with the same key joins against the stored right.
        let out = j.process(
            0,
            tagged(vec![Value::Int(1), Value::str("b")], 2),
            &[0],
            &[0],
            node,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn join_purge_drops_only_tainted_rows() {
        let mut j = JoinState::new();
        let node = NodeId(9);
        j.process(0, tagged(vec![Value::Int(1)], 0), &[0], &[0], node);
        j.process(0, tagged(vec![Value::Int(2)], 5), &[0], &[0], node);
        j.process(1, tagged(vec![Value::Int(3)], 5), &[0], &[0], node);
        let dropped = j.purge_tainted(&NodeSet::singleton(NodeId(5)));
        assert_eq!(dropped, 2);
        assert_eq!(j.len(), 1);
        assert!(!j.is_empty());
    }

    #[test]
    fn accumulators_compute_sql_semantics() {
        let mut count = Accumulator::new(AggFunc::Count);
        let mut sum = Accumulator::new(AggFunc::Sum);
        let mut min = Accumulator::new(AggFunc::Min);
        let mut max = Accumulator::new(AggFunc::Max);
        let mut avg = Accumulator::new(AggFunc::Avg);
        for v in [3i64, 1, 4, 1, 5] {
            let val = Value::Int(v);
            count.update(&val);
            sum.update(&val);
            min.update(&val);
            max.update(&val);
            avg.update(&val);
        }
        assert_eq!(count.final_value(), Value::Int(5));
        assert_eq!(sum.final_value(), Value::Int(14));
        assert_eq!(min.final_value(), Value::Int(1));
        assert_eq!(max.final_value(), Value::Int(5));
        assert_eq!(avg.final_value(), Value::Double(2.8));
    }

    #[test]
    fn partial_then_merge_equals_direct_aggregation() {
        // Split the input across two partial accumulators, merge, compare
        // against a single accumulator over the whole input.
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            let input: Vec<i64> = vec![10, -3, 7, 7, 0, 42];
            let mut direct = Accumulator::new(func);
            for v in &input {
                direct.update(&Value::Int(*v));
            }
            let mut p1 = Accumulator::new(func);
            let mut p2 = Accumulator::new(func);
            for (i, v) in input.iter().enumerate() {
                if i % 2 == 0 {
                    p1.update(&Value::Int(*v));
                } else {
                    p2.update(&Value::Int(*v));
                }
            }
            let mut merged = Accumulator::new(func);
            merged.merge_partial(&p1.partial_values());
            merged.merge_partial(&p2.partial_values());
            assert_eq!(merged.final_value(), direct.final_value(), "{func:?}");
        }
    }

    #[test]
    fn signed_updates_invert_insertions_exactly() {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg] {
            let mut acc = Accumulator::new(func);
            assert!(acc.is_subtractable());
            for v in [10i64, -3, 7] {
                acc.update(&Value::Int(v));
            }
            let snapshot = acc.partial_values();
            // Fold three more rows in, then retract them: the state must
            // return to the snapshot.
            for v in [5i64, 5, 20] {
                acc.update_signed(&Value::Int(v), 1);
            }
            for v in [5i64, 5, 20] {
                acc.update_signed(&Value::Int(v), -1);
            }
            assert_eq!(acc.partial_values(), snapshot, "{func:?}");
            // Retracting a whole partial state works the same way.
            let mut other = Accumulator::new(func);
            other.update(&Value::Int(100));
            acc.merge_partial_signed(&other.partial_values(), 1);
            acc.merge_partial_signed(&other.partial_values(), -1);
            assert_eq!(acc.partial_values(), snapshot, "{func:?}");
        }
        assert!(!Accumulator::new(AggFunc::Min).is_subtractable());
        assert!(!Accumulator::new(AggFunc::Max).is_subtractable());
    }

    #[test]
    #[should_panic(expected = "MIN cannot fold a retraction")]
    fn min_rejects_retractions() {
        let mut acc = Accumulator::new(AggFunc::Min);
        acc.update_signed(&Value::Int(1), -1);
    }

    #[test]
    fn agg_state_folds_row_signs() {
        let mut agg = AggState::new();
        let aggs = [(AggFunc::Sum, 1), (AggFunc::Count, 1)];
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(10)], 0),
            &[0],
            &aggs,
        );
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(4)], 0).with_sign(-1),
            &[0],
            &aggs,
        );
        let rows = agg.collapsed_final(&aggs);
        assert_eq!(
            rows[0].values(),
            &[Value::str("g"), Value::Int(6), Value::Int(0)]
        );
    }

    #[test]
    fn agg_state_subgroups_by_provenance_and_emission_is_once() {
        let mut agg = AggState::new();
        let aggs = [(AggFunc::Sum, 1)];
        // Two rows in the same group but with different provenance → two
        // sub-groups.
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(10)], 0),
            &[0],
            &aggs,
        );
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(5)], 1),
            &[0],
            &aggs,
        );
        assert_eq!(agg.subgroup_count(), 2);
        let emitted = agg.emit_unemitted(true, NodeId(7), 0);
        assert_eq!(emitted.len(), 2);
        // Nothing new to emit on a second close.
        assert!(agg.emit_unemitted(true, NodeId(7), 0).is_empty());
        // New input after emission creates a fresh sub-group (new phase)
        // and only that one is emitted next time.
        let mut late = tagged(vec![Value::str("g"), Value::Int(1)], 2);
        late.phase = 1;
        agg.update_raw(&late, &[0], &aggs);
        let emitted = agg.emit_unemitted(true, NodeId(7), 1);
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].phase, 1);
    }

    #[test]
    fn agg_purge_drops_tainted_subgroups() {
        let mut agg = AggState::new();
        let aggs = [(AggFunc::Count, 0)];
        agg.update_raw(&tagged(vec![Value::str("a")], 0), &[0], &aggs);
        agg.update_raw(&tagged(vec![Value::str("b")], 3), &[0], &aggs);
        assert_eq!(agg.purge_tainted(&NodeSet::singleton(NodeId(3))), 1);
        assert_eq!(agg.subgroup_count(), 1);
    }

    #[test]
    fn collapsed_final_merges_across_subgroups() {
        let mut agg = AggState::new();
        let aggs = [(AggFunc::Sum, 1), (AggFunc::Count, 1)];
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(10)], 0),
            &[0],
            &aggs,
        );
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(5)], 1),
            &[0],
            &aggs,
        );
        agg.update_raw(
            &tagged(vec![Value::str("h"), Value::Int(2)], 1),
            &[0],
            &aggs,
        );
        let rows = agg.collapsed_final(&aggs);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].values(),
            &[Value::str("g"), Value::Int(15), Value::Int(2)]
        );
        assert_eq!(
            rows[1].values(),
            &[Value::str("h"), Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn rehash_buffers_and_cache() {
        let mut r = RehashState::new(true);
        for i in 0..5 {
            let len = r.buffer(NodeId(1), tagged(vec![Value::Int(i)], 0));
            assert_eq!(len, i as usize + 1);
        }
        r.buffer(NodeId(2), tagged(vec![Value::Int(99)], 3));
        assert_eq!(r.pending_destinations(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(r.take_buffer(NodeId(1)).len(), 5);
        assert!(r.take_buffer(NodeId(1)).is_empty());
        assert_eq!(r.cache_len(), 6);

        // Stage-4 retransmission: cached rows for a failed destination,
        // excluding tainted ones.
        let failed = NodeSet::singleton(NodeId(3));
        let resend = r.take_cached_for(NodeId(2), &failed);
        assert!(resend.is_empty(), "row destined to n2 is itself tainted");
        let resend = r.take_cached_for(NodeId(1), &failed);
        assert_eq!(resend.len(), 5);
        // The consumed entries are gone; the tainted n2 row remains until
        // purged.
        assert_eq!(r.cache_len(), 1);
        assert_eq!(r.purge_tainted(&failed), 1);
        assert_eq!(r.cache_len(), 0);
    }

    #[test]
    fn rehash_without_cache_keeps_nothing() {
        let mut r = RehashState::new(false);
        r.buffer(NodeId(1), tagged(vec![Value::Int(1)], 0));
        assert_eq!(r.cache_len(), 0);
    }

    #[test]
    fn take_cached_for_consumes_entries() {
        // Regression: retransmission must consume the cache entries keyed
        // to the failed destination, or a second recovery round would
        // re-send (and duplicate) them.
        let mut r = RehashState::new(true);
        r.buffer(NodeId(1), tagged(vec![Value::Int(1)], 0));
        r.buffer(NodeId(1), tagged(vec![Value::Int(2)], 5));
        r.buffer(NodeId(2), tagged(vec![Value::Int(3)], 0));
        let failed = NodeSet::singleton(NodeId(5));
        let taken = r.take_cached_for(NodeId(1), &failed);
        assert_eq!(taken.len(), 1, "only the untainted row for n1");
        // A second call finds nothing left for that destination.
        assert!(r.take_cached_for(NodeId(1), &failed).is_empty());
        // Entries for other destinations are untouched.
        assert_eq!(r.take_cached_for(NodeId(2), &failed).len(), 1);
    }

    #[test]
    fn purge_counts_each_logical_row_once() {
        // Regression: a tainted row that is both cached and still pending
        // in a buffer must be counted as ONE dropped row, not two.
        let mut r = RehashState::new(true);
        r.buffer(NodeId(1), tagged(vec![Value::Int(1)], 7));
        let failed = NodeSet::singleton(NodeId(7));
        assert_eq!(r.purge_tainted(&failed), 1);
        assert_eq!(r.cache_len(), 0);
        assert!(r.take_buffer(NodeId(1)).is_empty());

        // Without a cache, pending-buffer drops are what gets counted.
        let mut r = RehashState::new(false);
        r.buffer(NodeId(1), tagged(vec![Value::Int(1)], 7));
        r.buffer(NodeId(2), tagged(vec![Value::Int(2)], 0));
        assert_eq!(r.purge_tainted(&failed), 1);
        assert_eq!(r.take_buffer(NodeId(2)).len(), 1);
    }
}
