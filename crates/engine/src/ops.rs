//! Runtime state of the stateful operators, stored column-wise.
//!
//! The executor (`exec`) owns one instance of every plan operator per
//! participating node; this module holds the state those instances carry
//! between messages:
//!
//! * [`JoinState`] — the pipelined *symmetric* hash join (the paper's
//!   "pipelined hash join").  Each side keeps its buffered rows in one
//!   [`ColumnarBatch`] plus a hash index from join-key values to row
//!   numbers, so build and probe touch only the key columns and join
//!   output is assembled column-by-column without materializing row
//!   objects.  Tainted build rows are tombstoned (not compacted) on
//!   failure so row numbers in the index stay valid.
//! * [`AggState`] — the grouping operator's state, organised as
//!   *sub-groups* keyed by `(group key, provenance set, phase)` exactly as
//!   Section V-D prescribes, so that on failure the sub-groups derived
//!   from a failed node can be dropped without touching the rest, and so
//!   that re-emission after recovery never double-counts.  The batch
//!   entry points fold whole columnar batches, using a per-batch group
//!   signature cache (typed cells compare by bits or pool id) to skip
//!   re-materializing the group key for every row.
//! * [`RehashState`] — per-destination output buffers plus the output
//!   cache used by recovery stage 4 ("re-create data that was sent to the
//!   failed nodes' hash key space ranges").  Buffers and cache are
//!   [`TupleBatch`]es, so a flushed batch already knows its own encoded
//!   wire size — the flush path reads it off the columns' running
//!   dictionary accounting instead of re-scanning the rows.

use crate::batch::TupleBatch;
use crate::expr::AggFunc;
use crate::provenance::{Phase, TaggedTuple};
use orchestra_common::{ColumnData, ColumnarBatch, NodeId, NodeSet, PoolMemo, Tuple, Value};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Symmetric hash join
// ---------------------------------------------------------------------------

/// One side of the symmetric hash join: buffered rows as a columnar
/// batch, a liveness mask (purges tombstone rather than compact, keeping
/// indexed row numbers stable), and the hash index over the key values.
#[derive(Clone, Debug)]
struct JoinSide {
    rows: ColumnarBatch,
    alive: Vec<bool>,
    index: HashMap<Vec<Value>, Vec<u32>>,
}

impl Default for JoinSide {
    fn default() -> JoinSide {
        JoinSide {
            rows: ColumnarBatch::new(0),
            alive: Vec::new(),
            index: HashMap::new(),
        }
    }
}

impl JoinSide {
    fn live_rows(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }
}

/// State of one pipelined (symmetric) hash join instance.
#[derive(Clone, Debug, Default)]
pub struct JoinState {
    sides: [JoinSide; 2],
}

impl JoinState {
    /// Fresh, empty join state.
    pub fn new() -> JoinState {
        JoinState::default()
    }

    /// Number of buffered rows on both sides.
    pub fn len(&self) -> usize {
        self.sides.iter().map(JoinSide::live_rows).sum()
    }

    /// Is the state empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Process one input row arriving on `input` (0 = left, 1 = right):
    /// insert it into its side's table, probe the other side, and return
    /// the join results (left columns then right columns), tagged with the
    /// union of the parents' provenance plus `node`.
    pub fn process(
        &mut self,
        input: usize,
        row: TaggedTuple,
        left_keys: &[usize],
        right_keys: &[usize],
        node: NodeId,
    ) -> Vec<TaggedTuple> {
        let TaggedTuple {
            tuple,
            provenance,
            phase,
            sign,
        } = row;
        let arity = tuple.arity();
        let batch = ColumnarBatch::from_tuples(arity, [tuple], sign, provenance, phase);
        let out = self.process_batch(input, &batch, left_keys, right_keys, node);
        (0..out.len())
            .map(|i| TaggedTuple {
                tuple: out.tuple_at(i),
                provenance: out.provenance_at(i),
                phase: out.phase_at(i),
                sign: out.sign_at(i),
            })
            .collect()
    }

    /// Batch entry point: insert every row of `batch` into the `input`
    /// side and probe the other side, producing the join output as one
    /// columnar batch.  Rows are processed in batch order and matches are
    /// emitted in build-insertion order, exactly like the row-at-a-time
    /// path; only the representation differs (cells are copied column to
    /// column, strings re-interned via per-call pool memos).
    pub fn process_batch(
        &mut self,
        input: usize,
        batch: &ColumnarBatch,
        left_keys: &[usize],
        right_keys: &[usize],
        node: NodeId,
    ) -> ColumnarBatch {
        let keys = if input == 0 { left_keys } else { right_keys };
        let (a, b) = self.sides.split_at_mut(1);
        let (own, other) = if input == 0 {
            (&mut a[0], &b[0])
        } else {
            (&mut b[0], &a[0])
        };
        if own.rows.arity() < batch.arity() {
            own.rows.pad_to_arity(batch.arity());
        }
        let mut out = ColumnarBatch::new(0);
        let mut memo_in = PoolMemo::new();
        let mut memo_store = PoolMemo::new();
        for r in 0..batch.len() {
            let key: Vec<Value> = keys.iter().map(|c| batch.value_at(r, *c)).collect();
            if let Some(matches) = other.index.get(&key) {
                for &m in matches {
                    let m = m as usize;
                    if !other.alive[m] {
                        continue;
                    }
                    if out.arity() == 0 {
                        out.pad_to_arity(batch.arity() + other.rows.arity());
                    }
                    if input == 0 {
                        out.append_cells_from(batch, r, 0, &mut memo_in);
                        out.append_cells_from(&other.rows, m, batch.arity(), &mut memo_store);
                    } else {
                        out.append_cells_from(&other.rows, m, 0, &mut memo_store);
                        out.append_cells_from(batch, r, other.rows.arity(), &mut memo_in);
                    }
                    let mut provenance = batch.provenance_at(r).union(&other.rows.provenance_at(m));
                    provenance.insert(node);
                    out.push_tag_row(
                        batch.sign_at(r) * other.rows.sign_at(m),
                        provenance,
                        batch.phase_at(r).max(other.rows.phase_at(m)),
                    );
                }
            }
            own.rows.append_row_interned(batch, r);
            own.alive.push(true);
            let idx = (own.rows.len() - 1) as u32;
            own.index.entry(key).or_default().push(idx);
        }
        out
    }

    /// Drop every buffered row whose provenance intersects `failed`;
    /// returns how many rows were dropped.
    pub fn purge_tainted(&mut self, failed: &NodeSet) -> usize {
        let mut dropped = 0;
        for side in &mut self.sides {
            for (i, alive) in side.alive.iter_mut().enumerate() {
                if *alive && side.rows.provenance_at(i).intersects(failed) {
                    *alive = false;
                    dropped += 1;
                }
            }
        }
        dropped
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Running state of one aggregate function for one sub-group.
#[derive(Clone, Debug)]
pub enum Accumulator {
    /// COUNT(*) — number of input rows.
    Count(i64),
    /// SUM(col).
    Sum(Value),
    /// MIN(col).
    Min(Option<Value>),
    /// MAX(col).
    Max(Option<Value>),
    /// AVG(col) carried as (sum, count).
    Avg(Value, i64),
}

impl Accumulator {
    /// A fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Accumulator {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::Sum(Value::Null),
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Avg => Accumulator::Avg(Value::Null, 0),
        }
    }

    /// Fold one raw input value into the accumulator.
    pub fn update(&mut self, value: &Value) {
        self.update_signed(value, 1);
    }

    /// Is this accumulator *subtractable* — can a retraction be folded by
    /// inverting the contribution of the original insertion?  COUNT, SUM
    /// and AVG are; MIN and MAX are not (removing the current extremum
    /// would require the discarded runners-up).
    pub fn is_subtractable(&self) -> bool {
        !matches!(self, Accumulator::Min(_) | Accumulator::Max(_))
    }

    /// Fold one raw input value with a delta sign: `+1` accumulates as
    /// [`Self::update`], `-1` inverts the contribution.  Retractions into
    /// MIN/MAX are a planning error (maintenance plans refuse
    /// non-subtractable aggregates) and panic.
    pub fn update_signed(&mut self, value: &Value, sign: i64) {
        match self {
            Accumulator::Count(c) => *c += sign,
            Accumulator::Sum(s) => {
                if !value.is_null() {
                    *s = s.add(&signed_value(value, sign));
                }
            }
            Accumulator::Min(m) => {
                assert!(sign > 0, "MIN cannot fold a retraction");
                if m.as_ref().map(|cur| value < cur).unwrap_or(true) && !value.is_null() {
                    *m = Some(value.clone());
                }
            }
            Accumulator::Max(m) => {
                assert!(sign > 0, "MAX cannot fold a retraction");
                if m.as_ref().map(|cur| value > cur).unwrap_or(true) && !value.is_null() {
                    *m = Some(value.clone());
                }
            }
            Accumulator::Avg(s, c) => {
                if !value.is_null() {
                    *s = s.add(&signed_value(value, sign));
                    *c += sign;
                }
            }
        }
    }

    /// Merge a *partial state* (as produced by [`Self::partial_values`]) —
    /// the re-aggregation path of a `Final` aggregate.
    pub fn merge_partial(&mut self, state: &[Value]) {
        self.merge_partial_signed(state, 1);
    }

    /// Merge a partial state with a delta sign: `-1` removes the state's
    /// whole contribution (the retraction path of view maintenance).
    pub fn merge_partial_signed(&mut self, state: &[Value], sign: i64) {
        match self {
            Accumulator::Count(c) => *c += sign * state[0].as_int().unwrap_or(0),
            Accumulator::Sum(s) => {
                if !state[0].is_null() {
                    *s = s.add(&signed_value(&state[0], sign));
                }
            }
            Accumulator::Min(m) => {
                assert!(sign > 0, "MIN cannot fold a retraction");
                if !state[0].is_null() && m.as_ref().map(|cur| &state[0] < cur).unwrap_or(true) {
                    *m = Some(state[0].clone());
                }
            }
            Accumulator::Max(m) => {
                assert!(sign > 0, "MAX cannot fold a retraction");
                if !state[0].is_null() && m.as_ref().map(|cur| &state[0] > cur).unwrap_or(true) {
                    *m = Some(state[0].clone());
                }
            }
            Accumulator::Avg(s, c) => {
                if !state[0].is_null() {
                    *s = s.add(&signed_value(&state[0], sign));
                }
                *c += sign * state[1].as_int().unwrap_or(0);
            }
        }
    }

    /// The mergeable partial representation of the state.
    pub fn partial_values(&self) -> Vec<Value> {
        match self {
            Accumulator::Count(c) => vec![Value::Int(*c)],
            Accumulator::Sum(s) => vec![s.clone()],
            Accumulator::Min(m) => vec![m.clone().unwrap_or(Value::Null)],
            Accumulator::Max(m) => vec![m.clone().unwrap_or(Value::Null)],
            Accumulator::Avg(s, c) => vec![s.clone(), Value::Int(*c)],
        }
    }

    /// The final scalar result.
    pub fn final_value(&self) -> Value {
        match self {
            Accumulator::Count(c) => Value::Int(*c),
            Accumulator::Sum(s) => s.clone(),
            Accumulator::Min(m) | Accumulator::Max(m) => m.clone().unwrap_or(Value::Null),
            Accumulator::Avg(s, c) => {
                if *c == 0 {
                    Value::Null
                } else {
                    Value::Double(s.as_f64().unwrap_or(0.0) / *c as f64)
                }
            }
        }
    }
}

/// A numeric value scaled by a delta sign (`-1` negates, `+1` is the
/// identity).  `Int(0).sub` keeps integers integer and promotes doubles.
fn signed_value(value: &Value, sign: i64) -> Value {
    if sign >= 0 {
        value.clone()
    } else {
        Value::Int(0).sub(value)
    }
}

/// Which extremum an [`ExtremumSketch`] maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtremumKind {
    /// Track the smallest values (MIN).
    Min,
    /// Track the largest values (MAX).
    Max,
}

/// Default number of distinct runner-up values an [`ExtremumSketch`]
/// retains per group.
pub const EXTREMUM_SKETCH_K: usize = 8;

/// Bounded per-group top-k state that makes MIN/MAX *retractable up to
/// exhaustion*: the `k` best distinct values are tracked exactly (with
/// multiplicities), everything worse is a single overflow count.
///
/// Invariant: every untracked row's value is no better than the worst
/// tracked value (the *boundary*).  Inserts respect it by routing
/// boundary-or-worse values into the overflow count whenever overflow
/// rows exist; deletes of tracked values simply decrement, and deletes
/// of untracked values decrement the overflow count — sound because a
/// value absent from the tracked set can only live on the far side of
/// the boundary.  The extremum is therefore always the best tracked
/// value, exactly — never an approximation — until deletions empty the
/// tracked set while overflow rows remain ([`Self::is_exhausted`]), at
/// which point the discarded runners-up are genuinely unknown and the
/// caller must recompute.  This is the classic bounded-heap fallback
/// that lets delete-heavy MIN/MAX views refresh incrementally instead
/// of recomputing on every retraction.
#[derive(Clone, Debug)]
pub struct ExtremumSketch {
    kind: ExtremumKind,
    k: usize,
    /// Distinct tracked values with multiplicities, best-first for MIN
    /// (the map's natural order) and worst-first for MAX.
    tracked: std::collections::BTreeMap<Value, i64>,
    /// Rows whose values were at-or-beyond the boundary when they
    /// arrived (or were evicted across it).
    untracked: i64,
}

impl ExtremumSketch {
    /// A fresh sketch tracking `k` distinct values (clamped to at least
    /// one).
    pub fn new(kind: ExtremumKind, k: usize) -> ExtremumSketch {
        ExtremumSketch {
            kind,
            k: k.max(1),
            tracked: std::collections::BTreeMap::new(),
            untracked: 0,
        }
    }

    /// Is `a` strictly better than `b` for this extremum?
    fn better(&self, a: &Value, b: &Value) -> bool {
        match self.kind {
            ExtremumKind::Min => a < b,
            ExtremumKind::Max => a > b,
        }
    }

    /// The worst tracked value — the boundary between exact and counted.
    fn boundary(&self) -> Option<&Value> {
        match self.kind {
            ExtremumKind::Min => self.tracked.keys().next_back(),
            ExtremumKind::Max => self.tracked.keys().next(),
        }
    }

    /// Fold one signed raw value.  Nulls never participate in MIN/MAX.
    pub fn update_signed(&mut self, value: &Value, sign: i64) {
        if value.is_null() || sign == 0 {
            return;
        }
        if sign > 0 {
            self.insert(value, sign);
        } else {
            self.delete(value, -sign);
        }
    }

    fn insert(&mut self, value: &Value, count: i64) {
        if let Some(m) = self.tracked.get_mut(value) {
            *m += count;
            return;
        }
        let beats_boundary = self.boundary().is_some_and(|b| self.better(value, b));
        if self.untracked > 0 && !beats_boundary {
            // Overflow rows exist whose rank against `value` is unknown;
            // only strictly-better-than-boundary values may join the
            // tracked set without breaking the invariant.  (In the
            // exhausted state there is no boundary at all, so nothing
            // re-enters until a recompute rebuilds the sketch.)
            self.untracked += count;
            return;
        }
        self.tracked.insert(value.clone(), count);
        while self.tracked.len() > self.k {
            let boundary = self.boundary().expect("tracked is non-empty").clone();
            let evicted = self.tracked.remove(&boundary).unwrap_or(0);
            self.untracked += evicted;
        }
    }

    fn delete(&mut self, value: &Value, count: i64) {
        if let Some(m) = self.tracked.get_mut(value) {
            *m -= count;
            if *m <= 0 {
                self.tracked.remove(value);
            }
            return;
        }
        // Not tracked, so it lives beyond the boundary: it is one of the
        // counted overflow rows.
        self.untracked = (self.untracked - count).max(0);
    }

    /// The exact extremum, while the sketch can still prove one: the
    /// best tracked value.  `None` when the group is empty *or*
    /// exhausted — disambiguate with [`Self::is_exhausted`].
    pub fn best(&self) -> Option<&Value> {
        match self.kind {
            ExtremumKind::Min => self.tracked.keys().next(),
            ExtremumKind::Max => self.tracked.keys().next_back(),
        }
    }

    /// Deletions consumed every tracked value but overflow rows remain:
    /// the extremum is among discarded runners-up and only a recompute
    /// can recover it.
    pub fn is_exhausted(&self) -> bool {
        self.tracked.is_empty() && self.untracked > 0
    }

    /// Signed rows currently represented (tracked multiplicities plus
    /// overflow).
    pub fn support(&self) -> i64 {
        self.tracked.values().sum::<i64>() + self.untracked
    }
}

/// One sub-group of an aggregate: the accumulators for a particular
/// `(group key, provenance set, phase)` combination, plus whether it has
/// already been emitted downstream.  Purged sub-groups are tombstoned
/// (`alive = false`) so indices held by the signature cache stay valid
/// within a batch.
#[derive(Clone, Debug)]
struct SubGroup {
    key: Vec<Value>,
    provenance: NodeSet,
    phase: Phase,
    accumulators: Vec<Accumulator>,
    emitted: bool,
    alive: bool,
}

/// State of one aggregation operator instance.
#[derive(Clone, Debug, Default)]
pub struct AggState {
    index: HashMap<(Vec<Value>, NodeSet, Phase), usize>,
    subgroups: Vec<SubGroup>,
}

impl AggState {
    /// Fresh, empty aggregation state.
    pub fn new() -> AggState {
        AggState::default()
    }

    /// Number of sub-groups currently held.
    pub fn subgroup_count(&self) -> usize {
        self.subgroups.iter().filter(|g| g.alive).count()
    }

    /// Find or create the sub-group for a full key, returning its index.
    fn subgroup_at(
        &mut self,
        key: (Vec<Value>, NodeSet, Phase),
        aggs: &[(AggFunc, usize)],
    ) -> usize {
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = self.subgroups.len();
        self.subgroups.push(SubGroup {
            key: key.0.clone(),
            provenance: key.1,
            phase: key.2,
            accumulators: aggs.iter().map(|(f, _)| Accumulator::new(*f)).collect(),
            emitted: false,
            alive: true,
        });
        self.index.insert(key, i);
        i
    }

    /// Fold one raw input row (modes `Single` and `Partial`), honouring
    /// the row's delta sign — a retraction inverts its contribution.
    pub fn update_raw(&mut self, row: &TaggedTuple, group_by: &[usize], aggs: &[(AggFunc, usize)]) {
        let key: Vec<Value> = group_by
            .iter()
            .map(|c| row.tuple.value(*c).clone())
            .collect();
        let i = self.subgroup_at((key, row.provenance, row.phase), aggs);
        let group = &mut self.subgroups[i];
        for (j, (_, col)) in aggs.iter().enumerate() {
            group.accumulators[j].update_signed(row.tuple.value(*col), row.sign as i64);
        }
    }

    /// Fold one partial-state row (mode `Final`): `aggs[i].1` is the
    /// column at which the i-th aggregate's partial state begins.
    pub fn update_partial(
        &mut self,
        row: &TaggedTuple,
        group_by: &[usize],
        aggs: &[(AggFunc, usize)],
    ) {
        let key: Vec<Value> = group_by
            .iter()
            .map(|c| row.tuple.value(*c).clone())
            .collect();
        let i = self.subgroup_at((key, row.provenance, row.phase), aggs);
        let group = &mut self.subgroups[i];
        for (j, (f, col)) in aggs.iter().enumerate() {
            let width = f.partial_width();
            let state: Vec<Value> = (0..width)
                .map(|k| row.tuple.value(col + k).clone())
                .collect();
            group.accumulators[j].merge_partial_signed(&state, row.sign as i64);
        }
    }

    /// Fold a whole columnar batch of raw input rows (modes `Single` and
    /// `Partial`).  Equivalent to [`Self::update_raw`] on every row in
    /// order; typed group columns resolve their sub-group through a
    /// per-batch signature cache instead of re-materializing the key.
    pub fn update_raw_batch(
        &mut self,
        batch: &ColumnarBatch,
        group_by: &[usize],
        aggs: &[(AggFunc, usize)],
    ) {
        self.update_batch(batch, group_by, aggs, false);
    }

    /// Fold a whole columnar batch of partial-state rows (mode `Final`).
    pub fn update_partial_batch(
        &mut self,
        batch: &ColumnarBatch,
        group_by: &[usize],
        aggs: &[(AggFunc, usize)],
    ) {
        self.update_batch(batch, group_by, aggs, true);
    }

    fn update_batch(
        &mut self,
        batch: &ColumnarBatch,
        group_by: &[usize],
        aggs: &[(AggFunc, usize)],
        partial: bool,
    ) {
        // Signature cache: within one batch a column's cells are uniformly
        // typed, so equal (bits / pool id) signatures imply equal key
        // values and the full key lookup can be skipped.  Columns demoted
        // to untyped cells fall back to the full lookup per row.
        let typed = group_by
            .iter()
            .all(|c| !matches!(batch.column(*c).data(), ColumnData::Values(_)));
        // Keyed by signature alone, looked up by slice (no per-row
        // allocation on a hit); the rare signature shared by rows with
        // different provenance/phase tags keeps one entry per tag.
        let mut cache: HashMap<Vec<u64>, Vec<(NodeSet, Phase, usize)>> = HashMap::new();
        let mut sig: Vec<u64> = Vec::with_capacity(group_by.len());
        for r in 0..batch.len() {
            let provenance = batch.provenance_at(r);
            let phase = batch.phase_at(r);
            let i = if typed {
                sig.clear();
                for c in group_by {
                    sig.push(match batch.column(*c).data() {
                        ColumnData::Int(v) => v[r] as u64,
                        ColumnData::Double(v) => v[r].to_bits(),
                        ColumnData::Str(v) => v[r] as u64,
                        ColumnData::Values(_) => unreachable!("checked typed above"),
                    });
                }
                let hit = cache
                    .get(sig.as_slice())
                    .and_then(|tags| {
                        tags.iter()
                            .find(|(p, ph, _)| *p == provenance && *ph == phase)
                    })
                    .map(|(_, _, i)| *i);
                if let Some(i) = hit {
                    i
                } else {
                    let key: Vec<Value> = group_by.iter().map(|c| batch.value_at(r, *c)).collect();
                    let i = self.subgroup_at((key, provenance, phase), aggs);
                    cache
                        .entry(sig.clone())
                        .or_default()
                        .push((provenance, phase, i));
                    i
                }
            } else {
                let key: Vec<Value> = group_by.iter().map(|c| batch.value_at(r, *c)).collect();
                self.subgroup_at((key, provenance, phase), aggs)
            };
            let sign = batch.sign_at(r) as i64;
            let group = &mut self.subgroups[i];
            if partial {
                for (j, (f, col)) in aggs.iter().enumerate() {
                    let width = f.partial_width();
                    let state: Vec<Value> =
                        (0..width).map(|k| batch.value_at(r, col + k)).collect();
                    group.accumulators[j].merge_partial_signed(&state, sign);
                }
            } else {
                for (j, (_, col)) in aggs.iter().enumerate() {
                    group.accumulators[j].update_signed(&batch.value_at(r, *col), sign);
                }
            }
        }
    }

    /// Drop every sub-group whose provenance intersects `failed`; returns
    /// the number of sub-groups dropped.
    pub fn purge_tainted(&mut self, failed: &NodeSet) -> usize {
        let subgroups = &mut self.subgroups;
        let mut dropped = 0;
        self.index.retain(|(_, provenance, _), i| {
            if provenance.intersects(failed) {
                subgroups[*i].alive = false;
                dropped += 1;
                false
            } else {
                true
            }
        });
        dropped
    }

    /// Emit every sub-group that has not been emitted yet, marking it
    /// emitted.  `partial` selects between the mergeable partial layout
    /// and the final scalar layout.  Output rows are tagged with the
    /// sub-group's provenance plus `node`, at `phase`.
    pub fn emit_unemitted(
        &mut self,
        partial: bool,
        node: NodeId,
        phase: Phase,
    ) -> Vec<TaggedTuple> {
        let mut order: Vec<usize> = (0..self.subgroups.len())
            .filter(|&i| {
                let g = &self.subgroups[i];
                g.alive && !g.emitted
            })
            .collect();
        // Deterministic emission order (group key, then phase; the stable
        // sort keeps insertion order among ties).
        order.sort_by(|&a, &b| {
            let (ga, gb) = (&self.subgroups[a], &self.subgroups[b]);
            ga.key.cmp(&gb.key).then_with(|| ga.phase.cmp(&gb.phase))
        });
        let mut out = Vec::with_capacity(order.len());
        for i in order {
            let group = &mut self.subgroups[i];
            group.emitted = true;
            let mut values = group.key.clone();
            for acc in &group.accumulators {
                if partial {
                    values.extend(acc.partial_values());
                } else {
                    values.push(acc.final_value());
                }
            }
            let mut provenance = group.provenance;
            provenance.insert(node);
            // Emitted states are assertions: any retractions the
            // sub-group absorbed are already folded into its values.
            out.push(TaggedTuple {
                tuple: Tuple::new(values),
                provenance,
                phase,
                sign: 1,
            });
        }
        out
    }

    /// Merge-and-finalise: collapse all sub-groups (regardless of
    /// provenance/phase) by group key and return final values.  This is
    /// the executor's query-completion path for the top-level
    /// `Single`/`Final` aggregate — it runs exactly once, when the
    /// initiator's `Output` segment closes, merging the per-provenance
    /// sub-groups into the duplicate-free answer.  Unit tests also use it
    /// to validate accumulator algebra directly.  Sub-groups merge in
    /// insertion order, keeping floating-point folds deterministic.
    pub fn collapsed_final(&self, aggs: &[(AggFunc, usize)]) -> Vec<Tuple> {
        let mut merged: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        for group in self.subgroups.iter().filter(|g| g.alive) {
            let accs = merged
                .entry(group.key.clone())
                .or_insert_with(|| aggs.iter().map(|(f, _)| Accumulator::new(*f)).collect());
            for (i, acc) in group.accumulators.iter().enumerate() {
                accs[i].merge_partial(&acc.partial_values());
            }
        }
        let mut out: Vec<Tuple> = merged
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(accs.iter().map(Accumulator::final_value));
                Tuple::new(key)
            })
            .collect();
        out.sort();
        out
    }
}

// ---------------------------------------------------------------------------
// Rehash / Ship buffering and output caching
// ---------------------------------------------------------------------------

/// State of one `Rehash` or `Ship` operator instance: the per-destination
/// output buffers awaiting a full batch, and (when recovery support is
/// enabled) the cache of everything sent, used to re-create data that had
/// been sent to a failed node.  Both live as [`TupleBatch`]es, so the
/// wire size of a flushed batch is read off the columns' running
/// dictionary accounting rather than recomputed from its rows.
#[derive(Clone, Debug, Default)]
pub struct RehashState {
    buffers: HashMap<NodeId, TupleBatch>,
    cache: HashMap<NodeId, TupleBatch>,
    cache_enabled: bool,
}

impl RehashState {
    /// Fresh state; `cache_enabled` mirrors the engine's recovery-support
    /// switch.
    pub fn new(cache_enabled: bool) -> RehashState {
        RehashState {
            cache_enabled,
            ..RehashState::default()
        }
    }

    /// Append a row destined for `dest`, returning the buffer length after
    /// insertion (the executor flushes when this reaches the batch size).
    pub fn buffer(&mut self, dest: NodeId, row: TaggedTuple) -> usize {
        if self.cache_enabled {
            self.cache.entry(dest).or_default().push(row.clone());
        }
        let buf = self.buffers.entry(dest).or_default();
        buf.push(row);
        buf.len()
    }

    /// Append row `row` of a columnar batch destined for `dest` without
    /// materializing it, returning the buffer length after insertion.
    pub fn buffer_from(&mut self, dest: NodeId, src: &ColumnarBatch, row: usize) -> usize {
        if self.cache_enabled {
            self.cache.entry(dest).or_default().push_row_from(src, row);
        }
        let buf = self.buffers.entry(dest).or_default();
        buf.push_row_from(src, row);
        buf.len()
    }

    /// Take (and clear) the pending buffer for `dest`.
    pub fn take_buffer(&mut self, dest: NodeId) -> Vec<TaggedTuple> {
        self.take_buffer_batch(dest).rows()
    }

    /// Take (and clear) the pending buffer for `dest` as a batch.
    pub fn take_buffer_batch(&mut self, dest: NodeId) -> TupleBatch {
        self.buffers.remove(&dest).unwrap_or_default()
    }

    /// Destinations that currently have pending rows.
    pub fn pending_destinations(&self) -> Vec<NodeId> {
        let mut dests: Vec<NodeId> = self
            .buffers
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(d, _)| *d)
            .collect();
        dests.sort_unstable();
        dests
    }

    /// Remove and return the untainted rows cached as having been sent to
    /// `dest` — exactly the rows recovery stage 4 must re-transmit.  The
    /// entries are *consumed*: re-buffering re-caches each row under its
    /// new destination, and a later recovery round must not find (and
    /// duplicate) the stale entries still keyed to the failed node, so no
    /// non-consuming variant is offered.
    pub fn take_cached_for(&mut self, dest: NodeId, failed: &NodeSet) -> Vec<TaggedTuple> {
        self.take_cached_batch_for(dest, failed).rows()
    }

    /// Batch variant of [`Self::take_cached_for`]: tainted rows for
    /// `dest` stay cached (until purged), untainted ones are returned.
    pub fn take_cached_batch_for(&mut self, dest: NodeId, failed: &NodeSet) -> TupleBatch {
        let Some(batch) = self.cache.remove(&dest) else {
            return TupleBatch::new();
        };
        let untainted: Vec<bool> = batch
            .columnar()
            .provenance_column()
            .iter()
            .map(|p| !p.intersects(failed))
            .collect();
        if untainted.iter().all(|u| *u) {
            return batch;
        }
        let tainted: Vec<bool> = untainted.iter().map(|u| !*u).collect();
        let mut keep = batch.clone();
        keep.columnar_mut().retain(&tainted);
        if !keep.is_empty() {
            self.cache.insert(dest, keep);
        }
        let mut out = batch;
        out.columnar_mut().retain(&untainted);
        out
    }

    /// Drop tainted rows from the cache and from the pending buffers;
    /// returns how many *logical* rows were dropped.  When the cache is
    /// enabled every pending row is also cached, so only the cache drops
    /// are counted — counting both would tally the same row twice.
    pub fn purge_tainted(&mut self, failed: &NodeSet) -> usize {
        let cache_dropped = Self::purge_map(&mut self.cache, failed);
        let buffer_dropped = Self::purge_map(&mut self.buffers, failed);
        if self.cache_enabled {
            cache_dropped
        } else {
            buffer_dropped
        }
    }

    fn purge_map(map: &mut HashMap<NodeId, TupleBatch>, failed: &NodeSet) -> usize {
        let mut dropped = 0;
        for batch in map.values_mut() {
            let keep: Vec<bool> = batch
                .columnar()
                .provenance_column()
                .iter()
                .map(|p| !p.intersects(failed))
                .collect();
            let before = batch.len();
            batch.columnar_mut().retain(&keep);
            dropped += before - batch.len();
        }
        map.retain(|_, b| !b.is_empty());
        dropped
    }

    /// Number of rows currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.values().map(TupleBatch::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::Value;

    fn tagged(vals: Vec<Value>, node: u16) -> TaggedTuple {
        TaggedTuple::scanned(Tuple::new(vals), NodeId(node), 0)
    }

    #[test]
    fn symmetric_join_finds_matches_in_either_arrival_order() {
        let mut j = JoinState::new();
        let node = NodeId(9);
        // Left arrives first: no match yet.
        let out = j.process(
            0,
            tagged(vec![Value::Int(1), Value::str("a")], 0),
            &[0],
            &[0],
            node,
        );
        assert!(out.is_empty());
        // Matching right arrives: one result.
        let out = j.process(
            1,
            tagged(vec![Value::Int(1), Value::str("x")], 1),
            &[0],
            &[0],
            node,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].tuple.values(),
            &[
                Value::Int(1),
                Value::str("a"),
                Value::Int(1),
                Value::str("x")
            ]
        );
        assert!(out[0].provenance.contains(NodeId(0)));
        assert!(out[0].provenance.contains(NodeId(1)));
        assert!(out[0].provenance.contains(node));
        // A second left with the same key joins against the stored right.
        let out = j.process(
            0,
            tagged(vec![Value::Int(1), Value::str("b")], 2),
            &[0],
            &[0],
            node,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn join_purge_drops_only_tainted_rows() {
        let mut j = JoinState::new();
        let node = NodeId(9);
        j.process(0, tagged(vec![Value::Int(1)], 0), &[0], &[0], node);
        j.process(0, tagged(vec![Value::Int(2)], 5), &[0], &[0], node);
        j.process(1, tagged(vec![Value::Int(3)], 5), &[0], &[0], node);
        let dropped = j.purge_tainted(&NodeSet::singleton(NodeId(5)));
        assert_eq!(dropped, 2);
        assert_eq!(j.len(), 1);
        assert!(!j.is_empty());
    }

    #[test]
    fn purged_join_rows_never_match_again() {
        // Tombstoned rows must be invisible to later probes.
        let mut j = JoinState::new();
        let node = NodeId(9);
        j.process(
            0,
            tagged(vec![Value::Int(1), Value::str("dead")], 5),
            &[0],
            &[0],
            node,
        );
        j.process(
            0,
            tagged(vec![Value::Int(1), Value::str("live")], 0),
            &[0],
            &[0],
            node,
        );
        j.purge_tainted(&NodeSet::singleton(NodeId(5)));
        let out = j.process(1, tagged(vec![Value::Int(1)], 1), &[0], &[0], node);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple.value(1), &Value::str("live"));
    }

    #[test]
    fn join_batch_path_matches_row_path() {
        // Feed the same rows through the row API and the batch API and
        // compare outputs and state sizes.
        let node = NodeId(9);
        let lefts: Vec<TaggedTuple> = (0..6)
            .map(|i| tagged(vec![Value::Int(i % 3), Value::str(format!("l{i}"))], 0))
            .collect();
        let rights: Vec<TaggedTuple> = (0..4)
            .map(|i| tagged(vec![Value::str(format!("r{i}")), Value::Int(i % 2)], 1))
            .collect();

        let mut row_join = JoinState::new();
        let mut row_out = Vec::new();
        for l in &lefts {
            row_out.extend(row_join.process(0, l.clone(), &[0], &[1], node));
        }
        for r in &rights {
            row_out.extend(row_join.process(1, r.clone(), &[0], &[1], node));
        }

        let mut batch_join = JoinState::new();
        let left_batch = ColumnarBatch::from_tuples(
            2,
            lefts.iter().map(|t| t.tuple.clone()),
            1,
            NodeSet::singleton(NodeId(0)),
            0,
        );
        let right_batch = ColumnarBatch::from_tuples(
            2,
            rights.iter().map(|t| t.tuple.clone()),
            1,
            NodeSet::singleton(NodeId(1)),
            0,
        );
        let mut batch_out = Vec::new();
        let out = batch_join.process_batch(0, &left_batch, &[0], &[1], node);
        batch_out.extend((0..out.len()).map(|i| out.tuple_at(i)));
        let out = batch_join.process_batch(1, &right_batch, &[0], &[1], node);
        batch_out.extend((0..out.len()).map(|i| out.tuple_at(i)));

        let row_tuples: Vec<Tuple> = row_out.iter().map(|t| t.tuple.clone()).collect();
        assert_eq!(row_tuples, batch_out);
        assert_eq!(row_join.len(), batch_join.len());
    }

    #[test]
    fn accumulators_compute_sql_semantics() {
        let mut count = Accumulator::new(AggFunc::Count);
        let mut sum = Accumulator::new(AggFunc::Sum);
        let mut min = Accumulator::new(AggFunc::Min);
        let mut max = Accumulator::new(AggFunc::Max);
        let mut avg = Accumulator::new(AggFunc::Avg);
        for v in [3i64, 1, 4, 1, 5] {
            let val = Value::Int(v);
            count.update(&val);
            sum.update(&val);
            min.update(&val);
            max.update(&val);
            avg.update(&val);
        }
        assert_eq!(count.final_value(), Value::Int(5));
        assert_eq!(sum.final_value(), Value::Int(14));
        assert_eq!(min.final_value(), Value::Int(1));
        assert_eq!(max.final_value(), Value::Int(5));
        assert_eq!(avg.final_value(), Value::Double(2.8));
    }

    #[test]
    fn partial_then_merge_equals_direct_aggregation() {
        // Split the input across two partial accumulators, merge, compare
        // against a single accumulator over the whole input.
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            let input: Vec<i64> = vec![10, -3, 7, 7, 0, 42];
            let mut direct = Accumulator::new(func);
            for v in &input {
                direct.update(&Value::Int(*v));
            }
            let mut p1 = Accumulator::new(func);
            let mut p2 = Accumulator::new(func);
            for (i, v) in input.iter().enumerate() {
                if i % 2 == 0 {
                    p1.update(&Value::Int(*v));
                } else {
                    p2.update(&Value::Int(*v));
                }
            }
            let mut merged = Accumulator::new(func);
            merged.merge_partial(&p1.partial_values());
            merged.merge_partial(&p2.partial_values());
            assert_eq!(merged.final_value(), direct.final_value(), "{func:?}");
        }
    }

    #[test]
    fn signed_updates_invert_insertions_exactly() {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg] {
            let mut acc = Accumulator::new(func);
            assert!(acc.is_subtractable());
            for v in [10i64, -3, 7] {
                acc.update(&Value::Int(v));
            }
            let snapshot = acc.partial_values();
            // Fold three more rows in, then retract them: the state must
            // return to the snapshot.
            for v in [5i64, 5, 20] {
                acc.update_signed(&Value::Int(v), 1);
            }
            for v in [5i64, 5, 20] {
                acc.update_signed(&Value::Int(v), -1);
            }
            assert_eq!(acc.partial_values(), snapshot, "{func:?}");
            // Retracting a whole partial state works the same way.
            let mut other = Accumulator::new(func);
            other.update(&Value::Int(100));
            acc.merge_partial_signed(&other.partial_values(), 1);
            acc.merge_partial_signed(&other.partial_values(), -1);
            assert_eq!(acc.partial_values(), snapshot, "{func:?}");
        }
        assert!(!Accumulator::new(AggFunc::Min).is_subtractable());
        assert!(!Accumulator::new(AggFunc::Max).is_subtractable());
    }

    #[test]
    #[should_panic(expected = "MIN cannot fold a retraction")]
    fn min_rejects_retractions() {
        let mut acc = Accumulator::new(AggFunc::Min);
        acc.update_signed(&Value::Int(1), -1);
    }

    #[test]
    fn agg_state_folds_row_signs() {
        let mut agg = AggState::new();
        let aggs = [(AggFunc::Sum, 1), (AggFunc::Count, 1)];
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(10)], 0),
            &[0],
            &aggs,
        );
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(4)], 0).with_sign(-1),
            &[0],
            &aggs,
        );
        let rows = agg.collapsed_final(&aggs);
        assert_eq!(
            rows[0].values(),
            &[Value::str("g"), Value::Int(6), Value::Int(0)]
        );
    }

    #[test]
    fn agg_state_subgroups_by_provenance_and_emission_is_once() {
        let mut agg = AggState::new();
        let aggs = [(AggFunc::Sum, 1)];
        // Two rows in the same group but with different provenance → two
        // sub-groups.
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(10)], 0),
            &[0],
            &aggs,
        );
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(5)], 1),
            &[0],
            &aggs,
        );
        assert_eq!(agg.subgroup_count(), 2);
        let emitted = agg.emit_unemitted(true, NodeId(7), 0);
        assert_eq!(emitted.len(), 2);
        // Nothing new to emit on a second close.
        assert!(agg.emit_unemitted(true, NodeId(7), 0).is_empty());
        // New input after emission creates a fresh sub-group (new phase)
        // and only that one is emitted next time.
        let mut late = tagged(vec![Value::str("g"), Value::Int(1)], 2);
        late.phase = 1;
        agg.update_raw(&late, &[0], &aggs);
        let emitted = agg.emit_unemitted(true, NodeId(7), 1);
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].phase, 1);
    }

    #[test]
    fn agg_purge_drops_tainted_subgroups() {
        let mut agg = AggState::new();
        let aggs = [(AggFunc::Count, 0)];
        agg.update_raw(&tagged(vec![Value::str("a")], 0), &[0], &aggs);
        agg.update_raw(&tagged(vec![Value::str("b")], 3), &[0], &aggs);
        assert_eq!(agg.purge_tainted(&NodeSet::singleton(NodeId(3))), 1);
        assert_eq!(agg.subgroup_count(), 1);
    }

    #[test]
    fn collapsed_final_merges_across_subgroups() {
        let mut agg = AggState::new();
        let aggs = [(AggFunc::Sum, 1), (AggFunc::Count, 1)];
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(10)], 0),
            &[0],
            &aggs,
        );
        agg.update_raw(
            &tagged(vec![Value::str("g"), Value::Int(5)], 1),
            &[0],
            &aggs,
        );
        agg.update_raw(
            &tagged(vec![Value::str("h"), Value::Int(2)], 1),
            &[0],
            &aggs,
        );
        let rows = agg.collapsed_final(&aggs);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].values(),
            &[Value::str("g"), Value::Int(15), Value::Int(2)]
        );
        assert_eq!(
            rows[1].values(),
            &[Value::str("h"), Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn agg_batch_path_matches_row_path() {
        // The batch fold (with its signature cache) must land in exactly
        // the same sub-groups as row-at-a-time folding.
        let aggs = [(AggFunc::Sum, 2), (AggFunc::Avg, 2), (AggFunc::Count, 0)];
        let rows: Vec<TaggedTuple> = (0..40)
            .map(|i| {
                tagged(
                    vec![
                        Value::str(if i % 2 == 0 { "A" } else { "B" }),
                        Value::Int(i % 3),
                        Value::Double(i as f64 * 0.5),
                    ],
                    (i % 4) as u16,
                )
                .with_sign(if i % 7 == 0 { -1 } else { 1 })
            })
            .collect();
        let mut by_row = AggState::new();
        for r in &rows {
            by_row.update_raw(r, &[0, 1], &aggs);
        }
        let mut by_batch = AggState::new();
        for chunk in rows.chunks(16) {
            let mut batch = ColumnarBatch::new(3);
            for r in chunk {
                batch.push_row(r.tuple.values(), r.sign, r.provenance, r.phase);
            }
            by_batch.update_raw_batch(&batch, &[0, 1], &aggs);
        }
        assert_eq!(by_row.subgroup_count(), by_batch.subgroup_count());
        assert_eq!(
            by_row.collapsed_final(&aggs),
            by_batch.collapsed_final(&aggs)
        );
        assert_eq!(
            by_row.emit_unemitted(true, NodeId(7), 0),
            by_batch.emit_unemitted(true, NodeId(7), 0)
        );
    }

    #[test]
    fn rehash_buffers_and_cache() {
        let mut r = RehashState::new(true);
        for i in 0..5 {
            let len = r.buffer(NodeId(1), tagged(vec![Value::Int(i)], 0));
            assert_eq!(len, i as usize + 1);
        }
        r.buffer(NodeId(2), tagged(vec![Value::Int(99)], 3));
        assert_eq!(r.pending_destinations(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(r.take_buffer(NodeId(1)).len(), 5);
        assert!(r.take_buffer(NodeId(1)).is_empty());
        assert_eq!(r.cache_len(), 6);

        // Stage-4 retransmission: cached rows for a failed destination,
        // excluding tainted ones.
        let failed = NodeSet::singleton(NodeId(3));
        let resend = r.take_cached_for(NodeId(2), &failed);
        assert!(resend.is_empty(), "row destined to n2 is itself tainted");
        let resend = r.take_cached_for(NodeId(1), &failed);
        assert_eq!(resend.len(), 5);
        // The consumed entries are gone; the tainted n2 row remains until
        // purged.
        assert_eq!(r.cache_len(), 1);
        assert_eq!(r.purge_tainted(&failed), 1);
        assert_eq!(r.cache_len(), 0);
    }

    #[test]
    fn rehash_without_cache_keeps_nothing() {
        let mut r = RehashState::new(false);
        r.buffer(NodeId(1), tagged(vec![Value::Int(1)], 0));
        assert_eq!(r.cache_len(), 0);
    }

    #[test]
    fn take_cached_for_consumes_entries() {
        // Regression: retransmission must consume the cache entries keyed
        // to the failed destination, or a second recovery round would
        // re-send (and duplicate) them.
        let mut r = RehashState::new(true);
        r.buffer(NodeId(1), tagged(vec![Value::Int(1)], 0));
        r.buffer(NodeId(1), tagged(vec![Value::Int(2)], 5));
        r.buffer(NodeId(2), tagged(vec![Value::Int(3)], 0));
        let failed = NodeSet::singleton(NodeId(5));
        let taken = r.take_cached_for(NodeId(1), &failed);
        assert_eq!(taken.len(), 1, "only the untainted row for n1");
        // A second call finds nothing left for that destination.
        assert!(r.take_cached_for(NodeId(1), &failed).is_empty());
        // Entries for other destinations are untouched.
        assert_eq!(r.take_cached_for(NodeId(2), &failed).len(), 1);
    }

    #[test]
    fn purge_counts_each_logical_row_once() {
        // Regression: a tainted row that is both cached and still pending
        // in a buffer must be counted as ONE dropped row, not two.
        let mut r = RehashState::new(true);
        r.buffer(NodeId(1), tagged(vec![Value::Int(1)], 7));
        let failed = NodeSet::singleton(NodeId(7));
        assert_eq!(r.purge_tainted(&failed), 1);
        assert_eq!(r.cache_len(), 0);
        assert!(r.take_buffer(NodeId(1)).is_empty());

        // Without a cache, pending-buffer drops are what gets counted.
        let mut r = RehashState::new(false);
        r.buffer(NodeId(1), tagged(vec![Value::Int(1)], 7));
        r.buffer(NodeId(2), tagged(vec![Value::Int(2)], 0));
        assert_eq!(r.purge_tainted(&failed), 1);
        assert_eq!(r.take_buffer(NodeId(2)).len(), 1);
    }

    #[test]
    fn extremum_sketch_is_exact_until_exhaustion() {
        let mut s = ExtremumSketch::new(ExtremumKind::Min, 4);
        for v in [7, 3, 9, 1, 5, 8, 2, 6] {
            s.update_signed(&Value::Int(v), 1);
        }
        // Tracks the 4 smallest {1,2,3,5}; the rest are overflow.
        assert_eq!(s.best(), Some(&Value::Int(1)));
        assert_eq!(s.support(), 8);
        // Retract the minimum twice: the sketch still answers exactly
        // from the runners-up — where a bare accumulator would already
        // force a recompute.
        s.update_signed(&Value::Int(1), -1);
        assert_eq!(s.best(), Some(&Value::Int(2)));
        s.update_signed(&Value::Int(2), -1);
        assert_eq!(s.best(), Some(&Value::Int(3)));
        assert!(!s.is_exhausted());
        // Drain the remaining tracked values: overflow rows survive but
        // their order was discarded — the sketch declines to answer.
        s.update_signed(&Value::Int(3), -1);
        s.update_signed(&Value::Int(5), -1);
        assert!(s.is_exhausted());
        assert_eq!(s.best(), None);
        assert_eq!(s.support(), 4);
    }

    #[test]
    fn extremum_sketch_never_promotes_past_unknown_overflow() {
        let mut s = ExtremumSketch::new(ExtremumKind::Min, 2);
        for v in 1..=10 {
            s.update_signed(&Value::Int(v), 1);
        }
        // Tracked {1,2}, overflow 3..=10.
        for v in [1, 2] {
            s.update_signed(&Value::Int(v), -1);
        }
        assert!(s.is_exhausted());
        // A fresh value cannot become "best": overflow rows of unknown
        // rank (3..=10) may beat it.  It must join the overflow until a
        // recompute rebuilds the sketch.
        s.update_signed(&Value::Int(100), 1);
        assert!(s.is_exhausted());
        assert_eq!(s.best(), None);
        // A strictly-better-than-boundary value, by contrast, is always
        // safe to track.
        let mut t = ExtremumSketch::new(ExtremumKind::Min, 2);
        for v in [5, 6, 7, 8] {
            t.update_signed(&Value::Int(v), 1);
        }
        t.update_signed(&Value::Int(1), 1);
        assert_eq!(t.best(), Some(&Value::Int(1)));
    }

    #[test]
    fn extremum_sketch_max_mirrors_min() {
        let mut s = ExtremumSketch::new(ExtremumKind::Max, 3);
        for v in [4, 9, 2, 7, 5] {
            s.update_signed(&Value::Int(v), 1);
        }
        assert_eq!(s.best(), Some(&Value::Int(9)));
        s.update_signed(&Value::Int(9), -1);
        assert_eq!(s.best(), Some(&Value::Int(7)));
        // Deleting an untracked (small) value only touches the overflow.
        s.update_signed(&Value::Int(2), -1);
        assert_eq!(s.best(), Some(&Value::Int(7)));
        assert_eq!(s.support(), 3);
        // Duplicates share one tracked slot.
        s.update_signed(&Value::Int(7), 1);
        s.update_signed(&Value::Int(7), -1);
        assert_eq!(s.best(), Some(&Value::Int(7)));
        // Nulls never participate.
        s.update_signed(&Value::Null, 1);
        assert_eq!(s.support(), 3);
    }

    #[test]
    fn buffer_from_matches_row_buffering() {
        // buffer_from on a columnar source must leave the same buffers and
        // cache as pushing the materialized rows.
        let rows: Vec<TaggedTuple> = (0..6)
            .map(|i| tagged(vec![Value::Int(i), Value::str(format!("s{}", i % 2))], 0))
            .collect();
        let mut batch = ColumnarBatch::new(2);
        for r in &rows {
            batch.push_row(r.tuple.values(), r.sign, r.provenance, r.phase);
        }
        let mut by_row = RehashState::new(true);
        let mut by_batch = RehashState::new(true);
        for (i, r) in rows.iter().enumerate() {
            let dest = NodeId((i % 2) as u16);
            let a = by_row.buffer(dest, r.clone());
            let b = by_batch.buffer_from(dest, &batch, i);
            assert_eq!(a, b);
        }
        for dest in [NodeId(0), NodeId(1)] {
            assert_eq!(by_row.take_buffer(dest), by_batch.take_buffer(dest));
        }
        assert_eq!(by_row.cache_len(), by_batch.cache_len());
    }
}
