//! Scalar expressions, predicates and aggregate functions.
//!
//! The paper's engine evaluates sargable predicates at the leaf scans,
//! arbitrary selections over intermediate results, scalar function
//! evaluation (arithmetic, string concatenation — the STBenchmark
//! `Concatenate` scenario), and the usual SQL aggregates.  All of those
//! are expressed over column *indices* of the operator's input, which is
//! how the physical plan refers to data (names are resolved by the
//! optimizer).

use orchestra_common::{ColumnData, ColumnarBatch, Tuple, Value};
use std::cmp::Ordering;

/// Comparison operators usable in predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Apply the comparison to two values (using the total order on
    /// [`Value`]).
    pub fn eval(&self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }

    /// Apply the comparison to a precomputed ordering (the column-wise
    /// paths compare typed cells directly and feed the ordering here).
    fn eval_ord(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A boolean predicate over a tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true (useful as a neutral element).
    True,
    /// Compare column `column` against a constant.
    Compare {
        /// Input column index.
        column: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Compare two columns of the same tuple.
    CompareColumns {
        /// Left column index.
        left: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right column index.
        right: usize,
    },
    /// `column BETWEEN low AND high` (inclusive).
    Between {
        /// Input column index.
        column: usize,
        /// Lower bound (inclusive).
        low: Value,
        /// Upper bound (inclusive).
        high: Value,
    },
    /// Conjunction of predicates.
    And(Vec<Predicate>),
    /// Disjunction of predicates.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `column op value`.
    pub fn cmp(column: usize, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column,
            op,
            value: value.into(),
        }
    }

    /// Evaluate the predicate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Compare { column, op, value } => op.eval(tuple.value(*column), value),
            Predicate::CompareColumns { left, op, right } => {
                op.eval(tuple.value(*left), tuple.value(*right))
            }
            Predicate::Between { column, low, high } => {
                let v = tuple.value(*column);
                v >= low && v <= high
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(tuple)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(tuple)),
            Predicate::Not(p) => !p.eval(tuple),
        }
    }

    /// Estimated selectivity used by the optimizer's cost model when no
    /// better statistics exist (textbook defaults).
    ///
    /// The result is always a probability: every combinator clamps into
    /// `[0.0, 1.0]`, so floating-point drift in deeply nested `And`/`Or`/
    /// `Not` trees can never escape the unit interval.
    pub fn estimated_selectivity(&self) -> f64 {
        let s = match self {
            Predicate::True => 1.0,
            Predicate::Compare { op, .. } | Predicate::CompareColumns { op, .. } => match op {
                CmpOp::Eq => 0.1,
                CmpOp::Ne => 0.9,
                _ => 0.33,
            },
            Predicate::Between { .. } => 0.25,
            Predicate::And(ps) => ps
                .iter()
                .map(Predicate::estimated_selectivity)
                .product::<f64>(),
            Predicate::Or(ps) => {
                let none: f64 = ps.iter().map(|p| 1.0 - p.estimated_selectivity()).product();
                1.0 - none
            }
            Predicate::Not(p) => 1.0 - p.estimated_selectivity(),
        };
        s.clamp(0.0, 1.0)
    }

    /// Evaluate the predicate over every row of a columnar batch at once,
    /// overwriting `mask` with one boolean per row.  Typed columns are
    /// compared cell-by-cell without materializing [`Value`]s; the result
    /// is exactly `batch.tuple_at(i)` fed through [`Predicate::eval`].
    pub fn eval_mask(&self, batch: &ColumnarBatch, mask: &mut Vec<bool>) {
        mask.clear();
        mask.resize(batch.len(), true);
        self.and_into(batch, mask);
    }

    /// AND this predicate's per-row result into `mask` (rows already
    /// false are skipped).
    fn and_into(&self, batch: &ColumnarBatch, mask: &mut [bool]) {
        match self {
            Predicate::True => {}
            Predicate::Compare { column, op, value } => {
                compare_const(batch, *column, *op, value, mask);
            }
            Predicate::Between { column, low, high } => {
                compare_const(batch, *column, CmpOp::Ge, low, mask);
                compare_const(batch, *column, CmpOp::Le, high, mask);
            }
            Predicate::CompareColumns { left, op, right } => {
                compare_columns(batch, *left, *op, *right, mask);
            }
            Predicate::And(ps) => {
                for p in ps {
                    p.and_into(batch, mask);
                }
            }
            Predicate::Or(ps) => {
                let mut any = vec![false; mask.len()];
                let mut scratch = vec![true; mask.len()];
                for p in ps {
                    scratch.fill(true);
                    p.and_into(batch, &mut scratch);
                    for (a, s) in any.iter_mut().zip(&scratch) {
                        *a |= *s;
                    }
                }
                for (m, a) in mask.iter_mut().zip(&any) {
                    *m &= *a;
                }
            }
            Predicate::Not(p) => {
                let mut scratch = vec![true; mask.len()];
                p.and_into(batch, &mut scratch);
                for (m, s) in mask.iter_mut().zip(&scratch) {
                    *m &= !*s;
                }
            }
        }
    }
}

/// Column-vs-constant comparison, AND-ed into `mask`.
fn compare_const(
    batch: &ColumnarBatch,
    column: usize,
    op: CmpOp,
    value: &Value,
    mask: &mut [bool],
) {
    match (batch.column(column).data(), value) {
        (ColumnData::Int(cells), Value::Int(c)) => {
            for (m, x) in mask.iter_mut().zip(cells) {
                if *m {
                    *m = op.eval_ord(x.cmp(c));
                }
            }
        }
        (ColumnData::Int(cells), Value::Double(c)) => {
            for (m, x) in mask.iter_mut().zip(cells) {
                if *m {
                    *m = op.eval_ord((*x as f64).total_cmp(c));
                }
            }
        }
        (ColumnData::Double(cells), Value::Int(c)) => {
            let c = *c as f64;
            for (m, x) in mask.iter_mut().zip(cells) {
                if *m {
                    *m = op.eval_ord(x.total_cmp(&c));
                }
            }
        }
        (ColumnData::Double(cells), Value::Double(c)) => {
            for (m, x) in mask.iter_mut().zip(cells) {
                if *m {
                    *m = op.eval_ord(x.total_cmp(c));
                }
            }
        }
        (ColumnData::Str(ids), Value::Str(s)) => {
            let pool = batch.pool();
            for (m, id) in mask.iter_mut().zip(ids) {
                if *m {
                    *m = op.eval_ord(pool.get(*id).cmp(s.as_str()));
                }
            }
        }
        (ColumnData::Values(cells), c) => {
            for (m, v) in mask.iter_mut().zip(cells) {
                if *m {
                    *m = op.eval(v, c);
                }
            }
        }
        // Remaining combinations pit a uniformly-typed column against a
        // constant of a different type rank: the ordering is decided by
        // rank alone and is the same for every row.
        (ColumnData::Int(_), c) => uniform(op, &Value::Int(0), c, mask),
        (ColumnData::Double(_), c) => uniform(op, &Value::Double(0.0), c, mask),
        (ColumnData::Str(_), c) => uniform(op, &Value::Str(String::new()), c, mask),
    }
}

/// AND a row-independent comparison result into the whole mask.
fn uniform(op: CmpOp, representative: &Value, c: &Value, mask: &mut [bool]) {
    if !op.eval(representative, c) {
        mask.fill(false);
    }
}

/// Column-vs-column comparison, AND-ed into `mask`.
fn compare_columns(batch: &ColumnarBatch, left: usize, op: CmpOp, right: usize, mask: &mut [bool]) {
    match (batch.column(left).data(), batch.column(right).data()) {
        (ColumnData::Int(a), ColumnData::Int(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = op.eval_ord(a[i].cmp(&b[i]));
                }
            }
        }
        (ColumnData::Int(a), ColumnData::Double(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = op.eval_ord((a[i] as f64).total_cmp(&b[i]));
                }
            }
        }
        (ColumnData::Double(a), ColumnData::Int(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = op.eval_ord(a[i].total_cmp(&(b[i] as f64)));
                }
            }
        }
        (ColumnData::Double(a), ColumnData::Double(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = op.eval_ord(a[i].total_cmp(&b[i]));
                }
            }
        }
        (ColumnData::Str(a), ColumnData::Str(b)) => {
            // Both columns intern into the batch's single pool, so equal
            // ids mean equal strings and distinct ids mean distinct
            // strings; only ordering comparisons must read the text.
            let pool = batch.pool();
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = match op {
                        CmpOp::Eq => a[i] == b[i],
                        CmpOp::Ne => a[i] != b[i],
                        _ => op.eval_ord(pool.get(a[i]).cmp(pool.get(b[i]))),
                    };
                }
            }
        }
        _ => {
            // Mixed-variant fallback (at least one side demoted to
            // untyped cells): compare materialized values row by row.
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = op.eval(&batch.value_at(i, left), &batch.value_at(i, right));
                }
            }
        }
    }
}

/// A scalar expression producing one output value per input tuple — the
/// engine's `Compute-function` operator evaluates a list of these.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Pass through input column `usize`.
    Column(usize),
    /// A literal constant.
    Literal(Value),
    /// Addition of two expressions.
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Subtraction.
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Multiplication.
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
    /// String concatenation of any number of expressions.
    Concat(Vec<ScalarExpr>),
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Column(i)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Value {
        match self {
            ScalarExpr::Column(i) => tuple.value(*i).clone(),
            ScalarExpr::Literal(v) => v.clone(),
            ScalarExpr::Add(a, b) => a.eval(tuple).add(&b.eval(tuple)),
            ScalarExpr::Sub(a, b) => a.eval(tuple).sub(&b.eval(tuple)),
            ScalarExpr::Mul(a, b) => a.eval(tuple).mul(&b.eval(tuple)),
            ScalarExpr::Concat(parts) => {
                let mut out = String::new();
                for p in parts {
                    out.push_str(&p.eval(tuple).to_string());
                }
                Value::Str(out)
            }
        }
    }

    /// Evaluate the expression for every row of a batch at once, producing
    /// one output value per row.  Matches [`ScalarExpr::eval`] applied to
    /// `batch.tuple_at(i)` exactly.
    pub fn eval_column(&self, batch: &ColumnarBatch) -> Vec<Value> {
        match self {
            ScalarExpr::Column(i) => match batch.column(*i).data() {
                ColumnData::Int(v) => v.iter().map(|x| Value::Int(*x)).collect(),
                ColumnData::Double(v) => v.iter().map(|x| Value::Double(*x)).collect(),
                ColumnData::Str(ids) => ids
                    .iter()
                    .map(|id| Value::Str(batch.pool().get(*id).to_string()))
                    .collect(),
                ColumnData::Values(v) => v.clone(),
            },
            ScalarExpr::Literal(v) => vec![v.clone(); batch.len()],
            ScalarExpr::Add(a, b) => binary_column(a, b, batch, Value::add),
            ScalarExpr::Sub(a, b) => binary_column(a, b, batch, Value::sub),
            ScalarExpr::Mul(a, b) => binary_column(a, b, batch, Value::mul),
            ScalarExpr::Concat(parts) => {
                let cols: Vec<Vec<Value>> = parts.iter().map(|p| p.eval_column(batch)).collect();
                (0..batch.len())
                    .map(|i| {
                        let mut out = String::new();
                        for c in &cols {
                            out.push_str(&c[i].to_string());
                        }
                        Value::Str(out)
                    })
                    .collect()
            }
        }
    }
}

/// Zip two evaluated argument columns through a binary value operation.
fn binary_column(
    a: &ScalarExpr,
    b: &ScalarExpr,
    batch: &ColumnarBatch,
    f: fn(&Value, &Value) -> Value,
) -> Vec<Value> {
    let left = a.eval_column(batch);
    let right = b.eval_column(batch);
    left.iter().zip(&right).map(|(x, y)| f(x, y)).collect()
}

/// SQL aggregate functions supported by the aggregation operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` (the input column is ignored).
    Count,
    /// `SUM(column)`.
    Sum,
    /// `MIN(column)`.
    Min,
    /// `MAX(column)`.
    Max,
    /// `AVG(column)` — carried as (sum, count) in partial aggregates.
    Avg,
}

impl AggFunc {
    /// Number of state columns this aggregate occupies in a *partial*
    /// aggregate's output (AVG needs sum and count).
    pub fn partial_width(&self) -> usize {
        match self {
            AggFunc::Avg => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn comparisons_follow_value_order() {
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Ge.eval(&Value::Double(2.0), &Value::Int(2)));
        assert!(CmpOp::Ne.eval(&Value::str("a"), &Value::str("b")));
    }

    #[test]
    fn predicate_evaluation() {
        let row = t(vec![Value::Int(5), Value::str("abc"), Value::Double(1.5)]);
        assert!(Predicate::cmp(0, CmpOp::Gt, 3i64).eval(&row));
        assert!(!Predicate::cmp(0, CmpOp::Gt, 7i64).eval(&row));
        assert!(Predicate::Between {
            column: 2,
            low: Value::Double(1.0),
            high: Value::Double(2.0)
        }
        .eval(&row));
        assert!(Predicate::And(vec![
            Predicate::cmp(0, CmpOp::Eq, 5i64),
            Predicate::cmp(1, CmpOp::Eq, "abc"),
        ])
        .eval(&row));
        assert!(Predicate::Or(vec![
            Predicate::cmp(0, CmpOp::Eq, 99i64),
            Predicate::cmp(1, CmpOp::Eq, "abc"),
        ])
        .eval(&row));
        assert!(Predicate::Not(Box::new(Predicate::cmp(0, CmpOp::Eq, 99i64))).eval(&row));
        assert!(Predicate::CompareColumns {
            left: 0,
            op: CmpOp::Gt,
            right: 2
        }
        .eval(&row));
        assert!(Predicate::True.eval(&row));
    }

    #[test]
    fn selectivity_estimates_are_probabilities() {
        let preds = [
            Predicate::True,
            Predicate::cmp(0, CmpOp::Eq, 1i64),
            Predicate::cmp(0, CmpOp::Lt, 1i64),
            Predicate::And(vec![
                Predicate::cmp(0, CmpOp::Eq, 1i64),
                Predicate::cmp(1, CmpOp::Lt, 2i64),
            ]),
            Predicate::Or(vec![
                Predicate::cmp(0, CmpOp::Eq, 1i64),
                Predicate::cmp(1, CmpOp::Lt, 2i64),
            ]),
            Predicate::Not(Box::new(Predicate::cmp(0, CmpOp::Eq, 1i64))),
        ];
        for p in preds {
            let s = p.estimated_selectivity();
            assert!((0.0..=1.0).contains(&s), "{s} out of range for {p:?}");
        }
    }

    #[test]
    fn deeply_nested_selectivity_stays_in_the_unit_interval() {
        // Regression: build pathological nestings of And/Or/Not and verify
        // the estimate never drifts outside [0, 1] at any depth.
        let mut p = Predicate::cmp(0, CmpOp::Eq, 1i64);
        for depth in 0..96 {
            p = match depth % 3 {
                0 => Predicate::And(vec![p, Predicate::cmp(1, CmpOp::Ne, 2i64)]),
                1 => Predicate::Or(vec![p, Predicate::Not(Box::new(Predicate::True))]),
                _ => Predicate::Not(Box::new(p)),
            };
            let s = p.estimated_selectivity();
            assert!(
                (0.0..=1.0).contains(&s),
                "selectivity {s} escaped [0, 1] at depth {depth}"
            );
        }
        // Wide conjunctions and disjunctions of extreme children saturate
        // at the interval's endpoints instead of drifting past them.
        let wide_and = Predicate::And(vec![Predicate::cmp(0, CmpOp::Eq, 1i64); 400]);
        assert_eq!(wide_and.estimated_selectivity(), 0.0);
        let wide_or = Predicate::Or(vec![Predicate::cmp(0, CmpOp::Lt, 1i64); 400]);
        assert_eq!(wide_or.estimated_selectivity(), 1.0);
    }

    #[test]
    fn scalar_expressions_evaluate() {
        let row = t(vec![Value::Int(10), Value::Double(0.1), Value::str("id")]);
        // extendedprice * (1 - discount)
        let expr = ScalarExpr::Mul(
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::Sub(
                Box::new(ScalarExpr::lit(1.0)),
                Box::new(ScalarExpr::col(1)),
            )),
        );
        assert_eq!(expr.eval(&row), Value::Double(9.0));
        let concat = ScalarExpr::Concat(vec![
            ScalarExpr::col(2),
            ScalarExpr::lit("-"),
            ScalarExpr::col(0),
        ]);
        assert_eq!(concat.eval(&row), Value::str("id-10"));
    }

    #[test]
    fn agg_partial_widths() {
        assert_eq!(AggFunc::Avg.partial_width(), 2);
        assert_eq!(AggFunc::Sum.partial_width(), 1);
        assert_eq!(AggFunc::Count.partial_width(), 1);
    }

    #[test]
    fn mask_and_column_evaluation_match_row_evaluation() {
        use orchestra_common::{ColumnarBatch, NodeSet};
        // Typed columns (int, double, str) plus a demoted mixed column,
        // exercising every fast path against the row-at-a-time oracle.
        let rows = vec![
            t(vec![
                Value::Int(1),
                Value::Double(0.5),
                Value::str("a"),
                Value::Int(7),
            ]),
            t(vec![
                Value::Int(2),
                Value::Double(1.5),
                Value::str("b"),
                Value::str("x"),
            ]),
            t(vec![
                Value::Int(3),
                Value::Double(2.5),
                Value::str("a"),
                Value::Null,
            ]),
            t(vec![
                Value::Int(4),
                Value::Double(3.5),
                Value::str("c"),
                Value::Double(2.0),
            ]),
        ];
        let batch = ColumnarBatch::from_tuples(4, rows.clone(), 1, NodeSet::default(), 0);
        let preds = [
            Predicate::cmp(0, CmpOp::Ge, 2i64),
            Predicate::cmp(0, CmpOp::Lt, 2.5f64),
            Predicate::cmp(1, CmpOp::Gt, 1i64),
            Predicate::cmp(2, CmpOp::Eq, "a"),
            Predicate::cmp(2, CmpOp::Gt, 1i64), // rank-uniform: Str > numeric
            Predicate::cmp(3, CmpOp::Eq, "x"),  // demoted column, generic path
            Predicate::Between {
                column: 1,
                low: Value::Double(1.0),
                high: Value::Double(3.0),
            },
            Predicate::CompareColumns {
                left: 0,
                op: CmpOp::Lt,
                right: 1,
            },
            Predicate::CompareColumns {
                left: 2,
                op: CmpOp::Eq,
                right: 2,
            },
            Predicate::CompareColumns {
                left: 0,
                op: CmpOp::Gt,
                right: 3,
            },
            Predicate::And(vec![
                Predicate::cmp(0, CmpOp::Gt, 1i64),
                Predicate::Or(vec![
                    Predicate::cmp(2, CmpOp::Eq, "a"),
                    Predicate::Not(Box::new(Predicate::cmp(1, CmpOp::Lt, 3.0f64))),
                ]),
            ]),
        ];
        let mut mask = Vec::new();
        for p in &preds {
            p.eval_mask(&batch, &mut mask);
            let oracle: Vec<bool> = rows.iter().map(|r| p.eval(r)).collect();
            assert_eq!(mask, oracle, "mask diverged for {p:?}");
        }
        let exprs = [
            ScalarExpr::col(2),
            ScalarExpr::Mul(
                Box::new(ScalarExpr::col(0)),
                Box::new(ScalarExpr::Sub(
                    Box::new(ScalarExpr::lit(1.0)),
                    Box::new(ScalarExpr::col(1)),
                )),
            ),
            ScalarExpr::Concat(vec![
                ScalarExpr::col(2),
                ScalarExpr::lit("-"),
                ScalarExpr::col(3),
            ]),
        ];
        for e in &exprs {
            let col = e.eval_column(&batch);
            let oracle: Vec<Value> = rows.iter().map(|r| e.eval(r)).collect();
            assert_eq!(col, oracle, "column diverged for {e:?}");
        }
    }
}
