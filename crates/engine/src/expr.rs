//! Scalar expressions, predicates and aggregate functions.
//!
//! The paper's engine evaluates sargable predicates at the leaf scans,
//! arbitrary selections over intermediate results, scalar function
//! evaluation (arithmetic, string concatenation — the STBenchmark
//! `Concatenate` scenario), and the usual SQL aggregates.  All of those
//! are expressed over column *indices* of the operator's input, which is
//! how the physical plan refers to data (names are resolved by the
//! optimizer).

use orchestra_common::{Tuple, Value};

/// Comparison operators usable in predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Apply the comparison to two values (using the total order on
    /// [`Value`]).
    pub fn eval(&self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }
}

/// A boolean predicate over a tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true (useful as a neutral element).
    True,
    /// Compare column `column` against a constant.
    Compare {
        /// Input column index.
        column: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Compare two columns of the same tuple.
    CompareColumns {
        /// Left column index.
        left: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right column index.
        right: usize,
    },
    /// `column BETWEEN low AND high` (inclusive).
    Between {
        /// Input column index.
        column: usize,
        /// Lower bound (inclusive).
        low: Value,
        /// Upper bound (inclusive).
        high: Value,
    },
    /// Conjunction of predicates.
    And(Vec<Predicate>),
    /// Disjunction of predicates.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `column op value`.
    pub fn cmp(column: usize, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column,
            op,
            value: value.into(),
        }
    }

    /// Evaluate the predicate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Compare { column, op, value } => op.eval(tuple.value(*column), value),
            Predicate::CompareColumns { left, op, right } => {
                op.eval(tuple.value(*left), tuple.value(*right))
            }
            Predicate::Between { column, low, high } => {
                let v = tuple.value(*column);
                v >= low && v <= high
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(tuple)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(tuple)),
            Predicate::Not(p) => !p.eval(tuple),
        }
    }

    /// Estimated selectivity used by the optimizer's cost model when no
    /// better statistics exist (textbook defaults).
    ///
    /// The result is always a probability: every combinator clamps into
    /// `[0.0, 1.0]`, so floating-point drift in deeply nested `And`/`Or`/
    /// `Not` trees can never escape the unit interval.
    pub fn estimated_selectivity(&self) -> f64 {
        let s = match self {
            Predicate::True => 1.0,
            Predicate::Compare { op, .. } | Predicate::CompareColumns { op, .. } => match op {
                CmpOp::Eq => 0.1,
                CmpOp::Ne => 0.9,
                _ => 0.33,
            },
            Predicate::Between { .. } => 0.25,
            Predicate::And(ps) => ps
                .iter()
                .map(Predicate::estimated_selectivity)
                .product::<f64>(),
            Predicate::Or(ps) => {
                let none: f64 = ps.iter().map(|p| 1.0 - p.estimated_selectivity()).product();
                1.0 - none
            }
            Predicate::Not(p) => 1.0 - p.estimated_selectivity(),
        };
        s.clamp(0.0, 1.0)
    }
}

/// A scalar expression producing one output value per input tuple — the
/// engine's `Compute-function` operator evaluates a list of these.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Pass through input column `usize`.
    Column(usize),
    /// A literal constant.
    Literal(Value),
    /// Addition of two expressions.
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Subtraction.
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Multiplication.
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
    /// String concatenation of any number of expressions.
    Concat(Vec<ScalarExpr>),
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Column(i)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Value {
        match self {
            ScalarExpr::Column(i) => tuple.value(*i).clone(),
            ScalarExpr::Literal(v) => v.clone(),
            ScalarExpr::Add(a, b) => a.eval(tuple).add(&b.eval(tuple)),
            ScalarExpr::Sub(a, b) => a.eval(tuple).sub(&b.eval(tuple)),
            ScalarExpr::Mul(a, b) => a.eval(tuple).mul(&b.eval(tuple)),
            ScalarExpr::Concat(parts) => {
                let mut out = String::new();
                for p in parts {
                    out.push_str(&p.eval(tuple).to_string());
                }
                Value::Str(out)
            }
        }
    }
}

/// SQL aggregate functions supported by the aggregation operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` (the input column is ignored).
    Count,
    /// `SUM(column)`.
    Sum,
    /// `MIN(column)`.
    Min,
    /// `MAX(column)`.
    Max,
    /// `AVG(column)` — carried as (sum, count) in partial aggregates.
    Avg,
}

impl AggFunc {
    /// Number of state columns this aggregate occupies in a *partial*
    /// aggregate's output (AVG needs sum and count).
    pub fn partial_width(&self) -> usize {
        match self {
            AggFunc::Avg => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn comparisons_follow_value_order() {
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Ge.eval(&Value::Double(2.0), &Value::Int(2)));
        assert!(CmpOp::Ne.eval(&Value::str("a"), &Value::str("b")));
    }

    #[test]
    fn predicate_evaluation() {
        let row = t(vec![Value::Int(5), Value::str("abc"), Value::Double(1.5)]);
        assert!(Predicate::cmp(0, CmpOp::Gt, 3i64).eval(&row));
        assert!(!Predicate::cmp(0, CmpOp::Gt, 7i64).eval(&row));
        assert!(Predicate::Between {
            column: 2,
            low: Value::Double(1.0),
            high: Value::Double(2.0)
        }
        .eval(&row));
        assert!(Predicate::And(vec![
            Predicate::cmp(0, CmpOp::Eq, 5i64),
            Predicate::cmp(1, CmpOp::Eq, "abc"),
        ])
        .eval(&row));
        assert!(Predicate::Or(vec![
            Predicate::cmp(0, CmpOp::Eq, 99i64),
            Predicate::cmp(1, CmpOp::Eq, "abc"),
        ])
        .eval(&row));
        assert!(Predicate::Not(Box::new(Predicate::cmp(0, CmpOp::Eq, 99i64))).eval(&row));
        assert!(Predicate::CompareColumns {
            left: 0,
            op: CmpOp::Gt,
            right: 2
        }
        .eval(&row));
        assert!(Predicate::True.eval(&row));
    }

    #[test]
    fn selectivity_estimates_are_probabilities() {
        let preds = [
            Predicate::True,
            Predicate::cmp(0, CmpOp::Eq, 1i64),
            Predicate::cmp(0, CmpOp::Lt, 1i64),
            Predicate::And(vec![
                Predicate::cmp(0, CmpOp::Eq, 1i64),
                Predicate::cmp(1, CmpOp::Lt, 2i64),
            ]),
            Predicate::Or(vec![
                Predicate::cmp(0, CmpOp::Eq, 1i64),
                Predicate::cmp(1, CmpOp::Lt, 2i64),
            ]),
            Predicate::Not(Box::new(Predicate::cmp(0, CmpOp::Eq, 1i64))),
        ];
        for p in preds {
            let s = p.estimated_selectivity();
            assert!((0.0..=1.0).contains(&s), "{s} out of range for {p:?}");
        }
    }

    #[test]
    fn deeply_nested_selectivity_stays_in_the_unit_interval() {
        // Regression: build pathological nestings of And/Or/Not and verify
        // the estimate never drifts outside [0, 1] at any depth.
        let mut p = Predicate::cmp(0, CmpOp::Eq, 1i64);
        for depth in 0..96 {
            p = match depth % 3 {
                0 => Predicate::And(vec![p, Predicate::cmp(1, CmpOp::Ne, 2i64)]),
                1 => Predicate::Or(vec![p, Predicate::Not(Box::new(Predicate::True))]),
                _ => Predicate::Not(Box::new(p)),
            };
            let s = p.estimated_selectivity();
            assert!(
                (0.0..=1.0).contains(&s),
                "selectivity {s} escaped [0, 1] at depth {depth}"
            );
        }
        // Wide conjunctions and disjunctions of extreme children saturate
        // at the interval's endpoints instead of drifting past them.
        let wide_and = Predicate::And(vec![Predicate::cmp(0, CmpOp::Eq, 1i64); 400]);
        assert_eq!(wide_and.estimated_selectivity(), 0.0);
        let wide_or = Predicate::Or(vec![Predicate::cmp(0, CmpOp::Lt, 1i64); 400]);
        assert_eq!(wide_or.estimated_selectivity(), 1.0);
    }

    #[test]
    fn scalar_expressions_evaluate() {
        let row = t(vec![Value::Int(10), Value::Double(0.1), Value::str("id")]);
        // extendedprice * (1 - discount)
        let expr = ScalarExpr::Mul(
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::Sub(
                Box::new(ScalarExpr::lit(1.0)),
                Box::new(ScalarExpr::col(1)),
            )),
        );
        assert_eq!(expr.eval(&row), Value::Double(9.0));
        let concat = ScalarExpr::Concat(vec![
            ScalarExpr::col(2),
            ScalarExpr::lit("-"),
            ScalarExpr::col(0),
        ]);
        assert_eq!(concat.eval(&row), Value::str("id-10"));
    }

    #[test]
    fn agg_partial_widths() {
        assert_eq!(AggFunc::Avg.partial_width(), 2);
        assert_eq!(AggFunc::Sum.partial_width(), 1);
        assert_eq!(AggFunc::Count.partial_width(), 1);
    }
}
