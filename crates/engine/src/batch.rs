//! Destination batching and lightweight compression.
//!
//! "For performance, the query processor batches tuples into blocks by
//! destination, compressing them (using lightweight Zip-based compression)
//! and marshalling them in a format that exploits their commonalities"
//! (Section V-A).  [`TupleBatch`] is such a block; its wire size is
//! computed with a per-column dictionary encoding that exploits exactly
//! those commonalities (all tuples in a block come from the same operator
//! and therefore share column domains), standing in for the paper's
//! zip-based scheme.  Only the *size* of the encoding affects the
//! simulation — the tuples themselves travel in-memory — so the encoder is
//! deliberately simple and fast.

use crate::provenance::{TaggedTuple, TAG_WIRE_BYTES};
use orchestra_common::Value;
use std::collections::HashMap;

/// A block of tuples travelling to one destination operator instance.
#[derive(Clone, Debug, Default)]
pub struct TupleBatch {
    /// The tuples in the block.
    pub rows: Vec<TaggedTuple>,
}

impl TupleBatch {
    /// An empty batch.
    pub fn new() -> TupleBatch {
        TupleBatch::default()
    }

    /// A batch made from the given rows.
    pub fn from_rows(rows: Vec<TaggedTuple>) -> TupleBatch {
        TupleBatch { rows }
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Uncompressed wire size: per-tuple encodings plus (optionally)
    /// provenance tags, plus a small block header.
    pub fn uncompressed_size(&self, with_tags: bool) -> usize {
        16 + self
            .rows
            .iter()
            .map(|r| r.wire_size(with_tags))
            .sum::<usize>()
    }

    /// Compressed wire size under the dictionary encoding described in the
    /// module docs.  Provenance tags, when carried, are not compressed
    /// (they are high-entropy bitsets), matching the paper's observation
    /// that recovery support adds at most ~2% traffic.
    pub fn compressed_size(&self, with_tags: bool) -> usize {
        if self.rows.is_empty() {
            return 16;
        }
        let arity = self.rows[0].tuple.arity();
        let mut total = 16 + 2 * arity; // header + per-column descriptors
        for col in 0..arity {
            total += Self::column_encoded_size(&self.rows, col);
        }
        if with_tags {
            total += self.rows.len() * TAG_WIRE_BYTES;
        }
        // 2-byte per-row code vector entries are counted inside
        // column_encoded_size; add a small per-row presence bitmap.
        total += self.rows.len() / 8 + 1;
        total
    }

    /// Wire size given whether compression and tagging are enabled.
    pub fn wire_size(&self, compress: bool, with_tags: bool) -> usize {
        if compress {
            self.compressed_size(with_tags)
                .min(self.uncompressed_size(with_tags))
        } else {
            self.uncompressed_size(with_tags)
        }
    }

    fn column_encoded_size(rows: &[TaggedTuple], col: usize) -> usize {
        // Dictionary of distinct values in the column plus a 2-byte code
        // per row.  Columns whose rows are out of range (ragged tuples
        // never occur in practice, but stay defensive) fall back to their
        // plain encoding.
        let mut dict_bytes = 0usize;
        let mut seen: HashMap<&Value, ()> = HashMap::new();
        let mut plain = 0usize;
        for row in rows {
            if col >= row.tuple.arity() {
                plain += 16;
                continue;
            }
            let v = row.tuple.value(col);
            plain += v.serialized_size();
            if !seen.contains_key(v) {
                seen.insert(v, ());
                dict_bytes += v.serialized_size();
            }
        }
        let encoded = dict_bytes + 2 * rows.len();
        encoded.min(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::{NodeId, Tuple, Value};

    fn row(key: i64, flag: &str, comment: &str) -> TaggedTuple {
        TaggedTuple::scanned(
            Tuple::new(vec![Value::Int(key), Value::str(flag), Value::str(comment)]),
            NodeId(0),
            0,
        )
    }

    #[test]
    fn empty_batch_has_header_only() {
        let b = TupleBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.wire_size(true, true), 16);
        assert_eq!(b.wire_size(false, false), 16);
    }

    #[test]
    fn repetitive_columns_compress_well() {
        // 1000 rows with only two distinct flag values and identical
        // comments: the dictionary encoding should be much smaller than
        // the plain encoding.
        let rows: Vec<TaggedTuple> = (0..1000)
            .map(|i| row(i, if i % 2 == 0 { "A" } else { "B" }, "same comment text"))
            .collect();
        let b = TupleBatch::from_rows(rows);
        let plain = b.uncompressed_size(false);
        let compressed = b.compressed_size(false);
        assert!(
            compressed < plain / 2,
            "compressed {compressed} vs plain {plain}"
        );
        // wire_size never exceeds the plain encoding.
        assert!(b.wire_size(true, false) <= plain);
    }

    #[test]
    fn unique_columns_do_not_balloon() {
        // All-distinct values: the dictionary cannot help, but the fallback
        // keeps the size close to (never worse than) plain encoding.
        let rows: Vec<TaggedTuple> = (0..500)
            .map(|i| row(i, &format!("flag{i}"), &format!("comment {i}")))
            .collect();
        let b = TupleBatch::from_rows(rows);
        assert!(b.compressed_size(false) <= b.uncompressed_size(false) + 1024);
    }

    #[test]
    fn tags_add_fixed_overhead() {
        let rows: Vec<TaggedTuple> = (0..100).map(|i| row(i, "A", "x")).collect();
        let b = TupleBatch::from_rows(rows);
        let without = b.compressed_size(false);
        let with = b.compressed_size(true);
        assert_eq!(with - without, 100 * TAG_WIRE_BYTES);
    }

    #[test]
    fn len_reports_rows() {
        let b = TupleBatch::from_rows(vec![row(1, "A", "x"), row(2, "B", "y")]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
