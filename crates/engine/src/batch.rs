//! Destination batching and lightweight compression, column-wise.
//!
//! "For performance, the query processor batches tuples into blocks by
//! destination, compressing them (using lightweight Zip-based compression)
//! and marshalling them in a format that exploits their commonalities"
//! (Section V-A).  [`TupleBatch`] is such a block.  It stores its rows as
//! an [`orchestra_common::ColumnarBatch`] — typed column vectors with an
//! interned-string pool and parallel sign/provenance tag columns — so the
//! per-column dictionary encoding that models the paper's zip-based
//! scheme is read straight off the columns: each column computes its
//! distinct values and their one-copy byte size in a single cached pass
//! the first time its wire size is asked for, so batches that never
//! reach a wire never pay for pricing.
//!
//! Only the *size* of the encoding affects the simulation — the tuples
//! themselves travel in-memory — and the size formulas are byte-for-byte
//! those of the original row-at-a-time encoder for every uniform batch:
//!
//! * uncompressed: a 16-byte block header, then per row a 2-byte column
//!   count plus each value's wire encoding (plus the fixed
//!   [`TAG_WIRE_BYTES`] provenance tag when recovery support is on);
//! * compressed: the header, a 2-byte descriptor per column, per column
//!   `min(dictionary + 2-byte code per row, plain)`, the uncompressed
//!   tags, and a per-row presence bitmap — never worse than plain.
//!
//! Ragged blocks (rows of differing arity never occur in the engine's
//! pipeline, but the type stays defensive) are padded with NULLs: a
//! missing cell is a NULL and is priced at its real 1-byte serialized
//! size inside the column dictionary, rather than the arbitrary 16-byte
//! surcharge the old row encoder applied.

use crate::provenance::{TaggedTuple, TAG_WIRE_BYTES};
use orchestra_common::{ColumnarBatch, Value};

/// A block of tuples travelling to one destination operator instance,
/// stored column-wise.
#[derive(Clone, Debug)]
pub struct TupleBatch {
    batch: ColumnarBatch,
}

impl Default for TupleBatch {
    fn default() -> TupleBatch {
        TupleBatch::new()
    }
}

impl TupleBatch {
    /// An empty batch (arity fixed by the first row pushed).
    pub fn new() -> TupleBatch {
        TupleBatch {
            batch: ColumnarBatch::new(0),
        }
    }

    /// An empty batch of known arity.
    pub fn with_arity(arity: usize) -> TupleBatch {
        TupleBatch {
            batch: ColumnarBatch::new(arity),
        }
    }

    /// Wrap an existing columnar batch.
    pub fn from_columnar(batch: ColumnarBatch) -> TupleBatch {
        TupleBatch { batch }
    }

    /// A batch made from the given rows (the row seam: rows shorter than
    /// the widest are padded with NULLs).
    pub fn from_rows(rows: Vec<TaggedTuple>) -> TupleBatch {
        let arity = rows.iter().map(|r| r.tuple.arity()).max().unwrap_or(0);
        let mut batch = ColumnarBatch::new(arity);
        for row in rows {
            Self::push_into(&mut batch, row, arity);
        }
        TupleBatch { batch }
    }

    fn push_into(batch: &mut ColumnarBatch, row: TaggedTuple, arity: usize) {
        let mut values = row.tuple.into_values();
        values.resize(arity, Value::Null);
        batch.push_row_owned(values, row.sign, row.provenance, row.phase);
    }

    /// Append one row, widening the batch with NULL columns if the row is
    /// wider than the rows seen so far.
    pub fn push(&mut self, row: TaggedTuple) {
        if row.tuple.arity() > self.batch.arity() {
            self.batch.pad_to_arity(row.tuple.arity());
        }
        let arity = self.batch.arity();
        Self::push_into(&mut self.batch, row, arity);
    }

    /// Append row `row` of a columnar batch without materializing it
    /// (strings are re-interned by content; the batch widens if needed).
    pub fn push_row_from(&mut self, src: &ColumnarBatch, row: usize) {
        if src.arity() > self.batch.arity() {
            self.batch.pad_to_arity(src.arity());
        }
        self.batch.append_row_interned(src, row);
    }

    /// Append every row of `other`, widening if needed.
    pub fn append_batch(&mut self, other: &TupleBatch) {
        let src = other.columnar();
        if src.arity() > self.batch.arity() {
            self.batch.pad_to_arity(src.arity());
        }
        for row in 0..src.len() {
            self.batch.append_row_interned(src, row);
        }
    }

    /// The columnar representation.
    pub fn columnar(&self) -> &ColumnarBatch {
        &self.batch
    }

    /// Mutable access to the columnar representation.
    pub fn columnar_mut(&mut self) -> &mut ColumnarBatch {
        &mut self.batch
    }

    /// Unwrap into the columnar representation.
    pub fn into_columnar(self) -> ColumnarBatch {
        self.batch
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Materialize the row at `i` (a lossless row seam).
    pub fn row_at(&self, i: usize) -> TaggedTuple {
        TaggedTuple {
            tuple: self.batch.tuple_at(i),
            provenance: self.batch.provenance_at(i),
            phase: self.batch.phase_at(i),
            sign: self.batch.sign_at(i),
        }
    }

    /// Materialize every row (used only at the remaining row seams:
    /// operator unit tests and the legacy row-at-a-time path).
    pub fn rows(&self) -> Vec<TaggedTuple> {
        (0..self.len()).map(|i| self.row_at(i)).collect()
    }

    /// Uncompressed wire size: per-tuple encodings plus (optionally)
    /// provenance tags, plus a small block header.
    pub fn uncompressed_size(&self, with_tags: bool) -> usize {
        let mut total = 16 + 2 * self.len() + self.batch.plain_cell_bytes();
        if with_tags {
            total += self.len() * TAG_WIRE_BYTES;
        }
        total
    }

    /// Compressed wire size under the dictionary encoding described in the
    /// module docs.  Provenance tags, when carried, are not compressed
    /// (they are high-entropy bitsets), matching the paper's observation
    /// that recovery support adds at most ~2% traffic.  Near-free: the
    /// dictionaries were maintained as the columns were built.
    pub fn compressed_size(&self, with_tags: bool) -> usize {
        if self.is_empty() {
            return 16;
        }
        let arity = self.batch.arity();
        let mut total = 16 + 2 * arity; // header + per-column descriptors
        for col in 0..arity {
            total += self.batch.encoded_column_size(col);
        }
        if with_tags {
            total += self.len() * TAG_WIRE_BYTES;
        }
        // 2-byte per-row code vector entries are counted inside
        // encoded_column_size; add a small per-row presence bitmap.
        total += self.len() / 8 + 1;
        total
    }

    /// Wire size given whether compression and tagging are enabled.
    pub fn wire_size(&self, compress: bool, with_tags: bool) -> usize {
        if compress {
            self.compressed_size(with_tags)
                .min(self.uncompressed_size(with_tags))
        } else {
            self.uncompressed_size(with_tags)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::{NodeId, Tuple, Value};

    fn row(key: i64, flag: &str, comment: &str) -> TaggedTuple {
        TaggedTuple::scanned(
            Tuple::new(vec![Value::Int(key), Value::str(flag), Value::str(comment)]),
            NodeId(0),
            0,
        )
    }

    #[test]
    fn empty_batch_has_header_only() {
        let b = TupleBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.wire_size(true, true), 16);
        assert_eq!(b.wire_size(false, false), 16);
    }

    #[test]
    fn repetitive_columns_compress_well() {
        // 1000 rows with only two distinct flag values and identical
        // comments: the dictionary encoding should be much smaller than
        // the plain encoding.
        let rows: Vec<TaggedTuple> = (0..1000)
            .map(|i| row(i, if i % 2 == 0 { "A" } else { "B" }, "same comment text"))
            .collect();
        let b = TupleBatch::from_rows(rows);
        let plain = b.uncompressed_size(false);
        let compressed = b.compressed_size(false);
        assert!(
            compressed < plain / 2,
            "compressed {compressed} vs plain {plain}"
        );
        // wire_size never exceeds the plain encoding.
        assert!(b.wire_size(true, false) <= plain);
    }

    #[test]
    fn unique_columns_do_not_balloon() {
        // All-distinct values: the dictionary cannot help, but the fallback
        // keeps the size close to (never worse than) plain encoding.
        let rows: Vec<TaggedTuple> = (0..500)
            .map(|i| row(i, &format!("flag{i}"), &format!("comment {i}")))
            .collect();
        let b = TupleBatch::from_rows(rows);
        assert!(b.compressed_size(false) <= b.uncompressed_size(false) + 1024);
    }

    #[test]
    fn tags_add_fixed_overhead() {
        let rows: Vec<TaggedTuple> = (0..100).map(|i| row(i, "A", "x")).collect();
        let b = TupleBatch::from_rows(rows);
        let without = b.compressed_size(false);
        let with = b.compressed_size(true);
        assert_eq!(with - without, 100 * TAG_WIRE_BYTES);
    }

    #[test]
    fn len_reports_rows() {
        let b = TupleBatch::from_rows(vec![row(1, "A", "x"), row(2, "B", "y")]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn sizes_match_the_row_formula_exactly() {
        // Cross-check the incremental columnar accounting against the
        // original row-at-a-time formulas, computed longhand.  The
        // longhand `min`s fold to constants; that is the point.
        #![allow(clippy::unnecessary_min_or_max)]
        let rows: Vec<TaggedTuple> = (0..50)
            .map(|i| row(i % 5, if i % 2 == 0 { "A" } else { "B" }, "c"))
            .collect();
        let b = TupleBatch::from_rows(rows.clone());
        let plain_rows: usize = rows.iter().map(|r| r.tuple.serialized_size()).sum();
        assert_eq!(b.uncompressed_size(false), 16 + plain_rows);
        assert_eq!(
            b.uncompressed_size(true),
            16 + plain_rows + 50 * TAG_WIRE_BYTES
        );
        // Dictionary per column: 5 ints (9B each), 2 flags (6B each), one
        // comment (6B); plus 2B per row per column, descriptors, bitmap.
        let col0 = (5 * 9 + 2 * 50).min(50 * 9);
        let col1 = (2 * 6 + 2 * 50).min(50 * 6);
        let col2 = (6 + 2 * 50).min(50 * 6);
        assert_eq!(
            b.compressed_size(false),
            16 + 2 * 3 + col0 + col1 + col2 + 50 / 8 + 1
        );
    }

    #[test]
    fn ragged_rows_price_missing_cells_as_real_nulls() {
        // Regression for the old encoder's arbitrary 16-byte surcharge on
        // rows too short for a column: a missing cell is a NULL and costs
        // its real 1-byte serialized size, entering the dictionary like
        // any other value.  The longhand formulas fold to constants.
        #![allow(clippy::unnecessary_min_or_max, clippy::identity_op)]
        let mut rows: Vec<TaggedTuple> = (0..4)
            .map(|i| {
                TaggedTuple::scanned(
                    Tuple::new(vec![Value::Int(i), Value::str("pad-me")]),
                    NodeId(0),
                    0,
                )
            })
            .collect();
        rows.push(TaggedTuple::scanned(
            Tuple::new(vec![Value::Int(4)]),
            NodeId(0),
            0,
        ));
        let b = TupleBatch::from_rows(rows);
        assert_eq!(b.len(), 5);
        // The short row reads back padded with a NULL.
        assert!(b.row_at(4).tuple.value(1).is_null());
        // Column 0: five distinct ints, dictionary cannot help.
        let col0 = (5 * 9 + 2 * 5).min(5 * 9);
        // Column 1: dictionary = "pad-me" (11B) + NULL (1B, not 16B);
        // plain = 4 strings + one 1-byte NULL.
        let col1 = (11 + 1 + 2 * 5).min(4 * 11 + 1);
        assert_eq!(
            b.compressed_size(false),
            16 + 2 * 2 + col0 + col1 + 5 / 8 + 1
        );
    }
}
