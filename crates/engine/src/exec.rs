//! The reliable distributed query executor (paper Sections V-A to V-D).
//!
//! [`QueryExecutor`] runs a [`PhysicalPlan`] over the versioned store,
//! routing every inter-node byte through the deterministic simulator so
//! that running time and traffic are measured, not estimated.  Execution
//! is event-driven and push-based:
//!
//! 1. The initiator disseminates the plan plus a routing snapshot to every
//!    participant (paper Section V-C: queries run against an immutable
//!    snapshot taken at initiation).
//! 2. Each participant scans its partition of every leaf relation and
//!    pushes the tuples through its local operator pipeline.  `Rehash` and
//!    `Ship` buffer rows per destination and flush them as compressed
//!    batches ([`crate::batch::TupleBatch`]) through the simulator.
//! 3. Delivered batches continue through the receiving node's pipeline
//!    above the exchange.  When a node has exhausted every input feeding
//!    an exchange it closes the segment: blocking aggregates emit their
//!    unemitted sub-groups, pending buffers flush, and an end-of-stream
//!    marker goes to every destination.  The query completes when the
//!    initiator's `Output` segment closes.
//!
//! ## Failure and recovery (Section V-D)
//!
//! A [`FailureSpec`] kills one node at a virtual instant: the simulator
//! drops its in-flight and future messages, so the end-of-stream cascade
//! stalls and the event queue quiesces with the query incomplete.  The
//! executor then recovers under the configured [`RecoveryStrategy`]:
//!
//! * **Restart** — discard all operator state, reassign the failed node's
//!   ranges to its surviving replica holders, and re-run the query from
//!   scratch on the survivors.
//! * **Incremental** — the four-stage protocol: (1) derive the recovery
//!   routing snapshot; (2) purge exactly the tainted state — tuples,
//!   join rows and aggregate sub-groups whose provenance intersects the
//!   failed set; (3) bump the phase and re-run leaf scans over the
//!   *inherited* ranges only; (4) re-transmit, from the rehash/ship output
//!   caches, the untainted rows that had been sent to the failed node —
//!   re-routed to the heirs under the recovery snapshot.  The result is
//!   correct, complete and duplicate-free without redoing unaffected work.
//!
//! The answer comes back in a [`QueryReport`] together with the simulated
//! running time and the exact per-link traffic counts — the quantities
//! plotted in the paper's figures.

use crate::batch::TupleBatch;
use crate::ops::{AggState, JoinState, RehashState};
use crate::plan::{AggMode, OpId, OperatorKind, PhysicalPlan};
use crate::provenance::{Phase, TaggedTuple};
use orchestra_common::{Epoch, KeyRange, NodeId, NodeSet, OrchestraError, Result, Tuple};
use orchestra_simnet::{ClusterProfile, Delivery, SimTime, Simulator};
use orchestra_storage::{CoordinatorKey, DistributedStorage};
use orchestra_substrate::RoutingTable;
use std::collections::{HashMap, HashSet};

/// Wire size of an end-of-stream marker.
const EOS_BYTES: usize = 8;

/// How the executor reacts to a node failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryStrategy {
    /// Throw away all state and re-run the query on the survivors.
    Restart,
    /// Purge tainted state, rescan inherited ranges, re-transmit cached
    /// output — the paper's low-overhead strategy.
    Incremental,
}

/// Configuration of the query engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Timing and bandwidth model of the simulated cluster.
    pub profile: ClusterProfile,
    /// Tuples buffered per destination before a batch is flushed.
    pub batch_size: usize,
    /// Dictionary-compress batches before computing their wire size.
    pub compress: bool,
    /// Recovery support: carry provenance tags on the wire and keep
    /// rehash/ship output caches.  Adds the paper's "at most 2%" traffic
    /// overhead; required for [`RecoveryStrategy::Incremental`].
    pub recovery: bool,
    /// Strategy applied when a failure interrupts the query.
    pub strategy: RecoveryStrategy,
    /// Upper bound on recovery rounds before the query is abandoned.
    pub max_recovery_rounds: u32,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            profile: ClusterProfile::lan_cluster(),
            batch_size: 256,
            compress: true,
            recovery: true,
            strategy: RecoveryStrategy::Incremental,
            max_recovery_rounds: 4,
        }
    }
}

/// A failure to inject: `node` dies at virtual time `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureSpec {
    /// The node that fails.
    pub node: NodeId,
    /// The virtual instant at which it fails.
    pub at: SimTime,
}

impl FailureSpec {
    /// Kill `node` at virtual time `at`.
    pub fn at_time(node: NodeId, at: SimTime) -> FailureSpec {
        FailureSpec { node, at }
    }
}

/// The answer set and execution measurements of one query run.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// The final answer rows, sorted for deterministic comparison.
    pub rows: Vec<Tuple>,
    /// Simulated wall-clock running time of the query (including any
    /// recovery rounds).
    pub running_time: SimTime,
    /// Total bytes shipped between distinct nodes.
    pub total_bytes: u64,
    /// Total inter-node messages.
    pub total_messages: u64,
    /// Exact per-directed-link byte counts, in `(src, dst)` order.
    pub link_traffic: Vec<((NodeId, NodeId), u64)>,
    /// Messages the simulator dropped because a party had failed.
    pub dropped_messages: u64,
    /// Did a recovery round run?
    pub recovered: bool,
    /// Number of execution phases (1 for a failure-free run).
    pub phases: u32,
    /// Index pages consulted by all scans.
    pub pages_read: usize,
    /// Tuple versions fetched by all scans.
    pub tuples_scanned: usize,
    /// Tuple fetches that had to leave the scanning node.
    pub remote_lookups: usize,
    /// Rows and sub-groups purged as tainted (incremental recovery).
    pub purged: usize,
    /// Rows re-transmitted from output caches (incremental recovery).
    pub retransmitted: usize,
}

/// The engine-defined message type delivered by the simulator.
#[derive(Clone, Debug)]
enum Payload {
    /// Plan + snapshot arrived; run the local fragments.
    Start,
    /// A batch of rows that crossed exchange operator `op`.
    Batch { op: OpId, rows: Vec<TaggedTuple> },
    /// One sender has finished feeding exchange operator `op`.
    Eos { op: OpId },
    /// A remote tuple fetch performed by a scan; carries no pipeline
    /// work — it exists so the transfer's bytes and latency are charged
    /// to the simulated network.
    StorageFetch,
}

/// The storage a run executes against: the caller's store for normal
/// runs, or an owned scratch copy for failure runs so the dead node's
/// local state can be made unreachable at recovery time without
/// disturbing the caller.
enum StorageHandle<'a> {
    Borrowed(&'a DistributedStorage),
    Scratch(Box<DistributedStorage>),
}

impl StorageHandle<'_> {
    fn get(&self) -> &DistributedStorage {
        match self {
            StorageHandle::Borrowed(s) => s,
            StorageHandle::Scratch(s) => s,
        }
    }
}

/// The reliable distributed query executor.
pub struct QueryExecutor<'a> {
    storage: &'a DistributedStorage,
    config: EngineConfig,
}

impl<'a> QueryExecutor<'a> {
    /// Build an executor over `storage` with `config`.
    pub fn new(storage: &'a DistributedStorage, config: EngineConfig) -> QueryExecutor<'a> {
        QueryExecutor { storage, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Execute `plan` against the version of the data visible at `epoch`,
    /// initiated by `initiator`, with no failure injected.
    pub fn execute(
        &self,
        plan: &PhysicalPlan,
        epoch: Epoch,
        initiator: NodeId,
    ) -> Result<QueryReport> {
        Runtime::new(
            StorageHandle::Borrowed(self.storage),
            &self.config,
            plan,
            epoch,
            initiator,
            None,
        )?
        .run()
    }

    /// Execute `plan` while killing `failure.node` at `failure.at`.
    ///
    /// The caller's storage is not disturbed: the run executes against a
    /// scratch copy that behaves exactly like the original until the
    /// failure is detected; recovery then marks the node failed so
    /// rescans cannot read the dead node's local state.
    pub fn execute_with_failure(
        &self,
        plan: &PhysicalPlan,
        epoch: Epoch,
        initiator: NodeId,
        failure: FailureSpec,
    ) -> Result<QueryReport> {
        let scratch = Box::new(self.storage.clone());
        Runtime::new(
            StorageHandle::Scratch(scratch),
            &self.config,
            plan,
            epoch,
            initiator,
            Some(failure),
        )?
        .run()
    }
}

/// Sources feeding the segment rooted at one exchange (or `Output`): the
/// leaf scans inside the segment and the boundary exchanges whose
/// deliveries enter it from below.
#[derive(Clone, Debug, Default)]
struct SegmentSources {
    scans: Vec<OpId>,
    exchanges: Vec<OpId>,
    blocking: Vec<OpId>,
}

/// All mutable state of one query execution.
struct Runtime<'a> {
    storage: StorageHandle<'a>,
    config: &'a EngineConfig,
    plan: &'a PhysicalPlan,
    epoch: Epoch,
    initiator: NodeId,

    sim: Simulator<Payload>,
    /// The routing table of the current phase (original snapshot, then
    /// recovery tables).
    table: RoutingTable,
    participants: Vec<NodeId>,
    phase: Phase,

    /// Per-phase scan assignment: which hash ranges each node scans.
    scan_ranges: HashMap<NodeId, Vec<KeyRange>>,
    /// Whether replicated relations are scanned this phase (full runs
    /// only; incremental recovery re-uses the survivors' earlier scans).
    scan_replicated: bool,

    // Operator state, one instance per (participant, operator).
    joins: HashMap<(NodeId, OpId), JoinState>,
    aggs: HashMap<(NodeId, OpId), AggState>,
    exchanges: HashMap<(NodeId, OpId), RehashState>,

    // End-of-stream bookkeeping, reset each phase.
    eos_pending: HashMap<(NodeId, OpId), usize>,
    recv_closed: HashSet<(NodeId, OpId)>,
    fed_closed: HashSet<(NodeId, OpId)>,
    scans_done: HashSet<NodeId>,

    /// Segment structure, precomputed from the plan.
    segment_roots: Vec<OpId>,
    sources: HashMap<OpId, SegmentSources>,

    /// Rows collected at the initiator's `Output`.
    output: Vec<TaggedTuple>,
    done: bool,
    finish_time: SimTime,

    rounds: u32,
    pages_read: usize,
    tuples_scanned: usize,
    remote_lookups: usize,
    purged: usize,
    retransmitted: usize,
}

impl<'a> Runtime<'a> {
    fn new(
        storage: StorageHandle<'a>,
        config: &'a EngineConfig,
        plan: &'a PhysicalPlan,
        epoch: Epoch,
        initiator: NodeId,
        failure: Option<FailureSpec>,
    ) -> Result<Runtime<'a>> {
        let table = storage.get().routing().clone();
        if !table.contains_node(initiator) {
            return Err(OrchestraError::Execution(format!(
                "initiator {initiator} is not a member of the routing table"
            )));
        }
        if let Some(f) = failure {
            if !table.contains_node(f.node) {
                return Err(OrchestraError::Execution(format!(
                    "failure target {} is not a member of the routing table",
                    f.node
                )));
            }
        }
        let participants = table.nodes();
        let node_slots = participants
            .iter()
            .map(|n| n.index())
            .max()
            .expect("routing table has nodes")
            + 1;
        let mut sim = Simulator::new(node_slots, config.profile);
        if let Some(f) = failure {
            sim.fail_node(f.node, f.at);
        }

        let segment_roots: Vec<OpId> = plan
            .operators()
            .iter()
            .filter(|o| o.kind.is_exchange() || matches!(o.kind, OperatorKind::Output))
            .map(|o| o.id)
            .collect();
        let mut sources = HashMap::new();
        for &root in &segment_roots {
            sources.insert(root, segment_sources(plan, root));
        }

        let scan_ranges = participants
            .iter()
            .map(|n| (*n, table.ranges_of(*n)))
            .collect();

        Ok(Runtime {
            storage,
            config,
            plan,
            epoch,
            initiator,
            sim,
            table,
            participants,
            phase: 0,
            scan_ranges,
            scan_replicated: true,
            joins: HashMap::new(),
            aggs: HashMap::new(),
            exchanges: HashMap::new(),
            eos_pending: HashMap::new(),
            recv_closed: HashSet::new(),
            fed_closed: HashSet::new(),
            scans_done: HashSet::new(),
            segment_roots,
            sources,
            output: Vec::new(),
            done: false,
            finish_time: SimTime::ZERO,
            rounds: 0,
            pages_read: 0,
            tuples_scanned: 0,
            remote_lookups: 0,
            purged: 0,
            retransmitted: 0,
        })
    }

    fn run(mut self) -> Result<QueryReport> {
        self.reset_eos_counters();
        self.disseminate(SimTime::ZERO);
        loop {
            while let Some(d) = self.sim.next() {
                self.handle(d)?;
            }
            if self.done {
                break;
            }
            let failed = self.sim.failed_nodes_at(self.sim.now());
            if failed.is_empty() {
                return Err(OrchestraError::Execution(
                    "query stalled with no failed node (engine bug)".into(),
                ));
            }
            if self.rounds >= self.config.max_recovery_rounds {
                return Err(OrchestraError::Execution(format!(
                    "query did not complete within {} recovery rounds",
                    self.config.max_recovery_rounds
                )));
            }
            self.recover(&failed)?;
        }
        Ok(self.into_report())
    }

    // ------------------------------------------------------------------
    // Phase setup
    // ------------------------------------------------------------------

    /// Expected end-of-stream counts for the current participant set:
    /// every participant feeds every `Rehash` instance, and every
    /// participant feeds the initiator's `Ship` consumer.
    fn reset_eos_counters(&mut self) {
        self.eos_pending.clear();
        self.recv_closed.clear();
        self.fed_closed.clear();
        self.scans_done.clear();
        let n = self.participants.len();
        for op in self.plan.operators() {
            match op.kind {
                OperatorKind::Rehash { .. } => {
                    for &node in &self.participants {
                        self.eos_pending.insert((node, op.id), n);
                    }
                }
                OperatorKind::Ship => {
                    self.eos_pending.insert((self.initiator, op.id), n);
                }
                _ => {}
            }
        }
    }

    /// Ship the plan and routing snapshot to every participant and start
    /// the local fragments.
    fn disseminate(&mut self, at: SimTime) {
        let bytes = self.plan.serialized_size()
            + 64
            + 48 * self.table.entries().len()
            + 24 * self.participants.len();
        for &node in &self.participants.clone() {
            if node == self.initiator {
                self.sim.schedule(node, at, Payload::Start);
            } else {
                self.sim
                    .send(self.initiator, node, bytes, at, Payload::Start);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, d: Delivery<Payload>) -> Result<()> {
        match d.payload {
            Payload::Start => self.on_start(d.to, d.time),
            Payload::Batch { op, rows } => {
                let parent = self.plan.op(op).parent.expect("exchange has a consumer");
                let input = input_index(self.plan, parent, op);
                self.process_at(d.to, parent, input, rows, d.time)
            }
            Payload::Eos { op } => self.on_eos(d.to, op, d.time),
            Payload::StorageFetch => Ok(()),
        }
    }

    /// Plan arrived at `node`: charge startup, run this phase's scans,
    /// then try to close any segment fed purely by scans.
    fn on_start(&mut self, node: NodeId, time: SimTime) -> Result<()> {
        let startup = self.config.profile.node.startup_time();
        let mut ready = self.sim.charge_cpu(node, time, startup);
        if self.phase > 0 && self.config.strategy == RecoveryStrategy::Incremental {
            ready = self.retransmit_cached(node, ready)?;
        }
        for scan_op in self.plan.scans() {
            let (rows, scan_time) = self.do_scan(node, scan_op)?;
            ready = self.sim.charge_cpu(node, ready, scan_time);
            if !rows.is_empty() {
                ready = self.push_up(node, scan_op, rows, ready)?;
            }
        }
        self.scans_done.insert(node);
        self.try_close_segments(node, ready)
    }

    fn on_eos(&mut self, node: NodeId, op: OpId, time: SimTime) -> Result<()> {
        let pending = self.eos_pending.get_mut(&(node, op)).ok_or_else(|| {
            OrchestraError::Execution(format!(
                "unexpected end-of-stream for operator {op} at {node}"
            ))
        })?;
        *pending = pending.saturating_sub(1);
        if *pending == 0 {
            self.recv_closed.insert((node, op));
            self.try_close_segments(node, time)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scans
    // ------------------------------------------------------------------

    /// Run one leaf scan on behalf of `node` for the current phase,
    /// returning tagged rows and the simulated scan duration.
    fn do_scan(&mut self, node: NodeId, op: OpId) -> Result<(Vec<TaggedTuple>, SimTime)> {
        let kind = &self.plan.op(op).kind;
        let profile = &self.config.profile.node;
        match kind {
            OperatorKind::DistributedScan {
                relation,
                predicate,
            } => {
                let ranges = self.scan_ranges.get(&node).cloned().unwrap_or_default();
                if ranges.is_empty() {
                    return Ok((Vec::new(), SimTime::ZERO));
                }
                let scan = self
                    .storage
                    .get()
                    .scan_partition(relation, self.epoch, node, &ranges)?;
                self.pages_read += scan.pages_read;
                self.tuples_scanned += scan.tuples_read;
                self.remote_lookups += scan.remote_lookups;
                let mut duration = profile.scan_time(scan.tuples_read, scan.pages_read);
                // Tuples that had to come from a replica cross the wire:
                // charge their bytes and latency to the simulation and
                // stretch the scan until the last transfer lands.
                let now = self.sim.now();
                for (src, bytes) in &scan.remote_transfers {
                    if let Some(arrival) =
                        self.sim
                            .send(*src, node, *bytes, now, Payload::StorageFetch)
                    {
                        duration = duration.max(arrival.saturating_sub(now));
                    }
                }
                let rows = tag_scanned(scan.tuples, predicate, node, self.phase);
                Ok((rows, duration))
            }
            OperatorKind::ReplicatedScan {
                relation,
                predicate,
            } => {
                if !self.scan_replicated {
                    return Ok((Vec::new(), SimTime::ZERO));
                }
                let tuples = self
                    .storage
                    .get()
                    .scan_replicated(relation, self.epoch, node)?;
                self.tuples_scanned += tuples.len();
                let duration = profile.scan_time(tuples.len(), 1);
                let rows = tag_scanned(tuples, predicate, node, self.phase);
                Ok((rows, duration))
            }
            OperatorKind::CoveringIndexScan {
                relation,
                predicate,
            } => {
                let ranges = self.scan_ranges.get(&node).cloned().unwrap_or_default();
                if ranges.is_empty() {
                    return Ok((Vec::new(), SimTime::ZERO));
                }
                let (tuples, pages) = self.covering_scan(relation, &ranges)?;
                self.pages_read += pages;
                let duration = profile.scan_time(tuples.len(), pages);
                let rows = tag_scanned(tuples, predicate, node, self.phase);
                Ok((rows, duration))
            }
            other => Err(OrchestraError::Execution(format!(
                "operator {} is not a scan",
                other.name()
            ))),
        }
    }

    /// Answer a key-only scan from the index pages alone, "bypassing the
    /// data storage nodes".
    fn covering_scan(&self, relation: &str, ranges: &[KeyRange]) -> Result<(Vec<Tuple>, usize)> {
        let Some(version_epoch) = self.storage.get().version_at(relation, self.epoch) else {
            return Ok((Vec::new(), 0));
        };
        let version = self
            .storage
            .get()
            .lookup_coordinator(&CoordinatorKey::new(relation, version_epoch))?
            .clone();
        let mut out = Vec::new();
        let mut pages = 0;
        for descriptor in &version.pages {
            if !ranges.iter().any(|r| r.overlaps(&descriptor.range)) {
                continue;
            }
            let page = self.storage.get().lookup_index_page(descriptor)?;
            pages += 1;
            for id in &page.tuple_ids {
                if ranges.iter().any(|r| r.contains(id.hash_key())) {
                    out.push(Tuple::new(id.key.clone()));
                }
            }
        }
        Ok((out, pages))
    }

    // ------------------------------------------------------------------
    // The push-based pipeline
    // ------------------------------------------------------------------

    /// Push rows produced by `from` into its parent operator.
    fn push_up(
        &mut self,
        node: NodeId,
        from: OpId,
        rows: Vec<TaggedTuple>,
        time: SimTime,
    ) -> Result<SimTime> {
        let parent = self
            .plan
            .op(from)
            .parent
            .expect("only Output lacks a parent, and Output never produces");
        let input = input_index(self.plan, parent, from);
        self.process_at(node, parent, input, rows, time)?;
        Ok(self.sim.cpu_free_at(node).max(time))
    }

    /// Process `rows` arriving at operator `op` on `node` via `input`.
    fn process_at(
        &mut self,
        node: NodeId,
        op: OpId,
        input: usize,
        rows: Vec<TaggedTuple>,
        time: SimTime,
    ) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let cpu = self.config.profile.node.cpu_time(rows.len());
        let ready = self.sim.charge_cpu(node, time, cpu);
        // `plan` is an independent `&'a` borrow, so the kind can be read
        // by reference without cloning predicate/expression trees on
        // every delivered batch.
        let kind = &self.plan.op(op).kind;
        match kind {
            OperatorKind::Select { predicate } => {
                let kept: Vec<TaggedTuple> = rows
                    .into_iter()
                    .filter(|r| predicate.eval(&r.tuple))
                    .collect();
                if !kept.is_empty() {
                    self.push_up(node, op, kept, ready)?;
                }
            }
            OperatorKind::Project { columns } => {
                let out = rows
                    .into_iter()
                    .map(|r| {
                        let t = r.tuple.project(columns);
                        r.with_tuple(t)
                    })
                    .collect();
                self.push_up(node, op, out, ready)?;
            }
            OperatorKind::ComputeFunction { exprs } => {
                let out = rows
                    .into_iter()
                    .map(|r| {
                        let vals = exprs.iter().map(|e| e.eval(&r.tuple)).collect();
                        r.with_tuple(Tuple::new(vals))
                    })
                    .collect();
                self.push_up(node, op, out, ready)?;
            }
            OperatorKind::HashJoin {
                left_keys,
                right_keys,
            } => {
                let state = self.joins.entry((node, op)).or_default();
                let mut out = Vec::new();
                for row in rows {
                    out.extend(state.process(input, row, left_keys, right_keys, node));
                }
                if !out.is_empty() {
                    self.push_up(node, op, out, ready)?;
                }
            }
            OperatorKind::Aggregate {
                group_by,
                aggs,
                mode,
            } => {
                let state = self.aggs.entry((node, op)).or_default();
                for row in &rows {
                    match mode {
                        AggMode::Single | AggMode::Partial => state.update_raw(row, group_by, aggs),
                        AggMode::Final => state.update_partial(row, group_by, aggs),
                    }
                }
            }
            OperatorKind::Rehash { columns } => {
                for row in rows {
                    let dest = self.table.owner_of(row.tuple.hash_columns(columns));
                    self.buffer_exchange(node, op, dest, row, ready);
                }
            }
            OperatorKind::Ship => {
                let dest = self.initiator;
                for row in rows {
                    self.buffer_exchange(node, op, dest, row, ready);
                }
            }
            OperatorKind::Output => {
                debug_assert_eq!(node, self.initiator);
                self.output.extend(rows);
                self.finish_time = self.finish_time.max(ready);
            }
            OperatorKind::DistributedScan { .. }
            | OperatorKind::CoveringIndexScan { .. }
            | OperatorKind::ReplicatedScan { .. } => {
                return Err(OrchestraError::Execution(
                    "scan operators take no pipeline input".into(),
                ))
            }
        }
        Ok(())
    }

    /// Buffer one row into exchange `op` for `dest`, flushing a full batch.
    fn buffer_exchange(
        &mut self,
        node: NodeId,
        op: OpId,
        dest: NodeId,
        row: TaggedTuple,
        ready: SimTime,
    ) {
        let cache = self.config.recovery;
        let state = self
            .exchanges
            .entry((node, op))
            .or_insert_with(|| RehashState::new(cache));
        if state.buffer(dest, row) >= self.config.batch_size {
            self.flush_exchange(node, op, dest, ready);
        }
    }

    /// Send the pending buffer of (`node`, `op`) for `dest` as one batch.
    fn flush_exchange(&mut self, node: NodeId, op: OpId, dest: NodeId, ready: SimTime) {
        let Some(state) = self.exchanges.get_mut(&(node, op)) else {
            return;
        };
        let rows = state.take_buffer(dest);
        if rows.is_empty() {
            return;
        }
        let batch = TupleBatch::from_rows(rows);
        let bytes = batch.wire_size(self.config.compress, self.config.recovery);
        self.sim.send(
            node,
            dest,
            bytes,
            ready,
            Payload::Batch {
                op,
                rows: batch.rows,
            },
        );
    }

    // ------------------------------------------------------------------
    // Segment closure (end-of-stream cascade)
    // ------------------------------------------------------------------

    /// Close every segment at `node` whose sources have all finished.
    /// Closing one segment can enable the next, so iterate to fixpoint.
    fn try_close_segments(&mut self, node: NodeId, time: SimTime) -> Result<()> {
        if !self.scans_done.contains(&node) {
            return Ok(());
        }
        loop {
            let mut progressed = false;
            for root in self.segment_roots.clone() {
                if self.fed_closed.contains(&(node, root)) {
                    continue;
                }
                let is_output = matches!(self.plan.op(root).kind, OperatorKind::Output);
                if is_output && node != self.initiator {
                    continue;
                }
                let sources = &self.sources[&root];
                let ready_to_close = sources
                    .exchanges
                    .iter()
                    .all(|e| self.recv_closed.contains(&(node, *e)));
                if !ready_to_close {
                    continue;
                }
                self.close_segment(node, root, time)?;
                progressed = true;
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// All inputs of the segment rooted at `root` are exhausted at `node`:
    /// emit blocking state, flush the root's buffers, signal end-of-stream.
    fn close_segment(&mut self, node: NodeId, root: OpId, time: SimTime) -> Result<()> {
        self.fed_closed.insert((node, root));
        let mut ready = time;
        let is_output = matches!(self.plan.op(root).kind, OperatorKind::Output);

        for agg_op in self.sources[&root].blocking.clone() {
            let OperatorKind::Aggregate { aggs, mode, .. } = self.plan.op(agg_op).kind.clone()
            else {
                continue;
            };
            let emitted: Vec<TaggedTuple> = match mode {
                AggMode::Partial => self
                    .aggs
                    .entry((node, agg_op))
                    .or_default()
                    .emit_unemitted(true, node, self.phase),
                AggMode::Single | AggMode::Final if is_output => {
                    // The top-level aggregate merges its sub-groups into
                    // the final answer exactly once, at query completion.
                    let phase = self.phase;
                    self.aggs
                        .entry((node, agg_op))
                        .or_default()
                        .collapsed_final(&aggs)
                        .into_iter()
                        .map(|t| TaggedTuple::scanned(t, node, phase))
                        .collect()
                }
                AggMode::Single | AggMode::Final => self
                    .aggs
                    .entry((node, agg_op))
                    .or_default()
                    .emit_unemitted(false, node, self.phase),
            };
            if !emitted.is_empty() {
                ready = self.push_up(node, agg_op, emitted, ready)?;
            }
        }

        if is_output {
            self.done = true;
            self.finish_time = self.finish_time.max(ready);
            return Ok(());
        }

        // Flush whatever is still buffered, then signal end-of-stream.
        let pending = self
            .exchanges
            .get(&(node, root))
            .map(|s| s.pending_destinations())
            .unwrap_or_default();
        for dest in pending {
            self.flush_exchange(node, root, dest, ready);
        }
        let dests: Vec<NodeId> = match self.plan.op(root).kind {
            OperatorKind::Ship => vec![self.initiator],
            _ => self.participants.clone(),
        };
        for dest in dests {
            self.sim
                .send(node, dest, EOS_BYTES, ready, Payload::Eos { op: root });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Recovery (Section V-D)
    // ------------------------------------------------------------------

    fn recover(&mut self, failed: &NodeSet) -> Result<()> {
        if failed.contains(self.initiator) {
            return Err(OrchestraError::Execution(
                "the query initiator failed; the query is lost".into(),
            ));
        }
        if self.config.strategy == RecoveryStrategy::Incremental && !self.config.recovery {
            return Err(OrchestraError::Execution(
                "incremental recovery requires recovery support (provenance tags and output caches)"
                    .into(),
            ));
        }

        // The failed nodes' local stores are gone: storage-level lookups
        // must fail over to replicas from here on.
        if let StorageHandle::Scratch(s) = &mut self.storage {
            for f in failed.iter() {
                s.mark_failed(f);
            }
        }

        // Stage 1: derive the recovery routing snapshot — the failed
        // nodes' ranges split evenly among their surviving replica holders.
        let recovery_table = self.table.reassign_failed(failed)?;
        let changed = self.table.changed_ranges(&recovery_table);
        let survivors = recovery_table.nodes();

        self.rounds += 1;
        // Stage 3 (first half): bump the phase so recomputed tuples are
        // distinguishable from pre-failure in-flight data.
        self.phase += 1;

        match self.config.strategy {
            RecoveryStrategy::Restart => {
                // Forget everything and re-run on the survivors.
                self.joins.clear();
                self.aggs.clear();
                self.exchanges.clear();
                self.output.clear();
                self.scan_ranges = survivors
                    .iter()
                    .map(|n| (*n, recovery_table.ranges_of(*n)))
                    .collect();
                self.scan_replicated = true;
            }
            RecoveryStrategy::Incremental => {
                // Stage 2: purge exactly the tainted state.
                let mut purged = 0;
                let mut keys: Vec<(NodeId, OpId)> = self.joins.keys().copied().collect();
                keys.sort_unstable();
                for k in keys {
                    purged += self
                        .joins
                        .get_mut(&k)
                        .expect("key exists")
                        .purge_tainted(failed);
                }
                let mut keys: Vec<(NodeId, OpId)> = self.aggs.keys().copied().collect();
                keys.sort_unstable();
                for k in keys {
                    purged += self
                        .aggs
                        .get_mut(&k)
                        .expect("key exists")
                        .purge_tainted(failed);
                }
                let mut keys: Vec<(NodeId, OpId)> = self.exchanges.keys().copied().collect();
                keys.sort_unstable();
                for k in keys {
                    purged += self
                        .exchanges
                        .get_mut(&k)
                        .expect("key exists")
                        .purge_tainted(failed);
                }
                let before = self.output.len();
                self.output.retain(|r| !r.is_tainted(failed));
                purged += before - self.output.len();
                self.purged += purged;

                // Stage 3 (second half): survivors rescan only the ranges
                // they inherited from the failed nodes.
                let mut inherited: HashMap<NodeId, Vec<KeyRange>> = HashMap::new();
                for (range, _, heir) in &changed {
                    inherited.entry(*heir).or_default().push(*range);
                }
                self.scan_ranges = survivors
                    .iter()
                    .map(|n| (*n, inherited.remove(n).unwrap_or_default()))
                    .collect();
                self.scan_replicated = false;

                // Pending buffers destined to a failed node must not be
                // flushed there; their rows are covered by the stage-4
                // output-cache retransmission, so drop them here.
                let mut keys: Vec<(NodeId, OpId)> = self.exchanges.keys().copied().collect();
                keys.sort_unstable();
                for k in keys {
                    let state = self.exchanges.get_mut(&k).expect("key exists");
                    for dest in state.pending_destinations() {
                        if failed.contains(dest) {
                            state.take_buffer(dest);
                        }
                    }
                }
            }
        }

        self.table = recovery_table;
        self.participants = survivors;
        self.reset_eos_counters();

        // Failure detection (TCP reset in the paper) plus one round trip
        // to disseminate the recovery snapshot.
        let restart_at = self.sim.now() + self.config.profile.latency();
        self.disseminate(restart_at);
        Ok(())
    }

    /// Stage 4: re-create the data that had been sent to the failed nodes'
    /// hash key-space ranges, re-routed under the recovery snapshot.
    fn retransmit_cached(&mut self, node: NodeId, time: SimTime) -> Result<SimTime> {
        let failed = self.sim.failed_nodes_at(time);
        let mut ready = time;
        let mut keys: Vec<(NodeId, OpId)> = self
            .exchanges
            .keys()
            .copied()
            .filter(|(n, _)| *n == node)
            .collect();
        keys.sort_unstable();
        for (n, op) in keys {
            let mut resend = Vec::new();
            for f in failed.iter() {
                // Consume the entries: re-buffering re-caches the rows
                // under their heirs, and a second recovery round must not
                // re-send (and thereby duplicate) them.
                resend.extend(
                    self.exchanges
                        .get_mut(&(n, op))
                        .expect("key exists")
                        .take_cached_for(f, &failed),
                );
            }
            if resend.is_empty() {
                continue;
            }
            self.retransmitted += resend.len();
            // Re-enter the exchange operator itself: routing now consults
            // the recovery snapshot, so the rows land at the heirs.
            self.process_at(node, op, 0, resend, ready)?;
            ready = self.sim.cpu_free_at(node).max(ready);
        }
        Ok(ready)
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    fn into_report(self) -> QueryReport {
        let mut rows: Vec<Tuple> = self.output.into_iter().map(|r| r.tuple).collect();
        rows.sort();
        let stats = self.sim.stats();
        QueryReport {
            rows,
            running_time: self.finish_time,
            total_bytes: stats.total_bytes(),
            total_messages: stats.total_messages(),
            link_traffic: stats.links().collect(),
            dropped_messages: self.sim.dropped_messages(),
            recovered: self.rounds > 0,
            phases: self.rounds + 1,
            pages_read: self.pages_read,
            tuples_scanned: self.tuples_scanned,
            remote_lookups: self.remote_lookups,
            purged: self.purged,
            retransmitted: self.retransmitted,
        }
    }
}

/// Position of child `child` among `parent`'s inputs.
fn input_index(plan: &PhysicalPlan, parent: OpId, child: OpId) -> usize {
    plan.op(parent)
        .children
        .iter()
        .position(|c| *c == child)
        .expect("child/parent links are consistent")
}

/// Tag freshly scanned tuples, applying the scan predicate.
fn tag_scanned(
    tuples: Vec<Tuple>,
    predicate: &Option<crate::expr::Predicate>,
    node: NodeId,
    phase: Phase,
) -> Vec<TaggedTuple> {
    tuples
        .into_iter()
        .filter(|t| predicate.as_ref().map(|p| p.eval(t)).unwrap_or(true))
        .map(|t| TaggedTuple::scanned(t, node, phase))
        .collect()
}

/// Find the scans, boundary exchanges and blocking operators of the
/// segment rooted at `root` (an exchange or `Output`).
fn segment_sources(plan: &PhysicalPlan, root: OpId) -> SegmentSources {
    let mut out = SegmentSources::default();
    let mut stack: Vec<OpId> = plan.op(root).children.clone();
    while let Some(id) = stack.pop() {
        let op = plan.op(id);
        if op.kind.is_exchange() {
            out.exchanges.push(id);
        } else if op.kind.is_scan() {
            out.scans.push(id);
        } else {
            if op.kind.is_blocking() {
                out.blocking.push(id);
            }
            stack.extend(op.children.iter().copied());
        }
    }
    out.scans.sort_unstable();
    out.exchanges.sort_unstable();
    out.blocking.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp, Predicate};
    use crate::plan::PlanBuilder;
    use orchestra_common::{ColumnType, Relation, Schema, Value};
    use orchestra_storage::{StorageConfig, UpdateBatch};
    use orchestra_substrate::AllocationScheme;

    fn cluster(nodes: u16) -> DistributedStorage {
        let routing = RoutingTable::build(
            &(0..nodes).map(NodeId).collect::<Vec<_>>(),
            AllocationScheme::Balanced,
            3,
        );
        let mut s = DistributedStorage::new(
            routing,
            StorageConfig {
                partitions_per_relation: 8,
            },
        );
        s.register_relation(Relation::partitioned(
            "R",
            Schema::keyed_on_first(vec![
                ("k", ColumnType::Int),
                ("g", ColumnType::Str),
                ("v", ColumnType::Int),
            ]),
        ));
        s.register_relation(Relation::partitioned(
            "S",
            Schema::keyed_on_first(vec![("k", ColumnType::Int), ("w", ColumnType::Int)]),
        ));
        s
    }

    fn r_row(k: i64) -> Tuple {
        Tuple::new(vec![
            Value::Int(k),
            Value::str(if k % 3 == 0 { "a" } else { "b" }),
            Value::Int(k * 10),
        ])
    }

    fn publish_r(s: &mut DistributedStorage, count: i64) {
        let mut b = UpdateBatch::new();
        for k in 0..count {
            b.insert("R", r_row(k));
        }
        s.publish(&b).unwrap();
    }

    fn scan_ship_plan() -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 3, None);
        let ship = b.ship(scan);
        b.output(ship)
    }

    #[test]
    fn scan_ship_returns_every_tuple_exactly_once() {
        let mut s = cluster(4);
        publish_r(&mut s, 100);
        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let report = exec
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        assert_eq!(report.rows.len(), 100);
        let mut expected: Vec<Tuple> = (0..100).map(r_row).collect();
        expected.sort();
        assert_eq!(report.rows, expected);
        assert!(!report.recovered);
        assert_eq!(report.phases, 1);
        assert!(report.running_time > SimTime::ZERO);
        assert!(report.total_bytes > 0);
    }

    #[test]
    fn per_link_traffic_sums_to_total() {
        let mut s = cluster(4);
        publish_r(&mut s, 100);
        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let report = exec
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        let sum: u64 = report.link_traffic.iter().map(|(_, b)| b).sum();
        assert_eq!(sum, report.total_bytes);
        assert!(report.total_messages > 0);
    }

    #[test]
    fn select_predicate_filters_rows() {
        let mut s = cluster(4);
        publish_r(&mut s, 60);
        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 3, None);
        let sel = b.select(scan, Predicate::cmp(2, CmpOp::Lt, 200i64));
        let ship = b.ship(sel);
        let plan = b.output(ship);
        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let report = exec.execute(&plan, Epoch(0), NodeId(1)).unwrap();
        // v = k * 10 < 200  =>  k in 0..20.
        assert_eq!(report.rows.len(), 20);
        assert!(report.rows.iter().all(|t| t.value(2) < &Value::Int(200)));
    }

    #[test]
    fn sargable_scan_predicate_matches_select() {
        let mut s = cluster(4);
        publish_r(&mut s, 60);
        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 3, Some(Predicate::cmp(2, CmpOp::Lt, 200i64)));
        let ship = b.ship(scan);
        let plan = b.output(ship);
        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let report = exec.execute(&plan, Epoch(0), NodeId(1)).unwrap();
        assert_eq!(report.rows.len(), 20);
    }

    #[test]
    fn pipelined_join_matches_nested_loop() {
        let mut s = cluster(4);
        publish_r(&mut s, 40);
        let mut b = UpdateBatch::new();
        for k in 0..40 {
            if k % 2 == 0 {
                b.insert("S", Tuple::new(vec![Value::Int(k), Value::Int(k + 1000)]));
            }
        }
        s.publish(&b).unwrap();

        let mut pb = PlanBuilder::new();
        let r = pb.scan("R", 3, None);
        let sc = pb.scan("S", 2, None);
        let r_re = pb.rehash(r, vec![0]);
        let s_re = pb.rehash(sc, vec![0]);
        let join = pb.hash_join(r_re, s_re, vec![0], vec![0]);
        let ship = pb.ship(join);
        let plan = pb.output(ship);

        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let report = exec.execute(&plan, Epoch(1), NodeId(0)).unwrap();
        // Every even k joins once: R(k, g, v) ++ S(k, w).
        assert_eq!(report.rows.len(), 20);
        for row in &report.rows {
            assert_eq!(row.value(0), row.value(3));
            let k = row.value(0).as_int().unwrap();
            assert_eq!(row.value(4), &Value::Int(k + 1000));
        }
    }

    #[test]
    fn two_phase_aggregation_matches_direct_computation() {
        let mut s = cluster(4);
        publish_r(&mut s, 90);
        let mut pb = PlanBuilder::new();
        let scan = pb.scan("R", 3, None);
        let re = pb.rehash(scan, vec![1]);
        let agg = pb.two_phase_aggregate(re, vec![1], vec![(AggFunc::Sum, 2), (AggFunc::Count, 2)]);
        let plan = pb.output(agg);

        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let report = exec.execute(&plan, Epoch(0), NodeId(2)).unwrap();

        // Ground truth computed directly.
        let mut expected: HashMap<&str, (i64, i64)> = HashMap::new();
        for k in 0..90i64 {
            let g = if k % 3 == 0 { "a" } else { "b" };
            let e = expected.entry(g).or_default();
            e.0 += k * 10;
            e.1 += 1;
        }
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            let g = row.value(0).as_str().unwrap();
            let (sum, count) = expected[g];
            assert_eq!(row.value(1), &Value::Int(sum), "group {g}");
            assert_eq!(row.value(2), &Value::Int(count), "group {g}");
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let mut s = cluster(5);
        publish_r(&mut s, 80);
        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let a = exec
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        let b = exec
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.running_time, b.running_time);
        assert_eq!(a.link_traffic, b.link_traffic);
    }

    #[test]
    fn incremental_without_recovery_support_is_rejected() {
        let mut s = cluster(4);
        publish_r(&mut s, 50);
        let config = EngineConfig {
            recovery: false,
            strategy: RecoveryStrategy::Incremental,
            ..EngineConfig::default()
        };
        let exec = QueryExecutor::new(&s, config);
        let baseline = QueryExecutor::new(&s, EngineConfig::default())
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        let failure = FailureSpec::at_time(
            NodeId(2),
            baseline
                .running_time
                .saturating_sub(SimTime::from_micros(baseline.running_time.as_micros() / 2)),
        );
        let err = exec
            .execute_with_failure(&scan_ship_plan(), Epoch(0), NodeId(0), failure)
            .unwrap_err();
        assert_eq!(err.category(), "execution");
    }

    #[test]
    fn unknown_failure_target_is_an_error_not_a_panic() {
        // Regression: an out-of-range node id in the failure spec used to
        // panic inside the simulator instead of returning an error.
        let mut s = cluster(4);
        publish_r(&mut s, 10);
        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let failure = FailureSpec::at_time(NodeId(99), SimTime::from_micros(1));
        let err = exec
            .execute_with_failure(&scan_ship_plan(), Epoch(0), NodeId(0), failure)
            .unwrap_err();
        assert!(err.message().contains("not a member"), "{err}");
    }

    #[test]
    fn remote_scan_fetches_are_charged_to_the_network() {
        // A heir's rescan after a failure is served from its own replica
        // copies (that is why it inherits the range), so to exercise the
        // remote-fetch path we instead scan under a routing table the
        // data was never placed for: a membership change without
        // anti-entropy, exactly as storage models a fresh join.
        let mut s = cluster(6);
        publish_r(&mut s, 120);
        let baseline = QueryExecutor::new(&s, EngineConfig::default())
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        assert_eq!(
            baseline.remote_lookups, 0,
            "co-location holds in steady state"
        );

        let grown = RoutingTable::build(
            &(0..7).map(NodeId).collect::<Vec<_>>(),
            AllocationScheme::Balanced,
            3,
        );
        s.set_routing(grown);
        let report = QueryExecutor::new(&s, EngineConfig::default())
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        assert_eq!(report.rows, baseline.rows, "answers survive the reshuffle");
        assert!(report.remote_lookups > 0, "the joiner must fetch remotely");
        // The remote fetches must show up as measured traffic, not just
        // as a counter: more bytes flow than in the steady-state run.
        assert!(
            report.total_bytes > baseline.total_bytes,
            "remote fetch bytes must be charged ({} vs {})",
            report.total_bytes,
            baseline.total_bytes
        );
    }

    #[test]
    fn initiator_failure_is_fatal() {
        let mut s = cluster(4);
        publish_r(&mut s, 50);
        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let failure = FailureSpec::at_time(NodeId(0), SimTime::from_micros(1));
        let err = exec
            .execute_with_failure(&scan_ship_plan(), Epoch(0), NodeId(0), failure)
            .unwrap_err();
        assert!(err.message().contains("initiator"));
    }

    #[test]
    fn restart_recovery_returns_the_full_answer() {
        let mut s = cluster(6);
        publish_r(&mut s, 120);
        let config = EngineConfig {
            strategy: RecoveryStrategy::Restart,
            ..EngineConfig::default()
        };
        let exec = QueryExecutor::new(&s, config);
        let baseline = exec
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        let failure = FailureSpec::at_time(
            NodeId(3),
            SimTime::from_micros(baseline.running_time.as_micros() / 2),
        );
        let report = exec
            .execute_with_failure(&scan_ship_plan(), Epoch(0), NodeId(0), failure)
            .unwrap();
        assert!(report.recovered);
        assert_eq!(report.phases, 2);
        assert_eq!(report.rows, baseline.rows);
        assert!(report.running_time > baseline.running_time);
    }

    #[test]
    fn incremental_join_recovery_retransmits_cached_output() {
        // A join rehashed on a high-cardinality key sends rows to every
        // node, so killing one mid-query must exercise recovery stage 4:
        // untainted cached rows re-routed to the heirs.
        let mut s = cluster(6);
        publish_r(&mut s, 120);
        let mut b = UpdateBatch::new();
        for k in 0..120 {
            b.insert("S", Tuple::new(vec![Value::Int(k), Value::Int(k * 10)]));
        }
        s.publish(&b).unwrap();

        // Join on R.v = S.w — neither side's join key is its storage
        // partitioning key, so the rehash genuinely moves rows between
        // nodes (rehashing on the partitioning key would be a pure
        // self-send thanks to co-location).
        let plan = || {
            let mut pb = PlanBuilder::new();
            let r = pb.scan("R", 3, None);
            let sc = pb.scan("S", 2, None);
            let r_re = pb.rehash(r, vec![2]);
            let s_re = pb.rehash(sc, vec![1]);
            let join = pb.hash_join(r_re, s_re, vec![2], vec![1]);
            let ship = pb.ship(join);
            pb.output(ship)
        };

        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let baseline = exec.execute(&plan(), Epoch(1), NodeId(0)).unwrap();
        assert_eq!(baseline.rows.len(), 120);

        let failure = FailureSpec::at_time(
            NodeId(4),
            SimTime::from_micros(baseline.running_time.as_micros() / 2),
        );
        let report = exec
            .execute_with_failure(&plan(), Epoch(1), NodeId(0), failure)
            .unwrap();
        assert!(report.recovered);
        assert_eq!(
            report.rows, baseline.rows,
            "join answer must be duplicate-free"
        );
        assert!(report.purged > 0, "tainted join state must be purged");
        assert!(
            report.retransmitted > 0,
            "stage-4 output-cache retransmission must fire"
        );
    }

    #[test]
    fn incremental_recovery_returns_the_full_answer() {
        let mut s = cluster(6);
        publish_r(&mut s, 120);
        let exec = QueryExecutor::new(&s, EngineConfig::default());
        let baseline = exec
            .execute(&scan_ship_plan(), Epoch(0), NodeId(0))
            .unwrap();
        let failure = FailureSpec::at_time(
            NodeId(3),
            SimTime::from_micros(baseline.running_time.as_micros() / 2),
        );
        let report = exec
            .execute_with_failure(&scan_ship_plan(), Epoch(0), NodeId(0), failure)
            .unwrap();
        assert!(report.recovered);
        assert_eq!(report.rows, baseline.rows);
    }
}
