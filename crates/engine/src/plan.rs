//! Physical query plans.
//!
//! A [`PhysicalPlan`] is a tree of the operators listed in Table I of the
//! paper.  Leaf operators are scans over the versioned store; `Rehash`
//! repartitions intermediate results across the participants; `Ship`
//! forwards results to the query initiator; everything above the `Ship`
//! boundary (final aggregation, output collection) runs only at the
//! initiator, everything below runs at every participant of the routing
//! snapshot.
//!
//! Plans are built with [`PlanBuilder`], which tracks output arities,
//! validates column references, and assigns execution sites.  The
//! optimizer crate produces plans through this builder; the workloads
//! crate also uses it directly for the fixed benchmark plans.

use crate::expr::{AggFunc, Predicate, ScalarExpr};

/// Identifier of an operator within its plan (index into the plan's
/// operator table).
pub type OpId = usize;

/// Where an operator executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// At every participant in the routing snapshot.
    Everywhere,
    /// Only at the query initiator (operators above the `Ship` boundary).
    InitiatorOnly,
}

/// How an aggregation operator interprets its input and produces output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggMode {
    /// One-shot aggregation over raw rows (used at the initiator when no
    /// distributed pre-aggregation is worthwhile, e.g. TPC-H Q6).
    Single,
    /// Distributed pre-aggregation over raw rows, emitting mergeable
    /// partial states (e.g. the per-node half of TPC-H Q1).
    Partial,
    /// Merge of partial states produced by `Partial` instances
    /// ("re-aggregation of partially aggregated intermediate results").
    Final,
}

/// The operator kinds of Table I.
#[derive(Clone, Debug, PartialEq)]
pub enum OperatorKind {
    /// Scan of a partitioned relation at the executing node's ranges,
    /// through index pages and data pages (Algorithm 1 restricted to the
    /// local partition).
    DistributedScan {
        /// Relation to scan.
        relation: String,
        /// Sargable predicate applied at the index/data nodes.
        predicate: Option<Predicate>,
    },
    /// Scan that answers from the index pages alone because only key
    /// attributes are needed ("bypassing the data storage nodes").
    CoveringIndexScan {
        /// Relation to scan.
        relation: String,
        /// Sargable predicate over the key attributes.
        predicate: Option<Predicate>,
    },
    /// Scan of a relation replicated in full at every node (TPC-H `nation`
    /// and `region`); no repartitioning is ever needed for these.
    ReplicatedScan {
        /// Relation to scan.
        relation: String,
        /// Predicate applied during the scan.
        predicate: Option<Predicate>,
    },
    /// Selection over intermediate results.
    Select {
        /// Filter predicate.
        predicate: Predicate,
    },
    /// Projection onto a subset of columns.
    Project {
        /// Input column indices to keep, in output order.
        columns: Vec<usize>,
    },
    /// Scalar function evaluation; the output row is exactly the list of
    /// expression results.
    ComputeFunction {
        /// One expression per output column.
        exprs: Vec<ScalarExpr>,
    },
    /// Pipelined (symmetric) hash join.
    HashJoin {
        /// Join-key columns of the left input.
        left_keys: Vec<usize>,
        /// Join-key columns of the right input.
        right_keys: Vec<usize>,
    },
    /// Blocking hash aggregation (with provenance sub-groups, Section V-D).
    Aggregate {
        /// Grouping columns (of the raw input for `Single`/`Partial`, of
        /// the partial layout for `Final`).
        group_by: Vec<usize>,
        /// Aggregate functions and their input columns.
        aggs: Vec<(AggFunc, usize)>,
        /// Aggregation mode.
        mode: AggMode,
    },
    /// Repartition the input across all participants by hashing the given
    /// columns and consulting the routing snapshot.
    Rehash {
        /// Columns forming the repartitioning key.
        columns: Vec<usize>,
    },
    /// Replicate every input tuple to all participants of the routing
    /// snapshot.  A join whose other input stays in place (under *any*
    /// disjoint partitioning) is correct above a broadcast, because each
    /// stationary row exists at exactly one node — the exchange view
    /// maintenance uses to join a small signed delta stream against a
    /// large relation without moving the relation.
    Broadcast,
    /// Send all input tuples to the query initiator.
    Ship,
    /// Collect final results at the initiator (implicit root).
    Output,
}

impl OperatorKind {
    /// Short name used in plan rendering and reports.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::DistributedScan { .. } => "DistributedScan",
            OperatorKind::CoveringIndexScan { .. } => "CoveringIndexScan",
            OperatorKind::ReplicatedScan { .. } => "ReplicatedScan",
            OperatorKind::Select { .. } => "Select",
            OperatorKind::Project { .. } => "Project",
            OperatorKind::ComputeFunction { .. } => "ComputeFunction",
            OperatorKind::HashJoin { .. } => "HashJoin",
            OperatorKind::Aggregate { .. } => "Aggregate",
            OperatorKind::Rehash { .. } => "Rehash",
            OperatorKind::Broadcast => "Broadcast",
            OperatorKind::Ship => "Ship",
            OperatorKind::Output => "Output",
        }
    }

    /// Is this a leaf (storage) operator?
    pub fn is_scan(&self) -> bool {
        matches!(
            self,
            OperatorKind::DistributedScan { .. }
                | OperatorKind::CoveringIndexScan { .. }
                | OperatorKind::ReplicatedScan { .. }
        )
    }

    /// Does this operator move tuples between nodes?
    pub fn is_exchange(&self) -> bool {
        matches!(
            self,
            OperatorKind::Rehash { .. } | OperatorKind::Broadcast | OperatorKind::Ship
        )
    }

    /// Is this a blocking operator (emits only at end-of-stream)?
    pub fn is_blocking(&self) -> bool {
        matches!(self, OperatorKind::Aggregate { .. })
    }
}

/// One operator of a physical plan.
#[derive(Clone, Debug, PartialEq)]
pub struct Operator {
    /// The operator's identifier (index into [`PhysicalPlan::operators`]).
    pub id: OpId,
    /// What the operator does.
    pub kind: OperatorKind,
    /// Child operators (data sources), in input order (`HashJoin` has two:
    /// left then right).
    pub children: Vec<OpId>,
    /// Parent operator, `None` only for the root `Output`.
    pub parent: Option<OpId>,
    /// Number of columns in the operator's output rows.
    pub arity: usize,
    /// Where the operator runs.
    pub site: Site,
}

/// A complete physical plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    operators: Vec<Operator>,
    root: OpId,
}

impl PhysicalPlan {
    /// All operators, indexed by [`OpId`].
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// The operator with the given id.
    pub fn op(&self, id: OpId) -> &Operator {
        &self.operators[id]
    }

    /// The root (`Output`) operator.
    pub fn root(&self) -> OpId {
        self.root
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// Is the plan empty (never true for a built plan)?
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// The ids of all leaf scans.
    pub fn scans(&self) -> Vec<OpId> {
        self.operators
            .iter()
            .filter(|o| o.kind.is_scan())
            .map(|o| o.id)
            .collect()
    }

    /// The relations referenced by the plan's scans.
    pub fn relations(&self) -> Vec<&str> {
        self.operators
            .iter()
            .filter_map(|o| match &o.kind {
                OperatorKind::DistributedScan { relation, .. }
                | OperatorKind::CoveringIndexScan { relation, .. }
                | OperatorKind::ReplicatedScan { relation, .. } => Some(relation.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Number of `Rehash` operators (the paper's discussion of recovery
    /// cost and of bandwidth sensitivity is parameterised by this).
    pub fn rehash_count(&self) -> usize {
        self.operators
            .iter()
            .filter(|o| matches!(o.kind, OperatorKind::Rehash { .. }))
            .count()
    }

    /// Approximate wire size of the plan when disseminated to the
    /// participants along with the routing snapshot.
    pub fn serialized_size(&self) -> usize {
        128 + 96 * self.operators.len()
    }

    /// Multi-line indented rendering of the plan tree (for docs, examples
    /// and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(self.root, 0, &mut out);
        out
    }

    fn render_into(&self, id: OpId, depth: usize, out: &mut String) {
        let op = self.op(id);
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} [id={}, arity={}, site={:?}]\n",
            op.kind.name(),
            op.id,
            op.arity,
            op.site
        ));
        for child in &op.children {
            self.render_into(*child, depth + 1, out);
        }
    }
}

/// Incremental builder for [`PhysicalPlan`]s.
#[derive(Clone, Debug, Default)]
pub struct PlanBuilder {
    operators: Vec<Operator>,
}

impl PlanBuilder {
    /// A fresh, empty builder.
    pub fn new() -> PlanBuilder {
        PlanBuilder::default()
    }

    fn push(&mut self, kind: OperatorKind, children: Vec<OpId>, arity: usize) -> OpId {
        let id = self.operators.len();
        for &c in &children {
            assert!(c < id, "child {c} does not exist yet");
            assert!(
                self.operators[c].parent.is_none(),
                "operator {c} already has a parent"
            );
            self.operators[c].parent = Some(id);
        }
        self.operators.push(Operator {
            id,
            kind,
            children,
            parent: None,
            arity,
            site: Site::Everywhere,
        });
        id
    }

    fn arity_of(&self, id: OpId) -> usize {
        self.operators[id].arity
    }

    /// Add a distributed scan of a partitioned relation with `arity`
    /// columns.
    pub fn scan(
        &mut self,
        relation: impl Into<String>,
        arity: usize,
        predicate: Option<Predicate>,
    ) -> OpId {
        self.push(
            OperatorKind::DistributedScan {
                relation: relation.into(),
                predicate,
            },
            vec![],
            arity,
        )
    }

    /// Add a covering index scan returning only the `key_len` key columns.
    pub fn covering_index_scan(
        &mut self,
        relation: impl Into<String>,
        key_len: usize,
        predicate: Option<Predicate>,
    ) -> OpId {
        self.push(
            OperatorKind::CoveringIndexScan {
                relation: relation.into(),
                predicate,
            },
            vec![],
            key_len,
        )
    }

    /// Add a scan of a fully replicated relation with `arity` columns.
    pub fn replicated_scan(
        &mut self,
        relation: impl Into<String>,
        arity: usize,
        predicate: Option<Predicate>,
    ) -> OpId {
        self.push(
            OperatorKind::ReplicatedScan {
                relation: relation.into(),
                predicate,
            },
            vec![],
            arity,
        )
    }

    /// Add a selection above `child`.
    pub fn select(&mut self, child: OpId, predicate: Predicate) -> OpId {
        let arity = self.arity_of(child);
        self.push(OperatorKind::Select { predicate }, vec![child], arity)
    }

    /// Add a projection above `child`.
    pub fn project(&mut self, child: OpId, columns: Vec<usize>) -> OpId {
        let child_arity = self.arity_of(child);
        assert!(
            columns.iter().all(|c| *c < child_arity),
            "projection column out of range"
        );
        let arity = columns.len();
        self.push(OperatorKind::Project { columns }, vec![child], arity)
    }

    /// Add scalar function evaluation above `child`; the output row is the
    /// list of expression results.
    pub fn compute(&mut self, child: OpId, exprs: Vec<ScalarExpr>) -> OpId {
        let arity = exprs.len();
        self.push(OperatorKind::ComputeFunction { exprs }, vec![child], arity)
    }

    /// Add a pipelined hash join of `left` and `right`.
    pub fn hash_join(
        &mut self,
        left: OpId,
        right: OpId,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
    ) -> OpId {
        assert_eq!(
            left_keys.len(),
            right_keys.len(),
            "join key lists must have equal length"
        );
        let (la, ra) = (self.arity_of(left), self.arity_of(right));
        assert!(
            left_keys.iter().all(|c| *c < la),
            "left join key out of range"
        );
        assert!(
            right_keys.iter().all(|c| *c < ra),
            "right join key out of range"
        );
        self.push(
            OperatorKind::HashJoin {
                left_keys,
                right_keys,
            },
            vec![left, right],
            la + ra,
        )
    }

    /// Add a rehash (repartitioning) above `child`.
    pub fn rehash(&mut self, child: OpId, columns: Vec<usize>) -> OpId {
        let arity = self.arity_of(child);
        assert!(
            columns.iter().all(|c| *c < arity),
            "rehash column out of range"
        );
        self.push(OperatorKind::Rehash { columns }, vec![child], arity)
    }

    /// Add a broadcast-to-all-participants above `child`.
    pub fn broadcast(&mut self, child: OpId) -> OpId {
        let arity = self.arity_of(child);
        self.push(OperatorKind::Broadcast, vec![child], arity)
    }

    /// Add a ship-to-initiator above `child`.
    pub fn ship(&mut self, child: OpId) -> OpId {
        let arity = self.arity_of(child);
        self.push(OperatorKind::Ship, vec![child], arity)
    }

    /// Add an aggregation above `child`.
    pub fn aggregate(
        &mut self,
        child: OpId,
        group_by: Vec<usize>,
        aggs: Vec<(AggFunc, usize)>,
        mode: AggMode,
    ) -> OpId {
        let child_arity = self.arity_of(child);
        assert!(
            group_by.iter().all(|c| *c < child_arity),
            "group-by column out of range"
        );
        if mode != AggMode::Final {
            assert!(
                aggs.iter().all(|(_, c)| *c < child_arity),
                "aggregate input column out of range"
            );
        }
        let arity = match mode {
            AggMode::Partial => {
                group_by.len() + aggs.iter().map(|(f, _)| f.partial_width()).sum::<usize>()
            }
            AggMode::Single | AggMode::Final => group_by.len() + aggs.len(),
        };
        self.push(
            OperatorKind::Aggregate {
                group_by,
                aggs,
                mode,
            },
            vec![child],
            arity,
        )
    }

    /// Convenience: a distributed two-phase aggregation.  Adds a
    /// `Partial` aggregate above `child`, ships the partials to the
    /// initiator, and merges them there with a `Final` aggregate whose
    /// column references are derived from the partial layout.  Returns the
    /// final aggregate's id.
    pub fn two_phase_aggregate(
        &mut self,
        child: OpId,
        group_by: Vec<usize>,
        aggs: Vec<(AggFunc, usize)>,
    ) -> OpId {
        let group_count = group_by.len();
        let partial = self.aggregate(child, group_by, aggs.clone(), AggMode::Partial);
        let shipped = self.ship(partial);
        // In the partial layout the group columns come first, then each
        // aggregate's state columns.
        let mut col = group_count;
        let mut final_aggs = Vec::with_capacity(aggs.len());
        for (f, _) in &aggs {
            final_aggs.push((*f, col));
            col += f.partial_width();
        }
        self.aggregate(
            shipped,
            (0..group_count).collect(),
            final_aggs,
            AggMode::Final,
        )
    }

    /// Finish the plan: add the `Output` collector above `child`, assign
    /// execution sites, and validate the tree.
    pub fn output(mut self, child: OpId) -> PhysicalPlan {
        let arity = self.arity_of(child);
        let root = self.push(OperatorKind::Output, vec![child], arity);
        let mut plan = PhysicalPlan {
            operators: self.operators,
            root,
        };
        assign_sites(&mut plan);
        validate(&plan);
        plan
    }
}

/// Mark everything strictly above each `Ship` boundary as initiator-only.
fn assign_sites(plan: &mut PhysicalPlan) {
    fn mark(plan: &mut PhysicalPlan, id: OpId) {
        plan.operators[id].site = Site::InitiatorOnly;
        let children = plan.operators[id].children.clone();
        for child in children {
            if !matches!(plan.operators[child].kind, OperatorKind::Ship) {
                mark(plan, child);
            }
        }
    }
    mark(plan, plan.root);
}

/// Structural validation; panics with a descriptive message on invalid
/// plans (plans are built programmatically, so a panic is a programming
/// error, not a runtime condition).
fn validate(plan: &PhysicalPlan) {
    assert!(
        matches!(plan.op(plan.root).kind, OperatorKind::Output),
        "plan root must be Output"
    );
    let mut ship_seen = false;
    for op in plan.operators() {
        match &op.kind {
            OperatorKind::Output => assert_eq!(op.id, plan.root, "Output must be the root"),
            OperatorKind::Ship => ship_seen = true,
            _ => {}
        }
        if op.kind.is_scan() {
            assert!(op.children.is_empty(), "scans must be leaves");
        } else if op.id != plan.root {
            assert!(
                !op.children.is_empty(),
                "{} must have input",
                op.kind.name()
            );
        }
        if matches!(op.kind, OperatorKind::HashJoin { .. }) {
            assert_eq!(op.children.len(), 2, "HashJoin takes exactly two inputs");
        }
    }
    // Every path from a scan to the root must cross exactly one Ship.
    // Checked before the blanket ship-existence assertion so that the
    // error names the violated invariant precisely.
    for scan in plan.scans() {
        let mut ships = 0;
        let mut cursor = Some(scan);
        while let Some(id) = cursor {
            if matches!(plan.op(id).kind, OperatorKind::Ship) {
                ships += 1;
            }
            cursor = plan.op(id).parent;
        }
        assert_eq!(
            ships, 1,
            "each scan-to-root path must cross exactly one Ship"
        );
    }
    assert!(ship_seen, "every plan must ship results to the initiator");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    /// The plan of the paper's Example 5.1:
    /// `SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x`.
    fn example_5_1() -> PhysicalPlan {
        let mut b = PlanBuilder::new();
        let r = b.scan("R", 2, None); // R(x, y)
        let s = b.scan("S", 2, None); // S(y, z)
        let r_rehashed = b.rehash(r, vec![1]); // rehash R on y
        let join = b.hash_join(r_rehashed, s, vec![1], vec![0]); // R.y = S.y
        let rs = b.rehash(join, vec![0]); // rehash on x for grouping
        let agg = b.two_phase_aggregate(rs, vec![0], vec![(AggFunc::Min, 3)]);
        b.output(agg)
    }

    #[test]
    fn example_plan_builds_and_renders() {
        let plan = example_5_1();
        assert_eq!(plan.rehash_count(), 2);
        assert_eq!(plan.relations(), vec!["R", "S"]);
        assert_eq!(plan.scans().len(), 2);
        let rendering = plan.render();
        assert!(rendering.contains("HashJoin"));
        assert!(rendering.contains("Ship"));
        assert!(rendering.contains("Output"));
        assert!(plan.serialized_size() > 0);
        assert!(!plan.is_empty());
    }

    #[test]
    fn sites_split_at_the_ship_boundary() {
        let plan = example_5_1();
        for op in plan.operators() {
            match op.kind {
                OperatorKind::Output => assert_eq!(op.site, Site::InitiatorOnly),
                OperatorKind::Aggregate {
                    mode: AggMode::Final,
                    ..
                } => assert_eq!(op.site, Site::InitiatorOnly),
                OperatorKind::Aggregate { .. } => assert_eq!(op.site, Site::Everywhere),
                OperatorKind::Ship => assert_eq!(op.site, Site::Everywhere),
                _ => assert_eq!(op.site, Site::Everywhere),
            }
        }
    }

    #[test]
    fn arities_propagate() {
        let plan = example_5_1();
        let join = plan
            .operators()
            .iter()
            .find(|o| matches!(o.kind, OperatorKind::HashJoin { .. }))
            .unwrap();
        assert_eq!(join.arity, 4);
        let partial = plan
            .operators()
            .iter()
            .find(|o| {
                matches!(
                    o.kind,
                    OperatorKind::Aggregate {
                        mode: AggMode::Partial,
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(partial.arity, 2); // group col + MIN state
        assert_eq!(plan.op(plan.root()).arity, 2);
    }

    #[test]
    fn two_phase_average_uses_two_state_columns() {
        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 3, None);
        let agg =
            b.two_phase_aggregate(scan, vec![0], vec![(AggFunc::Avg, 2), (AggFunc::Count, 1)]);
        let plan = b.output(agg);
        let partial = plan
            .operators()
            .iter()
            .find(|o| {
                matches!(
                    o.kind,
                    OperatorKind::Aggregate {
                        mode: AggMode::Partial,
                        ..
                    }
                )
            })
            .unwrap();
        // group col + (sum, count) + count
        assert_eq!(partial.arity, 4);
        let final_agg = plan
            .operators()
            .iter()
            .find(|o| {
                matches!(
                    o.kind,
                    OperatorKind::Aggregate {
                        mode: AggMode::Final,
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(final_agg.arity, 3);
        if let OperatorKind::Aggregate { aggs, .. } = &final_agg.kind {
            // AVG merges from column 1, COUNT from column 3 of the partial layout.
            assert_eq!(aggs[0], (AggFunc::Avg, 1));
            assert_eq!(aggs[1], (AggFunc::Count, 3));
        }
    }

    #[test]
    fn select_project_compute_arities() {
        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 4, Some(Predicate::cmp(0, CmpOp::Gt, 5i64)));
        let sel = b.select(scan, Predicate::cmp(1, CmpOp::Lt, 100i64));
        let proj = b.project(sel, vec![3, 0]);
        let comp = b.compute(
            proj,
            vec![
                ScalarExpr::col(0),
                ScalarExpr::col(1),
                ScalarExpr::lit(1i64),
            ],
        );
        let ship = b.ship(comp);
        let plan = b.output(ship);
        assert_eq!(plan.op(proj).arity, 2);
        assert_eq!(plan.op(comp).arity, 3);
        assert_eq!(plan.op(plan.root()).arity, 3);
    }

    #[test]
    #[should_panic(expected = "exactly one Ship")]
    fn plans_without_ship_are_rejected() {
        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 2, None);
        b.output(scan);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_projection_is_rejected() {
        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 2, None);
        b.project(scan, vec![5]);
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn sharing_a_child_is_rejected() {
        let mut b = PlanBuilder::new();
        let scan = b.scan("R", 2, None);
        let _a = b.select(scan, Predicate::True);
        let _b = b.select(scan, Predicate::True);
    }
}
