//! Provenance tags and execution phases.
//!
//! Section V-D: "We tag each tuple in the system with the set of nodes
//! that have processed it (or any tuple used to create it), and maintain
//! these sets of nodes as the tuples propagate their way through the
//! operator graph."  In addition, "each tuple gets tagged with a phase"
//! so the system can tell old in-flight data from a failed node apart from
//! freshly recomputed results.
//!
//! [`TaggedTuple`] is a tuple plus those two pieces of metadata; it is
//! what flows between operators and across the (simulated) wire when
//! recovery support is enabled.

use orchestra_common::{NodeId, NodeSet, Tuple};

/// An execution phase: 0 for the initial run, incremented by each
/// recovery invocation.
pub type Phase = u32;

/// Number of wire bytes used by a provenance tag (a 256-bit node set plus
/// a 4-byte phase).  This is the per-tuple overhead the paper measures at
/// "at most 2%" extra network traffic.
pub const TAG_WIRE_BYTES: usize = 32 + 4;

/// A tuple annotated with its provenance and phase, plus the *sign* that
/// makes it a delta: `+1` for an assertion (the only sign ordinary
/// queries ever produce) and `-1` for a retraction flowing through a
/// maintenance pipeline (`exec::ivm`).  Signs multiply through joins and
/// are folded by aggregates, so a retracted base tuple cancels exactly
/// the derived state its original insertion created.  The sign rides
/// inside the per-tuple framing the batch encoding already charges for,
/// so it adds no wire bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaggedTuple {
    /// The data tuple.
    pub tuple: Tuple,
    /// The set of nodes that processed this tuple or any tuple used to
    /// derive it.
    pub provenance: NodeSet,
    /// The phase in which this tuple was (re)produced.
    pub phase: Phase,
    /// `+1` for an assertion, `-1` for a retraction.
    pub sign: i8,
}

impl TaggedTuple {
    /// Tag a freshly scanned tuple: it has been processed only by the
    /// scanning node.
    pub fn scanned(tuple: Tuple, node: NodeId, phase: Phase) -> TaggedTuple {
        TaggedTuple {
            tuple,
            provenance: NodeSet::singleton(node),
            phase,
            sign: 1,
        }
    }

    /// Flip or set the sign (delta scans tag removed versions `-1`).
    pub fn with_sign(mut self, sign: i8) -> TaggedTuple {
        self.sign = sign;
        self
    }

    /// Record that `node` has now processed this tuple.
    pub fn processed_by(mut self, node: NodeId) -> TaggedTuple {
        self.provenance.insert(node);
        self
    }

    /// Combine two tuples into a derived tuple (e.g. a join result): the
    /// data is `tuple`, the provenance the union of the parents' plus the
    /// deriving node, the phase the maximum of the parents', the sign
    /// the product (a retraction joined with an assertion retracts the
    /// derived row).
    pub fn derived(
        tuple: Tuple,
        left: &TaggedTuple,
        right: &TaggedTuple,
        node: NodeId,
    ) -> TaggedTuple {
        let mut provenance = left.provenance.union(&right.provenance);
        provenance.insert(node);
        TaggedTuple {
            tuple,
            provenance,
            phase: left.phase.max(right.phase),
            sign: left.sign * right.sign,
        }
    }

    /// Replace the data while keeping the tags (projection, function
    /// evaluation).
    pub fn with_tuple(&self, tuple: Tuple) -> TaggedTuple {
        TaggedTuple {
            tuple,
            provenance: self.provenance,
            phase: self.phase,
            sign: self.sign,
        }
    }

    /// Is this tuple tainted with respect to a set of failed nodes?
    pub fn is_tainted(&self, failed: &NodeSet) -> bool {
        self.provenance.intersects(failed)
    }

    /// Wire size of the tuple including (if `with_tags`) its provenance
    /// tag.
    pub fn wire_size(&self, with_tags: bool) -> usize {
        self.tuple.serialized_size() + if with_tags { TAG_WIRE_BYTES } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::Value;

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn scan_and_processing_build_provenance() {
        let a = TaggedTuple::scanned(t(1), NodeId(3), 0).processed_by(NodeId(5));
        assert!(a.provenance.contains(NodeId(3)));
        assert!(a.provenance.contains(NodeId(5)));
        assert_eq!(a.provenance.len(), 2);
        assert_eq!(a.phase, 0);
    }

    #[test]
    fn derived_tuples_union_provenance_and_max_phase() {
        let l = TaggedTuple::scanned(t(1), NodeId(0), 0);
        let r = TaggedTuple::scanned(t(2), NodeId(1), 1);
        let j = TaggedTuple::derived(t(3), &l, &r, NodeId(2));
        assert_eq!(j.provenance.len(), 3);
        assert_eq!(j.phase, 1);
        assert_eq!(j.tuple, t(3));
    }

    #[test]
    fn taint_detection() {
        let x = TaggedTuple::scanned(t(1), NodeId(4), 0).processed_by(NodeId(7));
        let failed = NodeSet::singleton(NodeId(7));
        let other = NodeSet::singleton(NodeId(9));
        assert!(x.is_tainted(&failed));
        assert!(!x.is_tainted(&other));
    }

    #[test]
    fn wire_size_includes_tag_only_when_asked() {
        let x = TaggedTuple::scanned(t(1), NodeId(0), 0);
        assert_eq!(x.wire_size(false) + TAG_WIRE_BYTES, x.wire_size(true));
    }

    #[test]
    fn signs_default_positive_and_multiply_through_derivation() {
        let assertion = TaggedTuple::scanned(t(1), NodeId(0), 0);
        assert_eq!(assertion.sign, 1);
        let retraction = TaggedTuple::scanned(t(2), NodeId(1), 0).with_sign(-1);
        assert_eq!(retraction.sign, -1);
        let j = TaggedTuple::derived(t(3), &assertion, &retraction, NodeId(2));
        assert_eq!(j.sign, -1, "assertion × retraction retracts");
        let jj = TaggedTuple::derived(t(4), &retraction, &retraction, NodeId(2));
        assert_eq!(jj.sign, 1, "two retractions assert");
        assert_eq!(retraction.with_tuple(t(9)).sign, -1);
    }

    #[test]
    fn with_tuple_keeps_tags() {
        let x = TaggedTuple::scanned(t(1), NodeId(2), 3);
        let y = x.with_tuple(t(9));
        assert_eq!(y.tuple, t(9));
        assert_eq!(y.provenance, x.provenance);
        assert_eq!(y.phase, 3);
    }
}
