//! Query-report assembly and traffic accounting.
//!
//! [`RunStats`] accumulates the executor-side counters (scan volumes,
//! recovery work, round count) while the simulator keeps the ground-truth
//! per-link traffic; `Runtime::into_report` folds both into the
//! [`QueryReport`] the caller receives — the quantities plotted in the
//! paper's figures.

use super::pipeline::Runtime;
use orchestra_common::{NodeId, Tuple};
use orchestra_simnet::SimTime;

/// Executor-side counters of one run, folded into the [`QueryReport`].
#[derive(Clone, Copy, Debug, Default)]
pub(super) struct RunStats {
    /// Completed recovery rounds.
    pub(super) rounds: u32,
    /// Index pages consulted by all scans.
    pub(super) pages_read: usize,
    /// Tuple versions fetched by all scans.
    pub(super) tuples_scanned: usize,
    /// Tuple fetches that had to leave the scanning node.
    pub(super) remote_lookups: usize,
    /// Rows and sub-groups purged as tainted (incremental recovery).
    pub(super) purged: usize,
    /// Rows re-transmitted from output caches (incremental recovery).
    pub(super) retransmitted: usize,
    /// Host wall-clock: rows processed per operator class.
    pub(super) op_rows: [u64; 8],
    /// Host wall-clock: nanoseconds of operator compute per class.
    pub(super) op_nanos: [u64; 8],
}

/// Host wall-clock cost of one run, broken down by operator class.
///
/// Unlike every other figure in [`QueryReport`], these measure the real
/// machine the simulation ran on — compute time inside the engine's
/// operators, excluding the simulated network.  They are nondeterministic
/// by nature and therefore excluded from the byte-exact determinism
/// gates (the bench binary omits them under `--no-wall-clock`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WallClock {
    /// Rows processed per operator class, indexed as [`WallClock::NAMES`].
    pub op_rows: [u64; 8],
    /// Nanoseconds of operator compute per class.
    pub op_nanos: [u64; 8],
}

impl WallClock {
    /// Labels of the operator classes, in slot order.
    pub const NAMES: [&'static str; 8] = [
        "select",
        "project",
        "compute",
        "join",
        "aggregate",
        "exchange",
        "scan",
        "output",
    ];

    /// Total rows processed across all operator classes.
    pub fn total_rows(&self) -> u64 {
        self.op_rows.iter().sum()
    }

    /// Total operator compute time in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.op_nanos.iter().sum()
    }

    /// Aggregate operator throughput in rows per second of host time.
    pub fn rows_per_sec(&self) -> f64 {
        let nanos = self.total_nanos();
        if nanos == 0 {
            0.0
        } else {
            self.total_rows() as f64 * 1e9 / nanos as f64
        }
    }
}

/// The answer set and execution measurements of one query run.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// The final answer rows, sorted for deterministic comparison.
    pub rows: Vec<Tuple>,
    /// The answer rows with their delta signs, sorted.  Ordinary queries
    /// only ever produce `+1` rows; maintenance sessions (`exec::ivm`)
    /// read the signed form, where a `-1` row retracts state from the
    /// materialized view being maintained.
    pub signed_rows: Vec<(Tuple, i8)>,
    /// Simulated wall-clock running time of the query (including any
    /// recovery rounds).
    pub running_time: SimTime,
    /// Total bytes shipped between distinct nodes.
    pub total_bytes: u64,
    /// Total inter-node messages.
    pub total_messages: u64,
    /// Exact per-directed-link byte counts, in `(src, dst)` order.
    pub link_traffic: Vec<((NodeId, NodeId), u64)>,
    /// Messages the simulator dropped because a party had failed.
    pub dropped_messages: u64,
    /// Did a recovery round run?
    pub recovered: bool,
    /// Number of execution phases (1 for a failure-free run).
    pub phases: u32,
    /// Index pages consulted by all scans.
    pub pages_read: usize,
    /// Tuple versions fetched by all scans.
    pub tuples_scanned: usize,
    /// Tuple fetches that had to leave the scanning node.
    pub remote_lookups: usize,
    /// Rows and sub-groups purged as tainted (incremental recovery).
    pub purged: usize,
    /// Rows re-transmitted from output caches (incremental recovery).
    pub retransmitted: usize,
    /// Host wall-clock operator costs (nondeterministic; excluded from
    /// the determinism gates).
    pub wall_clock: WallClock,
}

impl QueryReport {
    /// The measured output cardinality — the answer's row count.  With
    /// the predicted root cardinality from the optimizer's cost walk,
    /// this is the predicted-vs-actual pair the adaptive feedback loop
    /// folds into its calibration.
    pub fn output_rows(&self) -> usize {
        self.rows.len()
    }

    /// Measured rows processed per operator class (slot order
    /// [`WallClock::NAMES`]).  Unlike the nanosecond timings beside
    /// them, these counts are a function of the data alone and are
    /// deterministic across runs.
    pub fn operator_rows(&self) -> &[u64; 8] {
        &self.wall_clock.op_rows
    }
}

impl Runtime<'_> {
    pub(super) fn into_report(self) -> QueryReport {
        let out = self.output.into_columnar();
        let mut signed_rows: Vec<(Tuple, i8)> = (0..out.len())
            .map(|i| (out.tuple_at(i), out.sign_at(i)))
            .collect();
        signed_rows.sort();
        let mut rows: Vec<Tuple> = signed_rows.iter().map(|(t, _)| t.clone()).collect();
        rows.sort();
        let stats = self.sim.stats();
        QueryReport {
            rows,
            signed_rows,
            running_time: self.finish_time,
            total_bytes: stats.total_bytes(),
            total_messages: stats.total_messages(),
            link_traffic: stats.links().collect(),
            dropped_messages: self.sim.dropped_messages(),
            recovered: self.stats.rounds > 0,
            phases: self.stats.rounds + 1,
            pages_read: self.stats.pages_read,
            tuples_scanned: self.stats.tuples_scanned,
            remote_lookups: self.stats.remote_lookups,
            purged: self.stats.purged,
            retransmitted: self.stats.retransmitted,
            wall_clock: WallClock {
                op_rows: self.stats.op_rows,
                op_nanos: self.stats.op_nanos,
            },
        }
    }
}
