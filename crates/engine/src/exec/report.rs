//! Query-report assembly and traffic accounting.
//!
//! [`RunStats`] accumulates the executor-side counters (scan volumes,
//! recovery work, round count) while the simulator keeps the ground-truth
//! per-link traffic; `Runtime::into_report` folds both into the
//! [`QueryReport`] the caller receives — the quantities plotted in the
//! paper's figures.

use super::pipeline::Runtime;
use orchestra_common::{NodeId, Tuple};
use orchestra_simnet::SimTime;

/// Executor-side counters of one run, folded into the [`QueryReport`].
#[derive(Clone, Copy, Debug, Default)]
pub(super) struct RunStats {
    /// Completed recovery rounds.
    pub(super) rounds: u32,
    /// Index pages consulted by all scans.
    pub(super) pages_read: usize,
    /// Tuple versions fetched by all scans.
    pub(super) tuples_scanned: usize,
    /// Tuple fetches that had to leave the scanning node.
    pub(super) remote_lookups: usize,
    /// Rows and sub-groups purged as tainted (incremental recovery).
    pub(super) purged: usize,
    /// Rows re-transmitted from output caches (incremental recovery).
    pub(super) retransmitted: usize,
}

/// The answer set and execution measurements of one query run.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// The final answer rows, sorted for deterministic comparison.
    pub rows: Vec<Tuple>,
    /// The answer rows with their delta signs, sorted.  Ordinary queries
    /// only ever produce `+1` rows; maintenance sessions (`exec::ivm`)
    /// read the signed form, where a `-1` row retracts state from the
    /// materialized view being maintained.
    pub signed_rows: Vec<(Tuple, i8)>,
    /// Simulated wall-clock running time of the query (including any
    /// recovery rounds).
    pub running_time: SimTime,
    /// Total bytes shipped between distinct nodes.
    pub total_bytes: u64,
    /// Total inter-node messages.
    pub total_messages: u64,
    /// Exact per-directed-link byte counts, in `(src, dst)` order.
    pub link_traffic: Vec<((NodeId, NodeId), u64)>,
    /// Messages the simulator dropped because a party had failed.
    pub dropped_messages: u64,
    /// Did a recovery round run?
    pub recovered: bool,
    /// Number of execution phases (1 for a failure-free run).
    pub phases: u32,
    /// Index pages consulted by all scans.
    pub pages_read: usize,
    /// Tuple versions fetched by all scans.
    pub tuples_scanned: usize,
    /// Tuple fetches that had to leave the scanning node.
    pub remote_lookups: usize,
    /// Rows and sub-groups purged as tainted (incremental recovery).
    pub purged: usize,
    /// Rows re-transmitted from output caches (incremental recovery).
    pub retransmitted: usize,
}

impl Runtime<'_> {
    pub(super) fn into_report(self) -> QueryReport {
        let mut signed_rows: Vec<(Tuple, i8)> =
            self.output.into_iter().map(|r| (r.tuple, r.sign)).collect();
        signed_rows.sort();
        let mut rows: Vec<Tuple> = signed_rows.iter().map(|(t, _)| t.clone()).collect();
        rows.sort();
        let stats = self.sim.stats();
        QueryReport {
            rows,
            signed_rows,
            running_time: self.finish_time,
            total_bytes: stats.total_bytes(),
            total_messages: stats.total_messages(),
            link_traffic: stats.links().collect(),
            dropped_messages: self.sim.dropped_messages(),
            recovered: self.stats.rounds > 0,
            phases: self.stats.rounds + 1,
            pages_read: self.stats.pages_read,
            tuples_scanned: self.stats.tuples_scanned,
            remote_lookups: self.stats.remote_lookups,
            purged: self.stats.purged,
            retransmitted: self.stats.retransmitted,
        }
    }
}
