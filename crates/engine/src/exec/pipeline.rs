//! Per-node operator pipelines and the push loop.
//!
//! `Runtime` is all mutable state of one query execution.  This module
//! owns the event loop (`run`/`handle`), instantiates the local operator
//! pipeline on every participant when the plan arrives, pushes rows from
//! operator to operator (`process_at`), and drives the end-of-stream
//! segment-closure cascade that completes the query.  Scans, exchange
//! batching, recovery and report assembly live in the sibling modules —
//! each reached through an explicit seam: `scan` feeds rows in at the
//! leaves, `exchange::ExchangeLayer` takes rows out at the exchange
//! boundary, `recovery` rebuilds this struct's per-phase state, and
//! `report::RunStats` accumulates the measurements.

use super::exchange::{ExchangeLayer, Payload, EOS_BYTES};
use super::ivm::ScanOverrides;
use super::report::RunStats;
use super::session::SessionSim;
use super::{EngineConfig, QueryReport, StorageHandle};
use crate::batch::TupleBatch;
use crate::expr::ScalarExpr;
use crate::ops::{AggState, JoinState};
use crate::plan::{AggMode, OpId, OperatorKind, PhysicalPlan};
use crate::provenance::{Phase, TaggedTuple};
use orchestra_common::{
    Column, ColumnarBatch, Epoch, KeyRange, NodeId, OrchestraError, Result, Tuple,
};
use orchestra_simnet::{Delivery, SimTime};
use orchestra_substrate::RoutingTable;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

// Wall-clock accounting slots (indices into `RunStats::op_rows` /
// `op_nanos`); see [`super::report::WallClock::NAMES`] for the labels.
const WC_SELECT: usize = 0;
const WC_PROJECT: usize = 1;
const WC_COMPUTE: usize = 2;
const WC_JOIN: usize = 3;
const WC_AGGREGATE: usize = 4;
const WC_EXCHANGE: usize = 5;
pub(super) const WC_SCAN: usize = 6;
const WC_OUTPUT: usize = 7;

/// The wall-clock slot that work belonging to `kind` is billed to.
fn wc_slot(kind: &OperatorKind) -> usize {
    match kind {
        OperatorKind::Select { .. } => WC_SELECT,
        OperatorKind::Project { .. } => WC_PROJECT,
        OperatorKind::ComputeFunction { .. } => WC_COMPUTE,
        OperatorKind::HashJoin { .. } => WC_JOIN,
        OperatorKind::Aggregate { .. } => WC_AGGREGATE,
        OperatorKind::Rehash { .. } | OperatorKind::Broadcast | OperatorKind::Ship => WC_EXCHANGE,
        OperatorKind::Output => WC_OUTPUT,
        OperatorKind::DistributedScan { .. }
        | OperatorKind::CoveringIndexScan { .. }
        | OperatorKind::ReplicatedScan { .. } => WC_SCAN,
    }
}

/// Sources feeding the segment rooted at one exchange (or `Output`): the
/// leaf scans inside the segment and the boundary exchanges whose
/// deliveries enter it from below.
#[derive(Clone, Debug, Default)]
pub(super) struct SegmentSources {
    pub(super) scans: Vec<OpId>,
    pub(super) exchanges: Vec<OpId>,
    pub(super) blocking: Vec<OpId>,
}

/// All mutable state of one query execution.
pub(super) struct Runtime<'a> {
    pub(super) storage: StorageHandle<'a>,
    pub(super) config: &'a EngineConfig,
    pub(super) plan: &'a PhysicalPlan,
    pub(super) epoch: Epoch,
    /// Per-scan epoch pins and delta-scan instructions (empty for
    /// ordinary queries; set by maintenance sessions).
    pub(super) overrides: ScanOverrides,
    /// Participants already hold the plan (installed maintenance
    /// dataflow): dissemination ships parameters + snapshot only.
    pub(super) plan_resident: bool,
    pub(super) initiator: NodeId,

    pub(super) sim: SessionSim,
    /// The routing table of the current phase (original snapshot, then
    /// recovery tables).
    pub(super) table: RoutingTable,
    pub(super) participants: Vec<NodeId>,
    pub(super) phase: Phase,

    /// Per-phase scan assignment: which hash ranges each node scans.
    pub(super) scan_ranges: HashMap<NodeId, Vec<KeyRange>>,
    /// Whether replicated relations are scanned this phase (full runs
    /// only; incremental recovery re-uses the survivors' earlier scans).
    pub(super) scan_replicated: bool,

    // Operator state, one instance per (participant, operator).
    pub(super) joins: HashMap<(NodeId, OpId), JoinState>,
    pub(super) aggs: HashMap<(NodeId, OpId), AggState>,
    pub(super) exchanges: ExchangeLayer,

    // End-of-stream bookkeeping, reset each phase.
    pub(super) eos_pending: HashMap<(NodeId, OpId), usize>,
    pub(super) recv_closed: HashSet<(NodeId, OpId)>,
    pub(super) fed_closed: HashSet<(NodeId, OpId)>,
    pub(super) scans_done: HashSet<NodeId>,

    /// Segment structure, precomputed from the plan.
    pub(super) segment_roots: Vec<OpId>,
    pub(super) sources: HashMap<OpId, SegmentSources>,

    /// Rows collected at the initiator's `Output`, kept columnar until
    /// the report materializes them.
    pub(super) output: TupleBatch,
    pub(super) done: bool,
    pub(super) finish_time: SimTime,

    /// Execution counters folded into the final [`QueryReport`].
    pub(super) stats: RunStats,
}

impl<'a> Runtime<'a> {
    pub(super) fn new(
        storage: StorageHandle<'a>,
        config: &'a EngineConfig,
        plan: &'a PhysicalPlan,
        epoch: Epoch,
        initiator: NodeId,
        sim: SessionSim,
    ) -> Result<Runtime<'a>> {
        let table = storage.get().routing().clone();
        if !table.contains_node(initiator) {
            return Err(OrchestraError::Execution(format!(
                "initiator {initiator} is not a member of the routing table"
            )));
        }
        let participants = table.nodes();

        let segment_roots: Vec<OpId> = plan
            .operators()
            .iter()
            .filter(|o| o.kind.is_exchange() || matches!(o.kind, OperatorKind::Output))
            .map(|o| o.id)
            .collect();
        let mut sources = HashMap::new();
        for &root in &segment_roots {
            sources.insert(root, segment_sources(plan, root));
        }

        let scan_ranges = participants
            .iter()
            .map(|n| (*n, table.ranges_of(*n)))
            .collect();

        Ok(Runtime {
            storage,
            config,
            plan,
            epoch,
            overrides: ScanOverrides::default(),
            plan_resident: false,
            initiator,
            sim,
            table,
            participants,
            phase: 0,
            scan_ranges,
            scan_replicated: true,
            joins: HashMap::new(),
            aggs: HashMap::new(),
            exchanges: ExchangeLayer::new(),
            eos_pending: HashMap::new(),
            recv_closed: HashSet::new(),
            fed_closed: HashSet::new(),
            scans_done: HashSet::new(),
            segment_roots,
            sources,
            output: TupleBatch::new(),
            done: false,
            finish_time: SimTime::ZERO,
            stats: RunStats::default(),
        })
    }

    /// Start the query at virtual time `at`: set up this phase's
    /// end-of-stream expectations and disseminate plan + snapshot.  The
    /// stand-alone executor starts at time zero; the scheduler starts
    /// each session at its admission instant.
    pub(super) fn begin(&mut self, at: SimTime) {
        self.reset_eos_counters();
        self.disseminate(at);
    }

    /// Has this session exhausted its recovery-round budget?
    pub(super) fn rounds_exhausted(&self) -> bool {
        self.stats.rounds >= self.config.max_recovery_rounds
    }

    /// Drive the query to completion over an exclusively owned
    /// simulator.  The multi-query scheduler replaces this loop with its
    /// own (shared) one, dispatching deliveries by session tag.
    pub(super) fn run(mut self) -> Result<QueryReport> {
        self.begin(SimTime::ZERO);
        loop {
            while let Some(d) = self.sim.next_own() {
                self.handle(d)?;
            }
            if self.done {
                break;
            }
            let failed = self.sim.failed_nodes_at(self.sim.now());
            if failed.is_empty() {
                return Err(OrchestraError::Execution(
                    "query stalled with no failed node (engine bug)".into(),
                ));
            }
            if self.rounds_exhausted() {
                return Err(OrchestraError::Execution(format!(
                    "query did not complete within {} recovery rounds",
                    self.config.max_recovery_rounds
                )));
            }
            self.recover(&failed)?;
        }
        Ok(self.into_report())
    }

    // ------------------------------------------------------------------
    // Phase setup
    // ------------------------------------------------------------------

    /// Expected end-of-stream counts for the current participant set:
    /// every participant feeds every `Rehash` instance, and every
    /// participant feeds the initiator's `Ship` consumer.
    pub(super) fn reset_eos_counters(&mut self) {
        self.eos_pending.clear();
        self.recv_closed.clear();
        self.fed_closed.clear();
        self.scans_done.clear();
        let n = self.participants.len();
        for op in self.plan.operators() {
            match op.kind {
                OperatorKind::Rehash { .. } | OperatorKind::Broadcast => {
                    for &node in &self.participants {
                        self.eos_pending.insert((node, op.id), n);
                    }
                }
                OperatorKind::Ship => {
                    self.eos_pending.insert((self.initiator, op.id), n);
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    pub(super) fn handle(&mut self, d: Delivery<Payload>) -> Result<()> {
        match d.payload {
            Payload::Start => self.on_start(d.to, d.time),
            Payload::Batch { op, batch } => {
                let parent = self.plan.op(op).parent.expect("exchange has a consumer");
                let input = input_index(self.plan, parent, op);
                self.process_at(d.to, parent, input, batch, d.time)
            }
            Payload::Eos { op } => self.on_eos(d.to, op, d.time),
            Payload::StorageFetch => Ok(()),
        }
    }

    /// Plan arrived at `node`: charge startup, run this phase's scans,
    /// then try to close any segment fed purely by scans.
    fn on_start(&mut self, node: NodeId, time: SimTime) -> Result<()> {
        let startup = self.config.profile.node.startup_time();
        let mut ready = self.sim.charge_cpu(node, time, startup);
        if self.phase > 0 && self.config.strategy == super::RecoveryStrategy::Incremental {
            ready = self.retransmit_cached(node, ready)?;
        }
        for scan_op in self.plan.scans() {
            let (batch, scan_time) = self.do_scan(node, scan_op)?;
            ready = self.sim.charge_cpu(node, ready, scan_time);
            if !batch.is_empty() {
                ready = self.push_up(node, scan_op, batch, ready)?;
            }
        }
        self.scans_done.insert(node);
        self.try_close_segments(node, ready)
    }

    fn on_eos(&mut self, node: NodeId, op: OpId, time: SimTime) -> Result<()> {
        let pending = self.eos_pending.get_mut(&(node, op)).ok_or_else(|| {
            OrchestraError::Execution(format!(
                "unexpected end-of-stream for operator {op} at {node}"
            ))
        })?;
        *pending = pending.saturating_sub(1);
        if *pending == 0 {
            self.recv_closed.insert((node, op));
            self.try_close_segments(node, time)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The push-based pipeline
    // ------------------------------------------------------------------

    /// Push the batch produced by `from` into its parent operator.
    pub(super) fn push_up(
        &mut self,
        node: NodeId,
        from: OpId,
        batch: TupleBatch,
        time: SimTime,
    ) -> Result<SimTime> {
        let parent = self
            .plan
            .op(from)
            .parent
            .expect("only Output lacks a parent, and Output never produces");
        let input = input_index(self.plan, parent, from);
        self.process_at(node, parent, input, batch, time)?;
        Ok(self.sim.cpu_free_at(node).max(time))
    }

    /// Row seam of [`Runtime::push_up`]: materialized rows (blocking
    /// emission, legacy arms) re-enter the batch pipeline here.  The cost
    /// of rebuilding the columnar batch is billed to the producing
    /// operator's wall-clock slot — it is part of the price of working on
    /// row objects.
    pub(super) fn push_up_rows(
        &mut self,
        node: NodeId,
        from: OpId,
        rows: Vec<TaggedTuple>,
        time: SimTime,
    ) -> Result<SimTime> {
        let wall = Instant::now();
        let batch = TupleBatch::from_rows(rows);
        self.record_wall(wc_slot(&self.plan.op(from).kind), 0, wall);
        self.push_up(node, from, batch, time)
    }

    /// Fold an operator's wall-clock cost into the report counters.  Only
    /// the operator's own compute is on the clock: callers stop it before
    /// recursing into `push_up`, so parent work is never double-billed.
    /// Row/batch conversion costs are billed with `rows == 0` — they add
    /// time to the slot without re-counting rows the operator arm already
    /// counted.
    pub(super) fn record_wall(&mut self, slot: usize, rows: usize, started: Instant) {
        self.stats.op_rows[slot] += rows as u64;
        self.stats.op_nanos[slot] += started.elapsed().as_nanos() as u64;
    }

    /// Process a batch arriving at operator `op` on `node` via `input`.
    ///
    /// Simulated cost is charged identically on both data paths — one
    /// `cpu_time(len)` per arriving batch — so the choice of path is
    /// invisible to every simulated figure; only the host wall-clock
    /// counters differ.
    pub(super) fn process_at(
        &mut self,
        node: NodeId,
        op: OpId,
        input: usize,
        batch: TupleBatch,
        time: SimTime,
    ) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let cpu = self.config.profile.node.cpu_time(batch.len());
        let ready = self.sim.charge_cpu(node, time, cpu);
        if self.config.legacy_row_path {
            // Materializing row objects out of the arriving batch is the
            // row path's own cost: bill it to the consuming operator.
            let wall = Instant::now();
            let rows = batch.rows();
            self.record_wall(wc_slot(&self.plan.op(op).kind), 0, wall);
            self.process_rows_at(node, op, input, rows, ready)
        } else {
            self.process_batch_at(node, op, input, batch, ready)
        }
    }

    /// The columnar data path: operators consume and produce whole
    /// batches, touching typed column vectors instead of row objects.
    fn process_batch_at(
        &mut self,
        node: NodeId,
        op: OpId,
        input: usize,
        mut batch: TupleBatch,
        ready: SimTime,
    ) -> Result<()> {
        // `plan` is an independent `&'a` borrow, so the kind can be read
        // by reference without cloning predicate/expression trees on
        // every delivered batch.
        let kind = &self.plan.op(op).kind;
        match kind {
            OperatorKind::Select { predicate } => {
                let wall = Instant::now();
                let n = batch.len();
                let mut mask = Vec::new();
                predicate.eval_mask(batch.columnar(), &mut mask);
                batch.columnar_mut().retain(&mask);
                self.record_wall(WC_SELECT, n, wall);
                if !batch.is_empty() {
                    self.push_up(node, op, batch, ready)?;
                }
            }
            OperatorKind::Project { columns } => {
                let wall = Instant::now();
                let out = TupleBatch::from_columnar(batch.columnar().project(columns));
                self.record_wall(WC_PROJECT, out.len(), wall);
                self.push_up(node, op, out, ready)?;
            }
            OperatorKind::ComputeFunction { exprs } => {
                let wall = Instant::now();
                let cb = batch.columnar();
                let n = cb.len();
                // Passthrough expressions reuse the input column wholesale
                // (cells, dictionary accounting and string ids — the pool
                // is cloned, so ids stay valid); only computed expressions
                // pay per-cell construction.
                let mut pool = cb.pool().clone();
                let cols: Vec<Column> = exprs
                    .iter()
                    .map(|e| match e {
                        ScalarExpr::Column(i) => cb.column(*i).clone(),
                        _ => Column::from_values(e.eval_column(cb), &mut pool),
                    })
                    .collect();
                let out = ColumnarBatch::from_parts(
                    pool,
                    cols,
                    cb.sign_column().to_vec(),
                    cb.provenance_column().to_vec(),
                    cb.phase_column().to_vec(),
                );
                self.record_wall(WC_COMPUTE, n, wall);
                self.push_up(node, op, TupleBatch::from_columnar(out), ready)?;
            }
            OperatorKind::HashJoin {
                left_keys,
                right_keys,
            } => {
                let wall = Instant::now();
                let n = batch.len();
                let state = self.joins.entry((node, op)).or_default();
                let out = state.process_batch(input, batch.columnar(), left_keys, right_keys, node);
                self.record_wall(WC_JOIN, n, wall);
                if !out.is_empty() {
                    self.push_up(node, op, TupleBatch::from_columnar(out), ready)?;
                }
            }
            OperatorKind::Aggregate {
                group_by,
                aggs,
                mode,
            } => {
                let wall = Instant::now();
                let state = self.aggs.entry((node, op)).or_default();
                match mode {
                    AggMode::Single | AggMode::Partial => {
                        state.update_raw_batch(batch.columnar(), group_by, aggs)
                    }
                    AggMode::Final => state.update_partial_batch(batch.columnar(), group_by, aggs),
                }
                self.record_wall(WC_AGGREGATE, batch.len(), wall);
            }
            OperatorKind::Rehash { columns } => {
                let wall = Instant::now();
                let cb = batch.columnar();
                let mut scratch = Vec::new();
                for r in 0..cb.len() {
                    let dest = self
                        .table
                        .owner_of(cb.hash_columns_at(r, columns, &mut scratch));
                    self.buffer_exchange_from(node, op, dest, cb, r, ready);
                }
                self.record_wall(WC_EXCHANGE, batch.len(), wall);
            }
            OperatorKind::Broadcast => {
                let wall = Instant::now();
                let dests = self.participants.clone();
                let cb = batch.columnar();
                for r in 0..cb.len() {
                    for &dest in &dests {
                        self.buffer_exchange_from(node, op, dest, cb, r, ready);
                    }
                }
                self.record_wall(WC_EXCHANGE, batch.len(), wall);
            }
            OperatorKind::Ship => {
                let wall = Instant::now();
                let dest = self.initiator;
                let cb = batch.columnar();
                for r in 0..cb.len() {
                    self.buffer_exchange_from(node, op, dest, cb, r, ready);
                }
                self.record_wall(WC_EXCHANGE, batch.len(), wall);
            }
            OperatorKind::Output => {
                debug_assert_eq!(node, self.initiator);
                let wall = Instant::now();
                self.output.append_batch(&batch);
                self.record_wall(WC_OUTPUT, batch.len(), wall);
                self.finish_time = self.finish_time.max(ready);
            }
            OperatorKind::DistributedScan { .. }
            | OperatorKind::CoveringIndexScan { .. }
            | OperatorKind::ReplicatedScan { .. } => {
                return Err(OrchestraError::Execution(
                    "scan operators take no pipeline input".into(),
                ))
            }
        }
        Ok(())
    }

    /// The legacy row-at-a-time data path (`EngineConfig::legacy_row_path`):
    /// batches are materialized into row objects at every operator, exactly
    /// as the engine worked before the columnar refactor.  Kept as the
    /// baseline axis of the wall-clock benchmark; simulated behaviour is
    /// identical to the batch path.
    fn process_rows_at(
        &mut self,
        node: NodeId,
        op: OpId,
        input: usize,
        rows: Vec<TaggedTuple>,
        ready: SimTime,
    ) -> Result<()> {
        let kind = &self.plan.op(op).kind;
        match kind {
            OperatorKind::Select { predicate } => {
                let wall = Instant::now();
                let n = rows.len();
                let kept: Vec<TaggedTuple> = rows
                    .into_iter()
                    .filter(|r| predicate.eval(&r.tuple))
                    .collect();
                self.record_wall(WC_SELECT, n, wall);
                if !kept.is_empty() {
                    self.push_up_rows(node, op, kept, ready)?;
                }
            }
            OperatorKind::Project { columns } => {
                let wall = Instant::now();
                let out: Vec<TaggedTuple> = rows
                    .into_iter()
                    .map(|r| {
                        let t = r.tuple.project(columns);
                        r.with_tuple(t)
                    })
                    .collect();
                self.record_wall(WC_PROJECT, out.len(), wall);
                self.push_up_rows(node, op, out, ready)?;
            }
            OperatorKind::ComputeFunction { exprs } => {
                let wall = Instant::now();
                let out: Vec<TaggedTuple> = rows
                    .into_iter()
                    .map(|r| {
                        let vals = exprs.iter().map(|e| e.eval(&r.tuple)).collect();
                        r.with_tuple(Tuple::new(vals))
                    })
                    .collect();
                self.record_wall(WC_COMPUTE, out.len(), wall);
                self.push_up_rows(node, op, out, ready)?;
            }
            OperatorKind::HashJoin {
                left_keys,
                right_keys,
            } => {
                let wall = Instant::now();
                let n = rows.len();
                let state = self.joins.entry((node, op)).or_default();
                let mut out = Vec::new();
                for row in rows {
                    out.extend(state.process(input, row, left_keys, right_keys, node));
                }
                self.record_wall(WC_JOIN, n, wall);
                if !out.is_empty() {
                    self.push_up_rows(node, op, out, ready)?;
                }
            }
            OperatorKind::Aggregate {
                group_by,
                aggs,
                mode,
            } => {
                let wall = Instant::now();
                let state = self.aggs.entry((node, op)).or_default();
                for row in &rows {
                    match mode {
                        AggMode::Single | AggMode::Partial => state.update_raw(row, group_by, aggs),
                        AggMode::Final => state.update_partial(row, group_by, aggs),
                    }
                }
                self.record_wall(WC_AGGREGATE, rows.len(), wall);
            }
            OperatorKind::Rehash { columns } => {
                let wall = Instant::now();
                let n = rows.len();
                for row in rows {
                    let dest = self.table.owner_of(row.tuple.hash_columns(columns));
                    self.buffer_exchange(node, op, dest, row, ready);
                }
                self.record_wall(WC_EXCHANGE, n, wall);
            }
            OperatorKind::Broadcast => {
                let wall = Instant::now();
                let n = rows.len();
                let dests = self.participants.clone();
                for row in rows {
                    for &dest in &dests {
                        self.buffer_exchange(node, op, dest, row.clone(), ready);
                    }
                }
                self.record_wall(WC_EXCHANGE, n, wall);
            }
            OperatorKind::Ship => {
                let wall = Instant::now();
                let n = rows.len();
                let dest = self.initiator;
                for row in rows {
                    self.buffer_exchange(node, op, dest, row, ready);
                }
                self.record_wall(WC_EXCHANGE, n, wall);
            }
            OperatorKind::Output => {
                debug_assert_eq!(node, self.initiator);
                let wall = Instant::now();
                let n = rows.len();
                for row in rows {
                    self.output.push(row);
                }
                self.record_wall(WC_OUTPUT, n, wall);
                self.finish_time = self.finish_time.max(ready);
            }
            OperatorKind::DistributedScan { .. }
            | OperatorKind::CoveringIndexScan { .. }
            | OperatorKind::ReplicatedScan { .. } => {
                return Err(OrchestraError::Execution(
                    "scan operators take no pipeline input".into(),
                ))
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Segment closure (end-of-stream cascade)
    // ------------------------------------------------------------------

    /// Close every segment at `node` whose sources have all finished.
    /// Closing one segment can enable the next, so iterate to fixpoint.
    pub(super) fn try_close_segments(&mut self, node: NodeId, time: SimTime) -> Result<()> {
        if !self.scans_done.contains(&node) {
            return Ok(());
        }
        loop {
            let mut progressed = false;
            for root in self.segment_roots.clone() {
                if self.fed_closed.contains(&(node, root)) {
                    continue;
                }
                let is_output = matches!(self.plan.op(root).kind, OperatorKind::Output);
                if is_output && node != self.initiator {
                    continue;
                }
                let sources = &self.sources[&root];
                let ready_to_close = sources
                    .exchanges
                    .iter()
                    .all(|e| self.recv_closed.contains(&(node, *e)));
                if !ready_to_close {
                    continue;
                }
                self.close_segment(node, root, time)?;
                progressed = true;
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// All inputs of the segment rooted at `root` are exhausted at `node`:
    /// emit blocking state, flush the root's buffers, signal end-of-stream.
    fn close_segment(&mut self, node: NodeId, root: OpId, time: SimTime) -> Result<()> {
        self.fed_closed.insert((node, root));
        let mut ready = time;
        let is_output = matches!(self.plan.op(root).kind, OperatorKind::Output);

        for agg_op in self.sources[&root].blocking.clone() {
            let OperatorKind::Aggregate { aggs, mode, .. } = self.plan.op(agg_op).kind.clone()
            else {
                continue;
            };
            let emitted: Vec<TaggedTuple> = match mode {
                AggMode::Partial => self
                    .aggs
                    .entry((node, agg_op))
                    .or_default()
                    .emit_unemitted(true, node, self.phase),
                AggMode::Single | AggMode::Final if is_output => {
                    // The top-level aggregate merges its sub-groups into
                    // the final answer exactly once, at query completion.
                    let phase = self.phase;
                    self.aggs
                        .entry((node, agg_op))
                        .or_default()
                        .collapsed_final(&aggs)
                        .into_iter()
                        .map(|t| TaggedTuple::scanned(t, node, phase))
                        .collect()
                }
                AggMode::Single | AggMode::Final => self
                    .aggs
                    .entry((node, agg_op))
                    .or_default()
                    .emit_unemitted(false, node, self.phase),
            };
            if !emitted.is_empty() {
                ready = self.push_up_rows(node, agg_op, emitted, ready)?;
            }
        }

        if is_output {
            self.done = true;
            self.finish_time = self.finish_time.max(ready);
            return Ok(());
        }

        // Flush whatever is still buffered, then signal end-of-stream.
        let pending = self.exchanges.pending_destinations(node, root);
        for dest in pending {
            self.flush_exchange(node, root, dest, ready);
        }
        let dests: Vec<NodeId> = match self.plan.op(root).kind {
            OperatorKind::Ship => vec![self.initiator],
            _ => self.participants.clone(),
        };
        for dest in dests {
            self.sim
                .send(node, dest, EOS_BYTES, ready, Payload::Eos { op: root });
        }
        Ok(())
    }
}

/// Position of child `child` among `parent`'s inputs.
fn input_index(plan: &PhysicalPlan, parent: OpId, child: OpId) -> usize {
    plan.op(parent)
        .children
        .iter()
        .position(|c| *c == child)
        .expect("child/parent links are consistent")
}

/// Find the scans, boundary exchanges and blocking operators of the
/// segment rooted at `root` (an exchange or `Output`).
fn segment_sources(plan: &PhysicalPlan, root: OpId) -> SegmentSources {
    let mut out = SegmentSources::default();
    let mut stack: Vec<OpId> = plan.op(root).children.clone();
    while let Some(id) = stack.pop() {
        let op = plan.op(id);
        if op.kind.is_exchange() {
            out.exchanges.push(id);
        } else if op.kind.is_scan() {
            out.scans.push(id);
        } else {
            if op.kind.is_blocking() {
                out.blocking.push(id);
            }
            stack.extend(op.children.iter().copied());
        }
    }
    out.scans.sort_unstable();
    out.exchanges.sort_unstable();
    out.blocking.sort_unstable();
    out
}
