//! The epoch-keyed result cache of the serving layer.
//!
//! [`ResultCache`] memoizes complete query answers under
//! `(`[`QueryFingerprint`]`, `[`Epoch`]`)` keys.  The fingerprint names
//! the *canonical* logical query (`orchestra_optimizer::fingerprint`), so
//! trivially equivalent spellings share one entry; the epoch names the
//! immutable data version the answer was computed against.  Because
//! published epochs never change, a cached answer is valid forever *for
//! its epoch* — there is no invalidation logic at all.  A publication
//! bumps the epoch queries run at, which changes the key, which makes
//! every stale entry an ordinary miss that capacity pressure eventually
//! evicts.
//!
//! The cache is bounded to [`ResultCache::capacity`] entries.  When full,
//! insertion evicts per [`EvictionPolicy`]:
//!
//! * [`EvictionPolicy::Lru`] — the least-recently-*used* entry (lookup
//!   hits and insertion both refresh recency);
//! * [`EvictionPolicy::CostAware`] — the entry whose miss would be
//!   cheapest to repay, measured by the network bytes its query shipped
//!   when it was executed; recency breaks ties, so the policy degrades
//!   to LRU among equal-cost entries.
//!
//! Fill discipline: the scheduler inserts an answer only when its session
//! *completes* — a query interrupted by a node failure contributes
//! nothing until its recovery finishes, at which point the recovered
//! (correct, cross-checked) answer is what gets cached.  A mid-query
//! failure therefore can never leave a partial fill behind.

use orchestra_common::{Epoch, QueryFingerprint, Tuple};
use std::collections::BTreeMap;

/// Which entry a full [`ResultCache`] sacrifices on insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used entry.
    Lru,
    /// Evict the entry cheapest to recompute (fewest shipped bytes on its
    /// original execution), recency breaking ties.
    CostAware,
}

/// Aggregate counters of a [`ResultCache`] — monotone over the cache's
/// lifetime; use [`CacheStats::since`] for per-run deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Answers inserted.
    pub insertions: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
    /// Network bytes the hits avoided shipping (the sum, over every hit,
    /// of the bytes the entry's query moved when it actually executed).
    ///
    /// This is strictly a *result-cache* figure: subscriber
    /// notification traffic ([`super::registry::ViewDiff`] bytes) is
    /// accounted under its own `view_diff_bytes` key and never folds
    /// into this counter, so serving JSON reports the two under
    /// distinct keys without double-counting.
    pub bytes_saved: u64,
}

impl CacheStats {
    /// The counters accumulated since `earlier` was captured.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            bytes_saved: self.bytes_saved - earlier.bytes_saved,
        }
    }

    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// One cached answer.
#[derive(Clone, Debug)]
struct Entry {
    /// The answer rows, already sorted (as `QueryReport::rows`).
    rows: Vec<Tuple>,
    /// The signed form (always `+1` for ordinary queries).
    signed_rows: Vec<(Tuple, i8)>,
    /// Serialized size of the answer rows.
    answer_bytes: u64,
    /// Network bytes the query shipped when it executed — what a hit
    /// saves, and the cost the [`EvictionPolicy::CostAware`] policy keeps.
    shipped_bytes: u64,
    /// Hits this entry has served.
    hits: u64,
    /// Logical recency tick of the last lookup hit or insertion.
    last_used: u64,
}

/// A cached answer as handed to the scheduler on a hit.
#[derive(Clone, Debug)]
pub struct CachedAnswer {
    /// The answer rows, sorted.
    pub rows: Vec<Tuple>,
    /// The signed answer rows, sorted.
    pub signed_rows: Vec<(Tuple, i8)>,
    /// Network bytes this hit avoided shipping.
    pub shipped_bytes: u64,
}

/// Per-entry accounting, as exposed by [`ResultCache::entries`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryStats {
    /// The entry's key.
    pub fingerprint: QueryFingerprint,
    /// The epoch the answer was computed against.
    pub epoch: Epoch,
    /// Hits the entry has served.
    pub hits: u64,
    /// Serialized size of the cached answer.
    pub answer_bytes: u64,
    /// Network bytes one miss on this entry would ship.
    pub shipped_bytes: u64,
}

/// A bounded, epoch-keyed cache of complete query answers.
#[derive(Clone, Debug)]
pub struct ResultCache {
    capacity: usize,
    policy: EvictionPolicy,
    entries: BTreeMap<(QueryFingerprint, Epoch), Entry>,
    tick: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache bounded to `capacity` entries under `policy`.  A capacity
    /// of zero is a valid (always-miss, never-stores) configuration.
    pub fn new(capacity: usize, policy: EvictionPolicy) -> ResultCache {
        ResultCache {
            capacity,
            policy,
            entries: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The eviction policy in force.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up the answer of `fingerprint` at `epoch`, recording a hit or
    /// a miss.  A hit refreshes the entry's recency.
    pub fn lookup(&mut self, fingerprint: QueryFingerprint, epoch: Epoch) -> Option<CachedAnswer> {
        self.tick += 1;
        match self.entries.get_mut(&(fingerprint, epoch)) {
            Some(entry) => {
                entry.hits += 1;
                entry.last_used = self.tick;
                self.stats.hits += 1;
                self.stats.bytes_saved += entry.shipped_bytes;
                Some(CachedAnswer {
                    rows: entry.rows.clone(),
                    signed_rows: entry.signed_rows.clone(),
                    shipped_bytes: entry.shipped_bytes,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert the completed answer of `fingerprint` at `epoch`, evicting
    /// per the policy if the cache is full.  Re-inserting an existing key
    /// replaces the answer (the store is deterministic, so the rows are
    /// identical) without disturbing the entry's hit count.
    pub fn insert(
        &mut self,
        fingerprint: QueryFingerprint,
        epoch: Epoch,
        rows: Vec<Tuple>,
        signed_rows: Vec<(Tuple, i8)>,
        shipped_bytes: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let key = (fingerprint, epoch);
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.rows = rows;
            entry.signed_rows = signed_rows;
            entry.shipped_bytes = shipped_bytes;
            entry.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            self.evict_one();
        }
        let answer_bytes: u64 = rows.iter().map(|t| t.serialized_size() as u64).sum();
        self.entries.insert(
            key,
            Entry {
                rows,
                signed_rows,
                answer_bytes,
                shipped_bytes,
                hits: 0,
                last_used: self.tick,
            },
        );
        self.stats.insertions += 1;
    }

    /// Drop one entry per the eviction policy.
    fn evict_one(&mut self) {
        let victim = match self.policy {
            // Min by (last_used): oldest recency.  BTreeMap iteration
            // order makes any remaining tie (impossible: ticks are
            // unique) deterministic anyway.
            EvictionPolicy::Lru => self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k),
            // Min by (shipped_bytes, last_used): cheapest miss first,
            // oldest among equals.
            EvictionPolicy::CostAware => self
                .entries
                .iter()
                .min_by_key(|(_, e)| (e.shipped_bytes, e.last_used))
                .map(|(k, _)| *k),
        };
        if let Some(key) = victim {
            self.entries.remove(&key);
            self.stats.evictions += 1;
        }
    }

    /// Per-entry accounting, in key order (deterministic).
    pub fn entries(&self) -> Vec<EntryStats> {
        self.entries
            .iter()
            .map(|(&(fingerprint, epoch), e)| EntryStats {
                fingerprint,
                epoch,
                hits: e.hits,
                answer_bytes: e.answer_bytes,
                shipped_bytes: e.shipped_bytes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_common::Value;

    fn fp(tag: &str) -> QueryFingerprint {
        QueryFingerprint::of_bytes(tag.as_bytes())
    }

    fn row(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    fn insert(cache: &mut ResultCache, tag: &str, epoch: u64, shipped: u64) {
        cache.insert(
            fp(tag),
            Epoch(epoch),
            vec![row(shipped as i64)],
            vec![(row(shipped as i64), 1)],
            shipped,
        );
    }

    #[test]
    fn hits_are_keyed_by_fingerprint_and_epoch() {
        let mut cache = ResultCache::new(4, EvictionPolicy::Lru);
        insert(&mut cache, "q1", 1, 100);
        assert!(cache.lookup(fp("q1"), Epoch(1)).is_some());
        // Same query, later epoch: a miss — publication bumped the key.
        assert!(cache.lookup(fp("q1"), Epoch(2)).is_none());
        // Different query, same epoch: a miss.
        assert!(cache.lookup(fp("q2"), Epoch(1)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.bytes_saved, 100);
        assert_eq!(cache.entries()[0].hits, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = ResultCache::new(2, EvictionPolicy::Lru);
        insert(&mut cache, "a", 1, 10);
        insert(&mut cache, "b", 1, 20);
        // Touch "a" so "b" is the coldest.
        assert!(cache.lookup(fp("a"), Epoch(1)).is_some());
        insert(&mut cache, "c", 1, 30);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(fp("a"), Epoch(1)).is_some());
        assert!(cache.lookup(fp("b"), Epoch(1)).is_none());
        assert!(cache.lookup(fp("c"), Epoch(1)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn cost_aware_keeps_the_expensive_answer() {
        let mut cache = ResultCache::new(2, EvictionPolicy::CostAware);
        insert(&mut cache, "cheap", 1, 10);
        insert(&mut cache, "dear", 1, 1000);
        // Touch "cheap" last: LRU would evict "dear"; cost-aware must
        // sacrifice "cheap" anyway.
        assert!(cache.lookup(fp("cheap"), Epoch(1)).is_some());
        insert(&mut cache, "mid", 1, 100);
        assert!(cache.lookup(fp("dear"), Epoch(1)).is_some());
        assert!(cache.lookup(fp("cheap"), Epoch(1)).is_none());
    }

    #[test]
    fn reinsertion_replaces_without_double_counting() {
        let mut cache = ResultCache::new(2, EvictionPolicy::Lru);
        insert(&mut cache, "a", 1, 10);
        assert!(cache.lookup(fp("a"), Epoch(1)).is_some());
        insert(&mut cache, "a", 1, 12);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
        let entry = &cache.entries()[0];
        assert_eq!(entry.hits, 1); // hit count survives the refresh
        assert_eq!(entry.shipped_bytes, 12);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut cache = ResultCache::new(0, EvictionPolicy::Lru);
        insert(&mut cache, "a", 1, 10);
        assert!(cache.is_empty());
        assert!(cache.lookup(fp("a"), Epoch(1)).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn stats_deltas_subtract() {
        let mut cache = ResultCache::new(2, EvictionPolicy::Lru);
        insert(&mut cache, "a", 1, 10);
        let before = cache.stats();
        assert!(cache.lookup(fp("a"), Epoch(1)).is_some());
        assert!(cache.lookup(fp("b"), Epoch(1)).is_none());
        let delta = cache.stats().since(&before);
        assert_eq!((delta.hits, delta.misses, delta.insertions), (1, 1, 0));
        assert_eq!(delta.bytes_saved, 10);
        assert!((delta.hit_rate() - 0.5).abs() < 1e-12);
    }
}
