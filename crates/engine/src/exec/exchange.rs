//! The exchange boundary: rehash/ship batching and output caches.
//!
//! Rows crossing a `Rehash` or `Ship` operator leave the local pipeline
//! here.  [`ExchangeLayer`] owns one `RehashState` per (node, operator)
//! pair — per-destination buffers awaiting a full batch plus, when
//! recovery support is on, the output cache recovery stage 4 re-transmits
//! from.  Routing consults the phase's snapshot (`Runtime::table`) at
//! buffering time, so after a recovery round the same code path sends to
//! the heirs.  This module also owns the engine's wire payloads
//! ([`Payload`]) and plan dissemination, since both exist purely to move
//! bytes between nodes.
//!
//! Every message on the wire travels inside a [`Wire`] envelope tagged
//! with the [`SessionId`] of the query that produced it.  A single query
//! owns its simulator outright and the tag is inert; under the
//! multi-query scheduler (`scheduler`), N queries multiplex one shared
//! simulator and the tag is what keeps their batches, end-of-stream
//! markers and recovery rounds from bleeding into each other when a node
//! failure hits several in-flight queries at once.

use super::pipeline::Runtime;
use crate::batch::TupleBatch;
use crate::ops::RehashState;
use crate::plan::OpId;
use crate::provenance::TaggedTuple;
use orchestra_common::{NodeId, NodeSet};
use orchestra_simnet::SimTime;
use std::collections::HashMap;

/// Wire size of an end-of-stream marker.
pub(super) const EOS_BYTES: usize = 8;

/// Identifies one query session among those multiplexed over a shared
/// simulated network.  A stand-alone [`super::QueryExecutor`] run is
/// session 0 of a network of its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u32);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session {}", self.0)
    }
}

/// The envelope every engine message crosses the wire in: the payload
/// plus the session that produced it, so deliveries can be dispatched to
/// the right query's runtime.
#[derive(Clone, Debug)]
pub(super) struct Wire {
    /// The query session the payload belongs to.
    pub(super) session: SessionId,
    /// The engine message itself.
    pub(super) payload: Payload,
}

/// The engine-defined message type delivered by the simulator.
#[derive(Clone, Debug)]
pub(super) enum Payload {
    /// Plan + snapshot arrived; run the local fragments.
    Start,
    /// A batch of rows that crossed exchange operator `op`, travelling in
    /// columnar form end to end.
    Batch { op: OpId, batch: TupleBatch },
    /// One sender has finished feeding exchange operator `op`.
    Eos { op: OpId },
    /// A remote tuple fetch performed by a scan; carries no pipeline
    /// work — it exists so the transfer's bytes and latency are charged
    /// to the simulated network.
    StorageFetch,
}

/// All exchange-operator state of one query run: the per-(node, operator)
/// `RehashState` instances, addressed uniformly so the recovery layer can
/// purge, drop and re-transmit without iterating raw maps in
/// non-deterministic order.
#[derive(Debug, Default)]
pub(super) struct ExchangeLayer {
    states: HashMap<(NodeId, OpId), RehashState>,
}

impl ExchangeLayer {
    /// An empty layer.
    pub(super) fn new() -> ExchangeLayer {
        ExchangeLayer::default()
    }

    /// Buffer one row of (`node`, `op`) for `dest`, creating the state on
    /// first use; returns the buffer length after insertion.
    pub(super) fn buffer(
        &mut self,
        node: NodeId,
        op: OpId,
        dest: NodeId,
        row: TaggedTuple,
        cache: bool,
    ) -> usize {
        self.states
            .entry((node, op))
            .or_insert_with(|| RehashState::new(cache))
            .buffer(dest, row)
    }

    /// Buffer row `row` of a columnar batch into (`node`, `op`) for
    /// `dest` without materializing it; returns the buffer length after
    /// insertion.
    pub(super) fn buffer_from(
        &mut self,
        node: NodeId,
        op: OpId,
        dest: NodeId,
        src: &orchestra_common::ColumnarBatch,
        row: usize,
        cache: bool,
    ) -> usize {
        self.states
            .entry((node, op))
            .or_insert_with(|| RehashState::new(cache))
            .buffer_from(dest, src, row)
    }

    /// Take (and clear) the pending buffer of (`node`, `op`) for `dest`.
    pub(super) fn take_buffer(&mut self, node: NodeId, op: OpId, dest: NodeId) -> TupleBatch {
        self.states
            .get_mut(&(node, op))
            .map(|s| s.take_buffer_batch(dest))
            .unwrap_or_default()
    }

    /// Destinations of (`node`, `op`) that currently have pending rows.
    pub(super) fn pending_destinations(&self, node: NodeId, op: OpId) -> Vec<NodeId> {
        self.states
            .get(&(node, op))
            .map(|s| s.pending_destinations())
            .unwrap_or_default()
    }

    /// The (node, operator) addresses held, in deterministic order.
    fn sorted_keys(&self) -> Vec<(NodeId, OpId)> {
        let mut keys: Vec<(NodeId, OpId)> = self.states.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Drop tainted rows from every cache and pending buffer; returns the
    /// number of logical rows dropped.
    pub(super) fn purge_tainted(&mut self, failed: &NodeSet) -> usize {
        let mut purged = 0;
        for k in self.sorted_keys() {
            purged += self
                .states
                .get_mut(&k)
                .expect("key exists")
                .purge_tainted(failed);
        }
        purged
    }

    /// Drop the pending buffers destined to any failed node (their rows
    /// are covered by the stage-4 output-cache retransmission).
    pub(super) fn drop_buffers_to(&mut self, failed: &NodeSet) {
        for k in self.sorted_keys() {
            let state = self.states.get_mut(&k).expect("key exists");
            for dest in state.pending_destinations() {
                if failed.contains(dest) {
                    state.take_buffer(dest);
                }
            }
        }
    }

    /// Consume and return, per exchange operator of `node` in
    /// deterministic order, the untainted cached rows that had been sent
    /// to any of the `failed` nodes — recovery stage 4's input.
    pub(super) fn take_cached_for_failed(
        &mut self,
        node: NodeId,
        failed: &NodeSet,
    ) -> Vec<(OpId, TupleBatch)> {
        let mut out = Vec::new();
        for (n, op) in self.sorted_keys() {
            if n != node {
                continue;
            }
            let state = self.states.get_mut(&(n, op)).expect("key exists");
            let mut resend = TupleBatch::new();
            for f in failed.iter() {
                resend.append_batch(&state.take_cached_batch_for(f, failed));
            }
            if !resend.is_empty() {
                out.push((op, resend));
            }
        }
        out
    }

    /// Discard every state (the Restart strategy's clean slate).
    pub(super) fn clear(&mut self) {
        self.states.clear();
    }
}

impl Runtime<'_> {
    /// Ship the plan and routing snapshot to every participant and start
    /// the local fragments.  When the plan is already resident (an
    /// installed maintenance dataflow), only the snapshot and the
    /// per-scan epoch parameters cross the wire.
    pub(super) fn disseminate(&mut self, at: SimTime) {
        let plan_bytes = if self.plan_resident {
            16 * self.plan.scans().len()
        } else {
            self.plan.serialized_size()
        };
        let bytes =
            plan_bytes + 64 + 48 * self.table.entries().len() + 24 * self.participants.len();
        for &node in &self.participants.clone() {
            if node == self.initiator {
                self.sim.schedule(node, at, Payload::Start);
            } else {
                self.sim
                    .send(self.initiator, node, bytes, at, Payload::Start);
            }
        }
    }

    /// Buffer one row into exchange `op` for `dest`, flushing a full batch.
    pub(super) fn buffer_exchange(
        &mut self,
        node: NodeId,
        op: OpId,
        dest: NodeId,
        row: TaggedTuple,
        ready: SimTime,
    ) {
        let cache = self.config.recovery;
        if self.exchanges.buffer(node, op, dest, row, cache) >= self.config.batch_size {
            self.flush_exchange(node, op, dest, ready);
        }
    }

    /// Buffer row `row` of a columnar batch into exchange `op` for
    /// `dest`, flushing a full batch.
    pub(super) fn buffer_exchange_from(
        &mut self,
        node: NodeId,
        op: OpId,
        dest: NodeId,
        src: &orchestra_common::ColumnarBatch,
        row: usize,
        ready: SimTime,
    ) {
        let cache = self.config.recovery;
        if self.exchanges.buffer_from(node, op, dest, src, row, cache) >= self.config.batch_size {
            self.flush_exchange(node, op, dest, ready);
        }
    }

    /// Send the pending buffer of (`node`, `op`) for `dest` as one batch.
    /// The buffer already *is* a columnar batch, so its wire size falls
    /// out of the columns' running dictionary accounting.
    pub(super) fn flush_exchange(&mut self, node: NodeId, op: OpId, dest: NodeId, ready: SimTime) {
        let batch = self.exchanges.take_buffer(node, op, dest);
        if batch.is_empty() {
            return;
        }
        let bytes = batch.wire_size(self.config.compress, self.config.recovery);
        self.sim
            .send(node, dest, bytes, ready, Payload::Batch { op, batch });
    }
}
