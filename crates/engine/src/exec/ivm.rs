//! Incremental view maintenance over the publication pipeline.
//!
//! A CDSS participant publishes a batch of updates, a new epoch appears,
//! and every *materialized workload answer* computed at the previous
//! epoch is stale.  This module maintains those answers across epochs by
//! pushing **signed delta tuples** through the ordinary push pipeline:
//!
//! 1. The storage layer derives the epoch interval's delta from the
//!    versioned index pages
//!    ([`orchestra_storage::DistributedStorage::delta_partition`]) —
//!    `+1` rows for versions the interval added, `-1` rows for versions
//!    it removed.
//! 2. [`MaintenancePlan::derive`] turns the view's compiled plan into a
//!    *maintenance plan*: the initiator-side aggregate is stripped (its
//!    finalized values — an `AVG` collapsed to a double — cannot absorb
//!    deltas), a hidden `COUNT` is appended to any distributed partial
//!    aggregate so every group's *support* travels with its state, and
//!    everything else (scans, selects, computes, rehashes, joins, the
//!    partial aggregate, ship) is kept verbatim.  Query answers are
//!    multilinear in their base relations, so the epoch-to-epoch change
//!    telescopes into one *leg* per leaf relation: in leg *i*, relations
//!    before *i* read the new epoch, relation *i* reads the signed
//!    delta, relations after *i* read the old epoch.  On each leg's
//!    pivot path the delta stream crosses a [`OperatorKind::Broadcast`]
//!    into its joins while the stationary side is joined in place, so a
//!    small delta ships `O(|Δ| × n)` bytes instead of re-shipping full
//!    relations.  Callers can go further and install legs whose *join
//!    order* was chosen by the optimizer for a delta-sized pivot
//!    ([`MaterializedView::install_leg_plans`]).
//! 3. [`refresh_view`] runs the legs as ordinary sessions under the
//!    [`SessionScheduler`] — they multiplex one simulated network, carry
//!    provenance tags, and survive a mid-maintenance node failure
//!    through the existing Restart/Incremental recovery (a delta scan,
//!    like a full scan, is deterministically re-runnable over inherited
//!    ranges).  The signed rows each leg ships to the initiator are
//!    folded into the [`MaterializedView`]'s per-group accumulator state
//!    (or counted multiset, for aggregate-free views).
//!
//! Full recomputation rides the same machinery: one session over the
//! maintenance plan with every scan at the target epoch and the view
//! state rebuilt from scratch.  Whether a published batch is cheaper to
//! absorb incrementally or to recompute is the optimizer's call
//! (`orchestra_optimizer`'s maintenance cost model); this module
//! executes either decision.  Maintenance dataflows are *installed* at
//! the participants by the first refresh; later refreshes ship only the
//! epoch parameters and the routing snapshot.
//!
//! `COUNT`/`SUM`/`AVG` are subtractable and maintainable.  An
//! initiator-side (`Single`) `MIN`/`MAX` is maintained through a
//! bounded per-group [`ExtremumSketch`]: retractions fold exactly from
//! the tracked runners-up, and only when deletions exhaust a group's
//! tracked set does [`refresh_view`] fall back to one recompute (which
//! rebuilds every sketch).  A *distributed partial* `MIN`/`MAX`
//! collapses runner-up multiplicity before shipping, so it — like views
//! over replicated/covering scans (no delta path) or over a self-join —
//! reports itself recompute-only.

use super::scheduler::{
    AdmissionPolicy, QuerySession, SchedulerConfig, SessionReport, SessionScheduler,
};
use super::{EngineConfig, FailureSpec};
use crate::expr::AggFunc;
use crate::ops::{Accumulator, ExtremumKind, ExtremumSketch, EXTREMUM_SKETCH_K};
use crate::plan::{AggMode, OpId, OperatorKind, PhysicalPlan, PlanBuilder};
use orchestra_common::{Epoch, NodeId, OrchestraError, Result, Tuple, Value};
use orchestra_simnet::SimTime;
use orchestra_storage::DistributedStorage;
use std::collections::{BTreeMap, HashMap};

/// Per-scan read instructions for one session: pin a leaf scan to an
/// epoch other than the session's, or turn it into a *signed delta scan*
/// over an epoch interval.  An empty override set (the default) is an
/// ordinary query.
#[derive(Clone, Debug, Default)]
pub struct ScanOverrides {
    epochs: HashMap<OpId, Epoch>,
    deltas: HashMap<OpId, (Epoch, Epoch)>,
}

impl ScanOverrides {
    /// No overrides: every scan reads the session's epoch.
    pub fn new() -> ScanOverrides {
        ScanOverrides::default()
    }

    /// Pin scan `op` to read the snapshot at `epoch`.
    pub fn read_at(&mut self, op: OpId, epoch: Epoch) -> &mut Self {
        self.deltas.remove(&op);
        self.epochs.insert(op, epoch);
        self
    }

    /// Turn scan `op` into a signed delta scan over `from..to`.
    pub fn read_delta(&mut self, op: OpId, from: Epoch, to: Epoch) -> &mut Self {
        self.epochs.remove(&op);
        self.deltas.insert(op, (from, to));
        self
    }

    /// Is this the ordinary-query (no overrides) configuration?
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty() && self.deltas.is_empty()
    }

    pub(super) fn epoch_of(&self, op: OpId) -> Option<Epoch> {
        self.epochs.get(&op).copied()
    }

    pub(super) fn delta_of(&self, op: OpId) -> Option<(Epoch, Epoch)> {
        self.deltas.get(&op).copied()
    }
}

/// How the signed rows a maintenance session ships to the initiator fold
/// into the view state — determined by what the stripped aggregate was.
/// Different sessions of one view may fold differently (an
/// optimizer-compiled leg may place aggregation differently than the
/// base plan); `Raw` and `Partial` folds accumulate into the same
/// per-group accumulator state.
#[derive(Clone, Debug, PartialEq)]
pub enum FoldMode {
    /// No aggregation: the view is a counted multiset of answer rows.
    Multiset,
    /// A `Single` aggregate was stripped: rows are its raw input layout.
    Raw {
        /// Grouping columns of the raw layout.
        group_by: Vec<usize>,
        /// Aggregate functions and their raw input columns.
        aggs: Vec<(AggFunc, usize)>,
    },
    /// A `Final` aggregate was stripped: rows are the distributed
    /// partial-aggregate layout plus the hidden support count.
    Partial {
        /// Grouping columns of the partial layout.
        group_by: Vec<usize>,
        /// Aggregate functions and the columns their partial states
        /// start at.
        aggs: Vec<(AggFunc, usize)>,
        /// Column of the hidden support `COUNT` appended by the
        /// maintenance rewrite.
        count_col: usize,
    },
}

impl FoldMode {
    /// `(groups, aggregates)` of an aggregate fold, `None` for multiset.
    fn shape(&self) -> Option<(usize, usize)> {
        match self {
            FoldMode::Multiset => None,
            FoldMode::Raw { group_by, aggs } | FoldMode::Partial { group_by, aggs, .. } => {
                Some((group_by.len(), aggs.len()))
            }
        }
    }
}

/// One delta leg of a maintenance plan: the rewritten physical plan that
/// pushes relation `relation`'s signed delta through the view, plus how
/// that plan's shipped rows fold into the view state.
#[derive(Clone, Debug)]
pub struct MaintenanceLeg {
    /// The pivot relation whose delta this leg absorbs.
    pub relation: String,
    /// The leg's physical plan (pivot path broadcast, stationary sides
    /// joined in place).
    pub plan: PhysicalPlan,
    /// How this leg's shipped rows fold into the view.
    pub fold: FoldMode,
}

/// A view's compiled plan rewritten for maintenance: initiator-side
/// aggregates stripped, hidden support count appended to partial
/// aggregates, plus the fold recipe, the leaf-scan table, and one
/// [`MaintenanceLeg`] per leaf relation.
///
/// Leg order is the *telescoping order*: leg *i* reads relations before
/// *i* at the new epoch and relations after *i* at the old epoch.  Any
/// fixed order is correct as long as every leg of one refresh uses the
/// same one.
#[derive(Clone, Debug)]
pub struct MaintenancePlan {
    plan: PhysicalPlan,
    fold: FoldMode,
    scans: Vec<(OpId, String)>,
    legs: Vec<MaintenanceLeg>,
    recompute_only: Option<String>,
}

/// The `(group_by, aggs, mode)` of a stripped initiator-side aggregate.
type StrippedAgg = (Vec<usize>, Vec<(AggFunc, usize)>, AggMode);

/// The initiator-side aggregates stripped from a plan (at most one) and
/// the subtree root the maintenance body is rebuilt from.
struct StrippedShape {
    body: OpId,
    stripped: Option<StrippedAgg>,
}

/// Walk down from `Output` through the initiator-side aggregates to be
/// stripped.
fn strip_shape(original: &PhysicalPlan) -> Result<StrippedShape> {
    let mut cursor = original.op(original.root()).children[0];
    let mut stripped = None;
    while let OperatorKind::Aggregate {
        group_by,
        aggs,
        mode: mode @ (AggMode::Single | AggMode::Final),
    } = &original.op(cursor).kind
    {
        if stripped.is_some() {
            return Err(OrchestraError::Execution(
                "maintenance cannot express stacked initiator-side aggregates".into(),
            ));
        }
        stripped = Some((group_by.clone(), aggs.clone(), *mode));
        cursor = original.op(cursor).children[0];
    }
    Ok(StrippedShape {
        body: cursor,
        stripped,
    })
}

/// The fold mode of a rebuilt maintenance body, given what was stripped.
fn fold_of(stripped: &Option<StrippedAgg>, rebuilt: &PhysicalPlan) -> FoldMode {
    match stripped {
        None => FoldMode::Multiset,
        Some((group_by, aggs, AggMode::Single)) => FoldMode::Raw {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        Some((group_by, aggs, AggMode::Final)) => {
            // The hidden support count is the last column of the
            // (augmented) partial layout the ship operator forwards.
            let count_col = rebuilt.op(rebuilt.root()).arity - 1;
            FoldMode::Partial {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                count_col,
            }
        }
        Some((_, _, AggMode::Partial)) => unreachable!("only Single/Final are stripped"),
    }
}

impl MaintenancePlan {
    /// Rewrite `original` (a plan as compiled by the optimizer or built
    /// by hand) into its maintenance form.  Fails on shapes maintenance
    /// cannot express: an aggregate that is not directly below `Output`,
    /// or stacked initiator-side aggregates.
    pub fn derive(original: &PhysicalPlan) -> Result<MaintenancePlan> {
        let shape = strip_shape(original)?;
        let strip_final = matches!(shape.stripped, Some((_, _, AggMode::Final)));
        let mut builder = PlanBuilder::new();
        let body = rebuild(original, shape.body, &mut builder, strip_final)?;
        let plan = builder.output(body);

        let scans: Vec<(OpId, String)> = plan
            .scans()
            .into_iter()
            .map(|id| (id, scan_relation(&plan, id).to_string()))
            .collect();
        let fold = fold_of(&shape.stripped, &plan);

        let mut recompute_only = None;
        // Raw (initiator-side) MIN/MAX folds through a bounded
        // `ExtremumSketch` and stays incremental; a distributed partial
        // MIN/MAX collapses runner-up multiplicity before shipping, so
        // its retractions genuinely cannot be folded.
        if let FoldMode::Partial { aggs, .. } = &fold {
            if let Some((f, _)) = aggs
                .iter()
                .find(|(f, _)| !Accumulator::new(*f).is_subtractable())
            {
                recompute_only = Some(format!(
                    "distributed partial {f:?} collapses runners-up; retractions cannot be folded"
                ));
            }
        }
        if let Some((_, relation)) = scans
            .iter()
            .find(|(id, _)| !matches!(plan.op(*id).kind, OperatorKind::DistributedScan { .. }))
        {
            recompute_only = Some(format!(
                "scan of {relation} is not a distributed scan and has no delta path"
            ));
        }
        let mut seen: Vec<&str> = Vec::new();
        for (_, relation) in &scans {
            if seen.contains(&relation.as_str()) {
                recompute_only = Some(format!(
                    "{relation} is scanned twice (self-join); telescoped deltas need \
                     distinct pivot relations"
                ));
            }
            seen.push(relation);
        }

        let mut maintenance = MaintenancePlan {
            plan,
            fold,
            scans,
            legs: Vec::new(),
            recompute_only,
        };
        if maintenance.recompute_only.is_none() {
            // Default legs: the base plan's own join order, pivot path
            // broadcast.  Callers can replace them with optimizer-chosen
            // join orders via `MaterializedView::install_leg_plans`.
            maintenance.legs = maintenance
                .scans
                .iter()
                .map(|(_, relation)| derive_leg(original, relation))
                .collect::<Result<Vec<MaintenanceLeg>>>()?;
        }
        Ok(maintenance)
    }

    /// The rewritten physical plan maintenance sessions execute.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// How the base plan's shipped rows fold into view state.
    pub fn fold(&self) -> &FoldMode {
        &self.fold
    }

    /// The leaf scans (operator id, relation) of the base plan, in
    /// operator order.
    pub fn scans(&self) -> &[(OpId, String)] {
        &self.scans
    }

    /// The delta legs in telescoping order (empty for recompute-only
    /// views).
    pub fn legs(&self) -> &[MaintenanceLeg] {
        &self.legs
    }

    /// Why incremental maintenance is unavailable, if it is.
    pub fn recompute_only(&self) -> Option<&str> {
        self.recompute_only.as_deref()
    }
}

/// Rewrite one plan (base plan or optimizer-compiled leg input) into the
/// delta leg pivoting on `relation`: strip the initiator-side aggregate,
/// broadcast the pivot path into its joins, splice the stationary sides'
/// alignment rehashes.
fn derive_leg(original: &PhysicalPlan, relation: &str) -> Result<MaintenanceLeg> {
    let shape = strip_shape(original)?;
    let strip_final = matches!(shape.stripped, Some((_, _, AggMode::Final)));
    let pivot = dfs_scans(original, shape.body)
        .into_iter()
        .find(|op| scan_relation(original, *op) == relation)
        .ok_or_else(|| {
            OrchestraError::Execution(format!("leg plan for {relation} scans no such relation"))
        })?;
    let mut builder = PlanBuilder::new();
    let (body, _) = rebuild_leg(original, shape.body, pivot, &mut builder, strip_final)?;
    let plan = builder.output(body);
    let fold = fold_of(&shape.stripped, &plan);
    Ok(MaintenanceLeg {
        relation: relation.to_string(),
        plan,
        fold,
    })
}

/// The relation a scan operator reads.
fn scan_relation(plan: &PhysicalPlan, op: OpId) -> &str {
    match &plan.op(op).kind {
        OperatorKind::DistributedScan { relation, .. }
        | OperatorKind::CoveringIndexScan { relation, .. }
        | OperatorKind::ReplicatedScan { relation, .. } => relation,
        _ => unreachable!("scan ops only"),
    }
}

/// Clone the subtree rooted at `op` into `builder`, appending a hidden
/// support `COUNT` to distributed partial aggregates when the final
/// aggregate above them was stripped.
fn rebuild(
    original: &PhysicalPlan,
    op: OpId,
    builder: &mut PlanBuilder,
    strip_final: bool,
) -> Result<OpId> {
    let operator = original.op(op);
    Ok(match &operator.kind {
        OperatorKind::DistributedScan {
            relation,
            predicate,
        } => builder.scan(relation.clone(), operator.arity, predicate.clone()),
        OperatorKind::CoveringIndexScan {
            relation,
            predicate,
        } => builder.covering_index_scan(relation.clone(), operator.arity, predicate.clone()),
        OperatorKind::ReplicatedScan {
            relation,
            predicate,
        } => builder.replicated_scan(relation.clone(), operator.arity, predicate.clone()),
        OperatorKind::Select { predicate } => {
            let child = rebuild(original, operator.children[0], builder, strip_final)?;
            builder.select(child, predicate.clone())
        }
        OperatorKind::Project { columns } => {
            let child = rebuild(original, operator.children[0], builder, strip_final)?;
            builder.project(child, columns.clone())
        }
        OperatorKind::ComputeFunction { exprs } => {
            let child = rebuild(original, operator.children[0], builder, strip_final)?;
            builder.compute(child, exprs.clone())
        }
        OperatorKind::HashJoin {
            left_keys,
            right_keys,
        } => {
            let left = rebuild(original, operator.children[0], builder, strip_final)?;
            let right = rebuild(original, operator.children[1], builder, strip_final)?;
            builder.hash_join(left, right, left_keys.clone(), right_keys.clone())
        }
        OperatorKind::Aggregate {
            group_by,
            aggs,
            mode: AggMode::Partial,
        } => {
            let child = rebuild(original, operator.children[0], builder, strip_final)?;
            let mut aggs = aggs.clone();
            if strip_final {
                // The hidden support count: how many signed raw rows the
                // group currently rests on, so the view can drop groups
                // whose support reaches zero.
                aggs.push((AggFunc::Count, 0));
            }
            builder.aggregate(child, group_by.clone(), aggs, AggMode::Partial)
        }
        OperatorKind::Aggregate { .. } => {
            return Err(OrchestraError::Execution(
                "maintenance requires initiator-side aggregates directly below Output".into(),
            ))
        }
        OperatorKind::Rehash { columns } => {
            let child = rebuild(original, operator.children[0], builder, strip_final)?;
            builder.rehash(child, columns.clone())
        }
        OperatorKind::Broadcast => {
            let child = rebuild(original, operator.children[0], builder, strip_final)?;
            builder.broadcast(child)
        }
        OperatorKind::Ship => {
            let child = rebuild(original, operator.children[0], builder, strip_final)?;
            builder.ship(child)
        }
        OperatorKind::Output => {
            return Err(OrchestraError::Execution(
                "Output cannot appear below the maintenance root".into(),
            ))
        }
    })
}

/// The leaf scans under `op` in depth-first, left-to-right order — the
/// order in which [`rebuild`]/[`rebuild_leg`] push them, and therefore
/// the order of the rewritten plans' [`PhysicalPlan::scans`].
fn dfs_scans(plan: &PhysicalPlan, op: OpId) -> Vec<OpId> {
    let operator = plan.op(op);
    if operator.kind.is_scan() {
        return vec![op];
    }
    operator
        .children
        .iter()
        .flat_map(|c| dfs_scans(plan, *c))
        .collect()
}

/// Does the subtree rooted at `op` contain the leaf scan `pivot`?
fn subtree_contains(plan: &PhysicalPlan, op: OpId, pivot: OpId) -> bool {
    op == pivot
        || plan
            .op(op)
            .children
            .iter()
            .any(|c| subtree_contains(plan, *c, pivot))
}

/// Clone the subtree rooted at `op` into a *delta leg* pivoting on the
/// leaf scan `pivot`: at every join with exactly one pivot-side input,
/// the pivot side crosses a `Broadcast` (a directly-below alignment
/// `Rehash` is replaced by it) and a directly-below `Rehash` on the
/// stationary side is spliced out — the stationary rows are joined in
/// place, which is correct under any disjoint partitioning because each
/// stationary row exists at exactly one node.  Everything off the pivot
/// path is cloned verbatim.  Returns the new op id plus whether the
/// subtree contains the pivot.
fn rebuild_leg(
    original: &PhysicalPlan,
    op: OpId,
    pivot: OpId,
    builder: &mut PlanBuilder,
    strip_final: bool,
) -> Result<(OpId, bool)> {
    let operator = original.op(op);
    if let OperatorKind::HashJoin {
        left_keys,
        right_keys,
    } = &operator.kind
    {
        let (left, right) = (operator.children[0], operator.children[1]);
        let left_has = subtree_contains(original, left, pivot);
        let right_has = subtree_contains(original, right, pivot);
        if left_has || right_has {
            // A join that already carries a Broadcast (a leg compiled by
            // the broadcast-aware planner) is exchange-correct for any
            // pivot size: keep its structure, recursing the pivot side
            // only to reach deeper joins.
            let already_broadcast = [left, right]
                .iter()
                .any(|c| matches!(original.op(*c).kind, OperatorKind::Broadcast));
            let mut build_side = |child: OpId, is_pivot: bool| -> Result<OpId> {
                if already_broadcast {
                    return Ok(if is_pivot {
                        rebuild_leg(original, child, pivot, builder, strip_final)?.0
                    } else {
                        rebuild(original, child, builder, strip_final)?
                    });
                }
                // Rebuild the pivot input as the broadcast delta stream
                // (replacing its alignment rehash, if any) and splice
                // the stationary side's alignment rehash out.
                let spliced = match &original.op(child).kind {
                    OperatorKind::Rehash { .. } => original.op(child).children[0],
                    _ => child,
                };
                Ok(if is_pivot {
                    let (inner, _) = rebuild_leg(original, spliced, pivot, builder, strip_final)?;
                    builder.broadcast(inner)
                } else {
                    rebuild(original, spliced, builder, strip_final)?
                })
            };
            let l = build_side(left, left_has)?;
            let r = build_side(right, right_has)?;
            let id = builder.hash_join(l, r, left_keys.clone(), right_keys.clone());
            return Ok((id, true));
        }
        // A join entirely off the pivot path keeps its alignment.
        let l = rebuild(original, left, builder, strip_final)?;
        let r = rebuild(original, right, builder, strip_final)?;
        return Ok((
            builder.hash_join(l, r, left_keys.clone(), right_keys.clone()),
            false,
        ));
    }
    if operator.kind.is_scan() {
        let id = rebuild(original, op, builder, strip_final)?;
        return Ok((id, op == pivot));
    }
    // Unary operators: recurse along the (potential) pivot path.
    let (child, contains) =
        rebuild_leg(original, operator.children[0], pivot, builder, strip_final)?;
    let id = match &operator.kind {
        OperatorKind::Select { predicate } => builder.select(child, predicate.clone()),
        OperatorKind::Project { columns } => builder.project(child, columns.clone()),
        OperatorKind::ComputeFunction { exprs } => builder.compute(child, exprs.clone()),
        OperatorKind::Aggregate {
            group_by,
            aggs,
            mode: AggMode::Partial,
        } => {
            let mut aggs = aggs.clone();
            if strip_final {
                aggs.push((AggFunc::Count, 0));
            }
            builder.aggregate(child, group_by.clone(), aggs, AggMode::Partial)
        }
        OperatorKind::Rehash { columns } => builder.rehash(child, columns.clone()),
        OperatorKind::Broadcast => builder.broadcast(child),
        OperatorKind::Ship => builder.ship(child),
        other => {
            return Err(OrchestraError::Execution(format!(
                "maintenance legs cannot express {}",
                other.name()
            )))
        }
    };
    Ok((id, contains))
}

/// Mergeable state of one view group: the accumulators plus the hidden
/// support count that decides when the group disappears.  A raw-fold
/// MIN/MAX position carries an [`ExtremumSketch`] instead of using its
/// (placeholder) accumulator, making retractions foldable up to sketch
/// exhaustion.
#[derive(Clone, Debug)]
struct GroupState {
    support: i64,
    accs: Vec<Accumulator>,
    sketches: Vec<Option<ExtremumSketch>>,
}

/// A materialized workload answer maintained across epochs.
///
/// The view keeps its state in *mergeable* form — per-group accumulators
/// (so an `AVG` is still a subtractable `(sum, count)` pair, not a
/// collapsed double) or a counted multiset — and finalizes on demand:
/// [`MaterializedView::answer`] is tuple-for-tuple equal to a fresh full
/// run of the view's original plan at [`MaterializedView::epoch`].
#[derive(Clone, Debug)]
pub struct MaterializedView {
    name: String,
    maintenance: MaintenancePlan,
    epoch: Option<Epoch>,
    /// Which maintenance dataflows the participants already hold.  A
    /// flow's first *successful* run disseminates (installs) it — full
    /// plan bytes; later runs of the same flow ship parameters only.
    /// The base (recompute) plan and each delta leg install separately,
    /// and [`MaterializedView::install_leg_plans`] resets the legs.
    installed_base: bool,
    installed_legs: std::collections::BTreeSet<String>,
    groups: BTreeMap<Vec<Value>, GroupState>,
    multiset: BTreeMap<Tuple, i64>,
}

impl MaterializedView {
    /// Define a view over a compiled plan.  The state is empty until the
    /// first [`refresh_view`] (which must be a
    /// [`MaintenanceMode::Recompute`]).
    pub fn new(name: impl Into<String>, plan: &PhysicalPlan) -> Result<MaterializedView> {
        Ok(MaterializedView {
            name: name.into(),
            maintenance: MaintenancePlan::derive(plan)?,
            epoch: None,
            installed_base: false,
            installed_legs: std::collections::BTreeSet::new(),
            groups: BTreeMap::new(),
            multiset: BTreeMap::new(),
        })
    }

    /// The view's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The epoch the state currently reflects (`None` before the first
    /// recompute).
    pub fn epoch(&self) -> Option<Epoch> {
        self.epoch
    }

    /// The maintenance plan the view runs.
    pub fn maintenance(&self) -> &MaintenancePlan {
        &self.maintenance
    }

    /// Can this view absorb deltas, or must every refresh recompute?
    pub fn supports_incremental(&self) -> bool {
        self.maintenance.recompute_only.is_none()
    }

    /// Replace the default delta legs with caller-supplied leg *inputs*
    /// — typically plans the optimizer compiled per pivot with the pivot
    /// relation's cardinality set to a delta-sized value, so each leg's
    /// join order starts from the delta.  Each input is rewritten here
    /// (aggregate stripped, pivot path broadcast, stationary rehashes
    /// spliced).  `legs` must name each scanned relation exactly once;
    /// its order becomes the telescoping order.  The installed legs must
    /// fold compatibly with the base plan (same group/aggregate counts).
    pub fn install_leg_plans(&mut self, legs: &[(String, PhysicalPlan)]) -> Result<()> {
        if let Some(reason) = self.maintenance.recompute_only() {
            return Err(OrchestraError::Execution(format!(
                "view {} is recompute-only: {reason}",
                self.name
            )));
        }
        let mut expected: Vec<&str> = self
            .maintenance
            .scans
            .iter()
            .map(|(_, r)| r.as_str())
            .collect();
        expected.sort_unstable();
        let mut given: Vec<&str> = legs.iter().map(|(r, _)| r.as_str()).collect();
        given.sort_unstable();
        if expected != given {
            return Err(OrchestraError::Execution(format!(
                "leg plans must cover each scanned relation exactly once \
                 (expected {expected:?}, got {given:?})"
            )));
        }
        let mut rewritten = Vec::with_capacity(legs.len());
        for (relation, plan) in legs {
            let leg = derive_leg(plan, relation)?;
            if leg.fold.shape() != self.maintenance.fold.shape() {
                return Err(OrchestraError::Execution(format!(
                    "leg plan for {relation} folds {:?}, incompatible with the view's {:?}",
                    leg.fold, self.maintenance.fold
                )));
            }
            rewritten.push(leg);
        }
        self.maintenance.legs = rewritten;
        // The replaced dataflows are new to the participants: their next
        // run pays full dissemination again.
        self.installed_legs.clear();
        Ok(())
    }

    /// The maintained answer, finalized and sorted exactly like
    /// [`super::QueryReport::rows`].
    pub fn answer(&self) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = match self.maintenance.fold {
            FoldMode::Multiset => self
                .multiset
                .iter()
                .flat_map(|(t, n)| {
                    debug_assert!(*n >= 0, "negative multiplicity for {t:?}");
                    std::iter::repeat_n(t.clone(), (*n).max(0) as usize)
                })
                .collect(),
            FoldMode::Raw { .. } | FoldMode::Partial { .. } => self
                .groups
                .iter()
                .map(|(key, state)| {
                    let mut values = key.clone();
                    values.extend(state.accs.iter().zip(&state.sketches).map(|(acc, sketch)| {
                        match sketch {
                            Some(s) => {
                                debug_assert!(
                                    !s.is_exhausted(),
                                    "an exhausted sketch must have triggered a recompute"
                                );
                                s.best().cloned().unwrap_or(Value::Null)
                            }
                            None => acc.final_value(),
                        }
                    }));
                    Tuple::new(values)
                })
                .collect(),
        };
        rows.sort();
        rows
    }

    /// Throw the state away (the recompute path's clean slate).
    pub(super) fn reset(&mut self) {
        self.groups.clear();
        self.multiset.clear();
    }

    /// Is the base (recompute) dataflow already resident at the
    /// participants?
    pub(super) fn base_installed(&self) -> bool {
        self.installed_base
    }

    /// Mark the base dataflow resident (a recompute run completed).
    pub(super) fn mark_base_installed(&mut self) {
        self.installed_base = true;
    }

    /// Mark `relation`'s delta-leg dataflow resident (its leg completed).
    pub(super) fn mark_leg_installed(&mut self, relation: &str) {
        self.installed_legs.insert(relation.to_string());
    }

    /// Advance the epoch the state reflects (the caller has folded every
    /// session of the refresh, or nothing changed).
    pub(super) fn set_epoch(&mut self, epoch: Epoch) {
        self.epoch = Some(epoch);
    }

    /// Fold one session's signed answer rows into the state, under the
    /// fold mode of the plan that session ran.
    pub(super) fn fold(&mut self, fold: &FoldMode, rows: &[(Tuple, i8)]) {
        match fold.clone() {
            FoldMode::Multiset => {
                for (tuple, sign) in rows {
                    let entry = self.multiset.entry(tuple.clone()).or_insert(0);
                    *entry += *sign as i64;
                    if *entry == 0 {
                        self.multiset.remove(tuple);
                    }
                }
            }
            FoldMode::Raw { group_by, aggs } => {
                for (tuple, sign) in rows {
                    let state = self.group_entry(&group_by, &aggs, tuple, true);
                    state.support += *sign as i64;
                    for (i, (_, col)) in aggs.iter().enumerate() {
                        match state.sketches[i].as_mut() {
                            Some(sketch) => {
                                sketch.update_signed(tuple.value(*col), *sign as i64);
                            }
                            None => state.accs[i].update_signed(tuple.value(*col), *sign as i64),
                        }
                    }
                    self.drop_if_unsupported(&group_by, tuple);
                }
            }
            FoldMode::Partial {
                group_by,
                aggs,
                count_col,
            } => {
                for (tuple, sign) in rows {
                    let state = self.group_entry(&group_by, &aggs, tuple, false);
                    state.support += *sign as i64 * tuple.value(count_col).as_int().unwrap_or(0);
                    for (i, (f, col)) in aggs.iter().enumerate() {
                        let slice: Vec<Value> = (0..f.partial_width())
                            .map(|k| tuple.value(col + k).clone())
                            .collect();
                        state.accs[i].merge_partial_signed(&slice, *sign as i64);
                    }
                    self.drop_if_unsupported(&group_by, tuple);
                }
            }
        }
    }

    fn group_entry(
        &mut self,
        group_by: &[usize],
        aggs: &[(AggFunc, usize)],
        tuple: &Tuple,
        raw: bool,
    ) -> &mut GroupState {
        let key: Vec<Value> = group_by.iter().map(|c| tuple.value(*c).clone()).collect();
        self.groups.entry(key).or_insert_with(|| GroupState {
            support: 0,
            accs: aggs.iter().map(|(f, _)| Accumulator::new(*f)).collect(),
            sketches: aggs
                .iter()
                .map(|(f, _)| match f {
                    AggFunc::Min if raw => {
                        Some(ExtremumSketch::new(ExtremumKind::Min, EXTREMUM_SKETCH_K))
                    }
                    AggFunc::Max if raw => {
                        Some(ExtremumSketch::new(ExtremumKind::Max, EXTREMUM_SKETCH_K))
                    }
                    _ => None,
                })
                .collect(),
        })
    }

    /// Has any group's extremum sketch been exhausted by retractions?
    /// When true, the maintained MIN/MAX is unknowable from retained
    /// state and the refresh must fall back to a recompute.
    pub fn sketch_exhausted(&self) -> bool {
        self.groups.values().any(|g| {
            g.sketches
                .iter()
                .flatten()
                .any(ExtremumSketch::is_exhausted)
        })
    }

    /// A group whose support count reached zero has no base rows left:
    /// its accumulators cancelled to neutral and the group must vanish
    /// from the answer, exactly as a fresh run would never form it.
    fn drop_if_unsupported(&mut self, group_by: &[usize], tuple: &Tuple) {
        let key: Vec<Value> = group_by.iter().map(|c| tuple.value(*c).clone()).collect();
        if self.groups.get(&key).map(|s| s.support) == Some(0) {
            self.groups.remove(&key);
        }
    }
}

/// How a refresh absorbs a published epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MaintenanceMode {
    /// Push the interval's signed deltas through the delta legs — one
    /// session per leg whose pivot relation changed.
    Incremental,
    /// Rebuild the state from a full run of the maintenance plan at the
    /// target epoch.
    Recompute,
}

/// Measurements of one refresh.
#[derive(Clone, Debug)]
pub struct MaintenanceRun {
    /// The mode that ran.
    pub mode: MaintenanceMode,
    /// The epoch the view reflects after the refresh.
    pub epoch: Epoch,
    /// Sessions executed (delta legs, or 1 for a recompute, or 0 when
    /// every delta was empty).
    pub legs: usize,
    /// Bytes shipped between distinct nodes across all legs.
    pub shipped_bytes: u64,
    /// Inter-node messages across all legs.
    pub shipped_messages: u64,
    /// Virtual time from refresh start to the last leg's completion.
    pub makespan: SimTime,
    /// Did any leg run a failure-recovery round?
    pub recovered: bool,
    /// Signed rows folded into the view.
    pub rows_folded: usize,
    /// Did an incremental refresh exhaust an extremum sketch and fall
    /// back to a recompute?  The recompute's traffic is included in this
    /// run's totals.
    pub sketch_fallback: bool,
    /// Per-leg session reports (empty when no leg ran).
    pub sessions: Vec<SessionReport>,
}

/// Refresh `view` to `to_epoch` over `storage`, running the maintenance
/// sessions under a [`SessionScheduler`] (optionally injecting
/// `failure` into the shared network mid-maintenance — each leg then
/// recovers under `engine.strategy` like any other query).
pub fn refresh_view(
    view: &mut MaterializedView,
    storage: &DistributedStorage,
    engine: &EngineConfig,
    mode: MaintenanceMode,
    to_epoch: Epoch,
    initiator: NodeId,
    failure: Option<FailureSpec>,
) -> Result<MaintenanceRun> {
    // Relations whose delta legs this refresh executes (empty for a
    // recompute) — the flows marked installed once the run succeeds.
    let mut ran_legs: Vec<String> = Vec::new();
    let sessions: Vec<(QuerySession, FoldMode)> = match mode {
        MaintenanceMode::Recompute => vec![(
            QuerySession {
                name: format!("{}/recompute@{to_epoch}", view.name),
                plan: view.maintenance.plan.clone(),
                epoch: to_epoch,
                initiator,
                arrival: SimTime::ZERO,
                // Maintenance answers are folded into view state, not
                // served to clients — never cached.
                fingerprint: None,
                estimated_cost: 0.0,
                overrides: ScanOverrides::new(),
                plan_resident: view.installed_base,
            },
            view.maintenance.fold.clone(),
        )],
        MaintenanceMode::Incremental => {
            let Some(from) = view.epoch else {
                return Err(OrchestraError::Execution(format!(
                    "view {} has no materialized epoch; the first refresh must recompute",
                    view.name
                )));
            };
            if let Some(reason) = view.maintenance.recompute_only() {
                return Err(OrchestraError::Execution(format!(
                    "view {} is recompute-only: {reason}",
                    view.name
                )));
            }
            if from > to_epoch {
                return Err(OrchestraError::Execution(format!(
                    "view {} already reflects {from}, cannot maintain backwards to {to_epoch}",
                    view.name
                )));
            }
            let legs = delta_legs(view, storage, from, to_epoch, initiator)?;
            ran_legs = legs
                .iter()
                .map(|(_, _, relation)| relation.clone())
                .collect();
            legs.into_iter()
                .map(|(session, fold, _)| (session, fold))
                .collect()
        }
    };

    let mut run = MaintenanceRun {
        mode,
        epoch: to_epoch,
        legs: sessions.len(),
        shipped_bytes: 0,
        shipped_messages: 0,
        makespan: SimTime::ZERO,
        recovered: false,
        rows_folded: 0,
        sketch_fallback: false,
        sessions: Vec::new(),
    };
    if sessions.is_empty() {
        // Nothing changed for any scanned relation: the view is already
        // exact at the target epoch.
        view.epoch = Some(to_epoch);
        return Ok(run);
    }

    let scheduler = SessionScheduler::new(SchedulerConfig {
        max_concurrent: sessions.len(),
        queue_capacity: sessions.len(),
        policy: AdmissionPolicy::Fifo,
        slo: None,
    });
    let submitted: Vec<QuerySession> = sessions.iter().map(|(s, _)| s.clone()).collect();
    let report = match failure {
        Some(f) => scheduler.run_with_failure(storage, engine, &submitted, f)?,
        None => scheduler.run(storage, engine, &submitted)?,
    };

    // The run completed: whatever dataflows it disseminated are now
    // resident at the participants, so later runs of the same flows
    // ship parameters + snapshot only — the continuous-query property
    // that keeps a small delta's refresh traffic proportional to the
    // delta.  (A failed refresh returns above without marking anything
    // installed.)
    match mode {
        MaintenanceMode::Recompute => view.installed_base = true,
        MaintenanceMode::Incremental => {
            for leg in &ran_legs {
                view.installed_legs.insert(leg.clone());
            }
        }
    }

    if mode == MaintenanceMode::Recompute {
        view.reset();
    }
    for (session, (_, fold)) in report.sessions.iter().zip(&sessions) {
        run.rows_folded += session.report.signed_rows.len();
        run.recovered |= session.report.recovered;
        view.fold(fold, &session.report.signed_rows);
    }
    view.epoch = Some(to_epoch);
    run.shipped_bytes = report.total_bytes;
    run.shipped_messages = report.total_messages;
    run.makespan = report.makespan;
    run.sessions = report.sessions;

    // Delete-heavy retractions can exhaust a group's extremum sketch:
    // the MIN/MAX is now among discarded runners-up and no retained
    // state can recover it.  Fall back to one recompute — it rebuilds
    // every sketch — and charge its traffic to this run.
    if mode == MaintenanceMode::Incremental && view.sketch_exhausted() {
        let recompute = refresh_view(
            view,
            storage,
            engine,
            MaintenanceMode::Recompute,
            to_epoch,
            initiator,
            None,
        )?;
        run.sketch_fallback = true;
        run.legs += recompute.legs;
        run.shipped_bytes += recompute.shipped_bytes;
        run.shipped_messages += recompute.shipped_messages;
        run.makespan += recompute.makespan;
        run.recovered |= recompute.recovered;
        run.rows_folded += recompute.rows_folded;
        run.sessions.extend(recompute.sessions);
    }
    Ok(run)
}

/// Build the telescoped delta-leg sessions: leg *i* runs its pivot's leg
/// plan with scans of relations before *i* (telescoping order) pinned to
/// the new epoch, the pivot reading the signed delta, and relations
/// after *i* pinned to the old epoch.  Legs whose pivot relation did not
/// change are skipped.
pub(super) fn delta_legs(
    view: &MaterializedView,
    storage: &DistributedStorage,
    from: Epoch,
    to: Epoch,
    initiator: NodeId,
) -> Result<Vec<(QuerySession, FoldMode, String)>> {
    let order: Vec<&str> = view
        .maintenance
        .legs
        .iter()
        .map(|l| l.relation.as_str())
        .collect();
    let mut sessions = Vec::new();
    for (pivot, leg) in view.maintenance.legs.iter().enumerate() {
        // A relation whose visible version did not move between the two
        // snapshots has an empty delta; comparing version epochs is
        // O(log history), no tuples are fetched.
        if storage.version_at(&leg.relation, from) == storage.version_at(&leg.relation, to) {
            continue;
        }
        let mut overrides = ScanOverrides::new();
        for op in leg.plan.scans() {
            let relation = scan_relation(&leg.plan, op);
            let global = order
                .iter()
                .position(|r| *r == relation)
                .expect("every leg scan has a telescoping position");
            match global.cmp(&pivot) {
                std::cmp::Ordering::Less => overrides.read_at(op, to),
                std::cmp::Ordering::Equal => overrides.read_delta(op, from, to),
                std::cmp::Ordering::Greater => overrides.read_at(op, from),
            };
        }
        sessions.push((
            QuerySession {
                name: format!("{}/Δ{}@{to}", view.name, leg.relation),
                plan: leg.plan.clone(),
                epoch: to,
                initiator,
                arrival: SimTime::ZERO,
                fingerprint: None,
                estimated_cost: 0.0,
                overrides,
                plan_resident: view.installed_legs.contains(&leg.relation),
            },
            leg.fold.clone(),
            leg.relation.clone(),
        ));
    }
    Ok(sessions)
}
