//! Shared-clock multiplexing: one simulated network, many queries.
//!
//! [`SessionSim`] is the per-query face of a [`Simulator`] that may be
//! shared by several concurrently executing queries.  Each `Runtime`
//! owns one handle; every message it sends is wrapped in a
//! [`Wire`] envelope carrying the runtime's [`SessionId`], and the
//! handle keeps the session's own [`TrafficStats`] and dropped-message
//! count so a [`super::QueryReport`] stays per-query exact even when the
//! underlying links, CPUs and clock are contended by other sessions.
//!
//! A stand-alone [`super::QueryExecutor`] run builds an *exclusive*
//! handle — a shared simulator with exactly one session — and drives the
//! event loop itself through [`SessionSim::next_own`].  The multi-query
//! scheduler (`scheduler`) instead owns the pop loop, attaches one
//! handle per admitted session, and dispatches each delivery by its
//! envelope tag.

use super::exchange::{Payload, SessionId, Wire};
use orchestra_common::{NodeId, NodeSet};
use orchestra_simnet::{ClusterProfile, Delivery, SimTime, Simulator, TrafficStats};
use orchestra_substrate::RoutingTable;
use std::cell::RefCell;
use std::rc::Rc;

/// A simulator shared by every session of one scheduler run (or owned
/// outright by a single query).  Single-threaded by construction, hence
/// `Rc<RefCell<..>>` rather than locks.
pub(super) type SharedSim = Rc<RefCell<Simulator<Wire>>>;

/// Node slots a simulator over `table`'s members needs (node ids index
/// arrays directly, so the highest index bounds the allocation).
pub(super) fn node_slots(table: &RoutingTable) -> usize {
    table
        .nodes()
        .iter()
        .map(|n| n.index())
        .max()
        .expect("routing table has nodes")
        + 1
}

/// Build the shared simulator every session of one run attaches to.
pub(super) fn shared_sim(table: &RoutingTable, profile: ClusterProfile) -> SharedSim {
    Rc::new(RefCell::new(Simulator::new(node_slots(table), profile)))
}

/// One query session's handle onto a (possibly shared) simulator.
pub(super) struct SessionSim {
    shared: SharedSim,
    session: SessionId,
    /// Traffic attributable to this session alone.
    stats: TrafficStats,
    /// Messages of this session dropped because a party had failed.
    dropped: u64,
}

impl SessionSim {
    /// Attach a session handle to `shared`.
    pub(super) fn attach(shared: SharedSim, session: SessionId) -> SessionSim {
        SessionSim {
            shared,
            session,
            stats: TrafficStats::new(),
            dropped: 0,
        }
    }

    /// A handle over a fresh simulator of its own — the stand-alone
    /// `QueryExecutor` configuration, where the query is session 0 and
    /// nothing contends with it.
    pub(super) fn exclusive(table: &RoutingTable, profile: ClusterProfile) -> SessionSim {
        SessionSim::attach(shared_sim(table, profile), SessionId(0))
    }

    /// Current virtual time of the shared clock.
    pub(super) fn now(&self) -> SimTime {
        self.shared.borrow().now()
    }

    /// Mark `node` failed from `at` onwards (affects every session).
    pub(super) fn fail_node(&mut self, node: NodeId, at: SimTime) {
        self.shared.borrow_mut().fail_node(node, at);
    }

    /// The set of nodes failed as of `at`.
    pub(super) fn failed_nodes_at(&self, at: SimTime) -> NodeSet {
        self.shared.borrow().failed_nodes_at(at)
    }

    /// Reserve CPU on `node` (shared across sessions — concurrent
    /// queries contend for the same cores).
    pub(super) fn charge_cpu(
        &mut self,
        node: NodeId,
        ready: SimTime,
        duration: SimTime,
    ) -> SimTime {
        self.shared.borrow_mut().charge_cpu(node, ready, duration)
    }

    /// The time `node`'s CPU becomes free.
    pub(super) fn cpu_free_at(&self, node: NodeId) -> SimTime {
        self.shared.borrow().cpu_free_at(node)
    }

    /// Enqueue a purely local event for this session.
    pub(super) fn schedule(&mut self, node: NodeId, at: SimTime, payload: Payload) {
        self.shared.borrow_mut().schedule(
            node,
            at,
            Wire {
                session: self.session,
                payload,
            },
        );
    }

    /// Send `bytes` from `src` to `dst` on behalf of this session,
    /// contending for the shared links.  Per-session traffic is recorded
    /// here; the shared simulator keeps the aggregate.
    pub(super) fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        ready: SimTime,
        payload: Payload,
    ) -> Option<SimTime> {
        let sent = self.shared.borrow_mut().send(
            src,
            dst,
            bytes,
            ready,
            Wire {
                session: self.session,
                payload,
            },
        );
        match sent {
            Some(arrival) => {
                if src != dst {
                    self.stats.record(src, dst, bytes);
                }
                Some(arrival)
            }
            None => {
                self.dropped += 1;
                None
            }
        }
    }

    /// Pop the next delivery of an *exclusively owned* simulator,
    /// unwrapping the envelope and attributing receiver-side drops to
    /// this session.  Must not be used on a simulator other sessions are
    /// attached to — their deliveries would be misattributed.
    pub(super) fn next_own(&mut self) -> Option<Delivery<Payload>> {
        loop {
            let popped = self.shared.borrow_mut().next_any();
            match popped {
                None => return None,
                Some((d, delivered)) => {
                    debug_assert_eq!(
                        d.payload.session, self.session,
                        "next_own popped another session's delivery"
                    );
                    if !delivered {
                        self.dropped += 1;
                        continue;
                    }
                    return Some(Delivery {
                        time: d.time,
                        from: d.from,
                        to: d.to,
                        payload: d.payload.payload,
                    });
                }
            }
        }
    }

    /// A delivery addressed to this session was discarded because the
    /// receiver had failed (attributed by the scheduler's pop loop).
    pub(super) fn note_receiver_drop(&mut self) {
        self.dropped += 1;
    }

    /// This session's traffic counters.
    pub(super) fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// This session's dropped-message count.
    pub(super) fn dropped_messages(&self) -> u64 {
        self.dropped
    }
}
