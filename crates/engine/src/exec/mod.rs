//! The reliable distributed query executor (paper Sections V-A to V-D).
//!
//! [`QueryExecutor`] runs a [`PhysicalPlan`] over the versioned store,
//! routing every inter-node byte through the deterministic simulator so
//! that running time and traffic are measured, not estimated.  Execution
//! is event-driven and push-based:
//!
//! 1. The initiator disseminates the plan plus a routing snapshot to every
//!    participant (paper Section V-C: queries run against an immutable
//!    snapshot taken at initiation).
//! 2. Each participant scans its partition of every leaf relation and
//!    pushes the tuples through its local operator pipeline.  `Rehash` and
//!    `Ship` buffer rows per destination and flush them as compressed
//!    batches ([`crate::batch::TupleBatch`]) through the simulator.
//! 3. Delivered batches continue through the receiving node's pipeline
//!    above the exchange.  When a node has exhausted every input feeding
//!    an exchange it closes the segment: blocking aggregates emit their
//!    unemitted sub-groups, pending buffers flush, and an end-of-stream
//!    marker goes to every destination.  The query completes when the
//!    initiator's `Output` segment closes.
//!
//! ## Failure and recovery (Section V-D)
//!
//! A [`FailureSpec`] kills one node at a virtual instant: the simulator
//! drops its in-flight and future messages, so the end-of-stream cascade
//! stalls and the event queue quiesces with the query incomplete.  The
//! executor then recovers under the configured [`RecoveryStrategy`]:
//!
//! * **Restart** — discard all operator state, reassign the failed node's
//!   ranges to its surviving replica holders, and re-run the query from
//!   scratch on the survivors.
//! * **Incremental** — the four-stage protocol: (1) derive the recovery
//!   routing snapshot; (2) purge exactly the tainted state — tuples,
//!   join rows and aggregate sub-groups whose provenance intersects the
//!   failed set; (3) bump the phase and re-run leaf scans over the
//!   *inherited* ranges only; (4) re-transmit, from the rehash/ship output
//!   caches, the untainted rows that had been sent to the failed node —
//!   re-routed to the heirs under the recovery snapshot.  The result is
//!   correct, complete and duplicate-free without redoing unaffected work.
//!
//! The answer comes back in a [`QueryReport`] together with the simulated
//! running time and the exact per-link traffic counts — the quantities
//! plotted in the paper's figures.
//!
//! ## Module layout
//!
//! This module is the thin driver: configuration ([`EngineConfig`],
//! [`FailureSpec`], [`RecoveryStrategy`]) and the [`QueryExecutor`] entry
//! points.  The layers underneath have one file each, with the `Runtime`
//! state machine (defined in `pipeline`) threading through them:
//!
//! * `pipeline` — per-node operator pipeline instantiation, the
//!   push loop, and the end-of-stream segment-closure cascade;
//! * `scan` — leaf scans over the versioned store (distributed,
//!   replicated and covering-index);
//! * `exchange` — rehash/ship batching, routing-snapshot consultation,
//!   the recovery output caches (`ExchangeLayer`), and the
//!   session-tagged wire envelope ([`SessionId`]);
//! * `session` — the per-session handle onto a simulator shared by
//!   several concurrent queries (shared-clock multiplexing);
//! * `scheduler` — the multi-query [`SessionScheduler`]: open-loop
//!   arrivals, admission control over a bounded run queue with load
//!   shedding, N runtimes interleaved over one simulator, per-session
//!   recovery, [`WorkloadReport`] assembly with tail-latency and
//!   SLO-miss accounting;
//! * `cache` — the epoch-keyed [`ResultCache`]: complete answers
//!   memoized under `(fingerprint, epoch)` keys with LRU or cost-aware
//!   eviction — immutable epochs mean no invalidation logic at all;
//! * `ivm` — incremental view maintenance: maintenance-plan rewriting,
//!   [`MaterializedView`] state, and the [`refresh_view`] driver that
//!   pushes signed epoch deltas through the pipeline as scheduler
//!   sessions;
//! * `registry` — the standing-query subscription layer
//!   ([`ViewRegistry`]): many registered views kept exact by one shared
//!   maintenance workload per epoch — deltas derived once per changed
//!   relation, colliding delta legs executed once and forked at the
//!   initiator — with per-subscriber signed result diffs;
//! * `recovery` — the Restart and Incremental strategies;
//! * `report` — [`QueryReport`] assembly and per-link traffic
//!   accounting (`RunStats`).

pub mod cache;
mod exchange;
pub mod ivm;
mod pipeline;
mod recovery;
pub mod registry;
mod report;
mod scan;
pub mod scheduler;
mod session;

#[cfg(test)]
mod tests;

use crate::plan::PhysicalPlan;
use orchestra_common::{Epoch, NodeId, NodeSet, OrchestraError, Result};
use orchestra_simnet::{ClusterProfile, SimTime};
use orchestra_storage::DistributedStorage;
use orchestra_substrate::RoutingTable;

use pipeline::Runtime;
use session::SessionSim;

pub use cache::{CacheStats, CachedAnswer, EntryStats, EvictionPolicy, ResultCache};
pub use exchange::SessionId;
pub use ivm::{
    refresh_view, FoldMode, MaintenanceLeg, MaintenanceMode, MaintenancePlan, MaintenanceRun,
    MaterializedView, ScanOverrides,
};
pub use registry::{RegistryRefresh, ViewDiff, ViewRegistry};
pub use report::{QueryReport, WallClock};
pub use scheduler::{
    AdmissionPolicy, QuerySession, SchedulerConfig, SessionReport, SessionScheduler, ShedEvent,
    WorkloadReport,
};

/// How the executor reacts to a node failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryStrategy {
    /// Throw away all state and re-run the query on the survivors.
    Restart,
    /// Purge tainted state, rescan inherited ranges, re-transmit cached
    /// output — the paper's low-overhead strategy.
    Incremental,
}

/// Configuration of the query engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Timing and bandwidth model of the simulated cluster.
    pub profile: ClusterProfile,
    /// Tuples buffered per destination before a batch is flushed.
    pub batch_size: usize,
    /// Dictionary-compress batches before computing their wire size.
    pub compress: bool,
    /// Recovery support: carry provenance tags on the wire and keep
    /// rehash/ship output caches.  Adds the paper's "at most 2%" traffic
    /// overhead; required for [`RecoveryStrategy::Incremental`].
    pub recovery: bool,
    /// Strategy applied when a failure interrupts the query.
    pub strategy: RecoveryStrategy,
    /// Upper bound on recovery rounds before the query is abandoned.
    pub max_recovery_rounds: u32,
    /// Run operators through the legacy row-at-a-time data path instead
    /// of the columnar batch path.  Simulated figures are identical on
    /// both paths; this exists as the baseline axis of the wall-clock
    /// rows/sec benchmark.
    pub legacy_row_path: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            profile: ClusterProfile::lan_cluster(),
            batch_size: 256,
            compress: true,
            recovery: true,
            strategy: RecoveryStrategy::Incremental,
            max_recovery_rounds: 4,
            legacy_row_path: false,
        }
    }
}

/// A failure to inject: `node` dies at virtual time `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureSpec {
    /// The node that fails.
    pub node: NodeId,
    /// The virtual instant at which it fails.
    pub at: SimTime,
}

impl FailureSpec {
    /// Kill `node` at virtual time `at`.
    pub fn at_time(node: NodeId, at: SimTime) -> FailureSpec {
        FailureSpec { node, at }
    }
}

/// The storage a run executes against: the caller's store for normal
/// runs, or an owned scratch copy for failure runs so the dead node's
/// local state can be made unreachable at recovery time without
/// disturbing the caller.
enum StorageHandle<'a> {
    Borrowed(&'a DistributedStorage),
    Scratch(Box<DistributedStorage>),
}

impl StorageHandle<'_> {
    fn get(&self) -> &DistributedStorage {
        match self {
            StorageHandle::Borrowed(s) => s,
            StorageHandle::Scratch(s) => s,
        }
    }
}

/// The reliable distributed query executor.
pub struct QueryExecutor<'a> {
    storage: &'a DistributedStorage,
    config: EngineConfig,
}

impl<'a> QueryExecutor<'a> {
    /// Build an executor over `storage` with `config`.
    pub fn new(storage: &'a DistributedStorage, config: EngineConfig) -> QueryExecutor<'a> {
        QueryExecutor { storage, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Execute `plan` against the version of the data visible at `epoch`,
    /// initiated by `initiator`, with no failure injected.
    pub fn execute(
        &self,
        plan: &PhysicalPlan,
        epoch: Epoch,
        initiator: NodeId,
    ) -> Result<QueryReport> {
        let sim = SessionSim::exclusive(self.storage.routing(), self.config.profile);
        Runtime::new(
            StorageHandle::Borrowed(self.storage),
            &self.config,
            plan,
            epoch,
            initiator,
            sim,
        )?
        .run()
    }

    /// Execute `plan` while killing `failure.node` at `failure.at`.
    ///
    /// The caller's storage is not disturbed: the run executes against a
    /// scratch copy that behaves exactly like the original until the
    /// failure is detected; recovery then marks the node failed so
    /// rescans cannot read the dead node's local state.
    pub fn execute_with_failure(
        &self,
        plan: &PhysicalPlan,
        epoch: Epoch,
        initiator: NodeId,
        failure: FailureSpec,
    ) -> Result<QueryReport> {
        let table = self.storage.routing();
        if !table.contains_node(failure.node) {
            return Err(OrchestraError::Execution(format!(
                "failure target {} is not a member of the routing table",
                failure.node
            )));
        }
        let mut sim = SessionSim::exclusive(table, self.config.profile);
        sim.fail_node(failure.node, failure.at);
        let scratch = Box::new(self.storage.clone());
        Runtime::new(
            StorageHandle::Scratch(scratch),
            &self.config,
            plan,
            epoch,
            initiator,
            sim,
        )?
        .run()
    }

    /// Execute `plan` against a possibly **stale** routing snapshot — the
    /// view a gossip-informed initiator derived locally, which may still
    /// list nodes in `departed` that are in truth already gone.
    ///
    /// The run plans and routes strictly by `snapshot`, while the
    /// simulated network reflects the truth: every node in `departed` is
    /// dead from the first instant, so messages addressed to it drop and
    /// its local state is unreachable.  If the snapshot never touches a
    /// departed node the query completes normally; if it does, the
    /// end-of-stream cascade stalls and the ordinary Restart/Incremental
    /// recovery reassigns the departed ranges — exactly the machinery a
    /// same-epoch failure would invoke.  Staleness therefore costs
    /// recovery time, never correctness.
    ///
    /// Errors if the initiator itself is in `departed` (a dead node
    /// cannot initiate) or is absent from the snapshot.
    pub fn execute_with_stale_snapshot(
        &self,
        plan: &PhysicalPlan,
        epoch: Epoch,
        initiator: NodeId,
        snapshot: &RoutingTable,
        departed: &NodeSet,
    ) -> Result<QueryReport> {
        if departed.contains(initiator) {
            return Err(OrchestraError::Execution(format!(
                "initiator {initiator} has departed and cannot run the query"
            )));
        }
        let mut sim = SessionSim::exclusive(snapshot, self.config.profile);
        for node in departed.iter() {
            // A departed node the snapshot no longer lists cannot be
            // addressed at all (the simulator is sized to the snapshot's
            // members), so only snapshot members need killing.
            if snapshot.contains_node(node) {
                sim.fail_node(node, SimTime::ZERO);
            }
        }
        let mut scratch = Box::new(self.storage.clone());
        scratch.set_routing(snapshot.clone());
        // The departed nodes' local state is unreachable from the first
        // instant: storage lookups must fail over to surviving replicas
        // rather than pretend to read a dead node's disk.
        for node in departed.iter() {
            scratch.mark_failed(node);
        }
        Runtime::new(
            StorageHandle::Scratch(scratch),
            &self.config,
            plan,
            epoch,
            initiator,
            sim,
        )?
        .run()
    }
}
