//! The multi-query session scheduler.
//!
//! Every layer below this one runs exactly one query over a dedicated
//! simulated network.  [`SessionScheduler`] is what turns the executor
//! into a *serving* system: it drives N query runtimes interleaved over
//! **one** shared simulator, so batches from different queries contend
//! for the same uplinks, downlinks and CPUs, and the clock advances
//! globally rather than per query.
//!
//! ## Arrivals
//!
//! Each [`QuerySession`] carries an *arrival instant*.  A batch workload
//! submits everything at time zero (the closed-loop shape the throughput
//! experiments sweep); an open-loop workload staggers arrivals — e.g.
//! Poisson arrivals drawn with `SeededRng::sample_exp` — and the
//! scheduler advances the shared clock to each arrival when the network
//! is otherwise idle, so sessions enter the system at their own instants
//! rather than when capacity happens to free up.
//!
//! ## Admission control and load shedding
//!
//! An arriving session enters a bounded run queue (capacity
//! [`SchedulerConfig::queue_capacity`]).  If the queue is full at its
//! arrival instant the session is **shed**: recorded as a [`ShedEvent`]
//! in the workload report, never executed — an overloaded server drops
//! work instead of crashing.  At most
//! [`SchedulerConfig::max_concurrent`] sessions execute at once; a slot
//! frees when a session's `Output` segment closes.  The admission order
//! is governed by [`AdmissionPolicy`]:
//!
//! * [`AdmissionPolicy::Fifo`] — strictly by arrival order;
//! * [`AdmissionPolicy::ShortestCostFirst`] — by the optimizer's
//!   estimated plan cost ([`QuerySession::estimated_cost`], network
//!   bytes from `orchestra_optimizer::estimate_plan_cost`), arrival
//!   order breaking ties — the classic shortest-job-first heuristic that
//!   trades worst-case latency for mean latency.
//!
//! ## Result cache
//!
//! [`SessionScheduler::run_serving`] consults a [`ResultCache`] at each
//! session's arrival instant: if the session's
//! [`fingerprint`](QuerySession::fingerprint) has a cached answer *for
//! the session's epoch*, the answer is served immediately — zero
//! latency, zero traffic, no queue slot consumed — and the report is
//! marked [`served_from_cache`](SessionReport::served_from_cache).
//! Completed executions fill the cache; a session interrupted by a
//! failure contributes nothing until its recovery completes, so a
//! mid-query failure can never leave a partial fill behind.  Epochs are
//! immutable once published, so there is no invalidation: a publication
//! bumps the epoch new queries run at, and the old entries age out under
//! capacity pressure.
//!
//! ## Failures
//!
//! A [`super::FailureSpec`] kills a node *of the shared network*: every
//! in-flight session loses its deliveries to and from the victim at
//! once.  When the event queue quiesces with sessions incomplete, the
//! scheduler runs each stalled session's own recovery (Restart or
//! Incremental, per the engine config) — the per-session wire tags
//! ([`SessionId`]) are what keep one query's purge/retransmission from
//! touching another's state.  Sessions admitted after the failure execute on the
//! survivors from the start via the same recovery path.
//!
//! ## Reports
//!
//! Each finished session yields a [`SessionReport`] — arrival, queue
//! wait, latency and the full per-query [`QueryReport`] with
//! session-exact traffic.  The run as a whole yields a
//! [`WorkloadReport`]: makespan, aggregate traffic, peak concurrency,
//! link utilization, tail latencies (p50/p99/p999), SLO misses against
//! [`SchedulerConfig::slo`], shed events, and the run's result-cache
//! counters — the quantities a serving experiment sweeps.

use super::cache::ResultCache;
use super::exchange::{SessionId, Wire};
use super::pipeline::Runtime;
use super::session::{shared_sim, SessionSim, SharedSim};
use super::{CacheStats, EngineConfig, FailureSpec, QueryReport, StorageHandle, WallClock};
use crate::plan::PhysicalPlan;
use orchestra_common::{Epoch, NodeId, OrchestraError, QueryFingerprint, Result};
use orchestra_simnet::{Delivery, SimTime};
use orchestra_storage::DistributedStorage;

/// How the scheduler picks the next session to admit from the run queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdmissionPolicy {
    /// Strictly by arrival order.
    Fifo,
    /// Cheapest estimated plan first ([`QuerySession::estimated_cost`]),
    /// arrival order breaking ties.
    ShortestCostFirst,
}

/// Configuration of the multi-query scheduler.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Sessions executing concurrently at most.
    pub max_concurrent: usize,
    /// Bound of the run queue: a session arriving while this many are
    /// already waiting is shed ([`ShedEvent`]), not executed.
    pub queue_capacity: usize,
    /// Admission order of queued sessions.
    pub policy: AdmissionPolicy,
    /// Latency objective: a completed session whose arrival-to-answer
    /// latency exceeds this counts as an SLO miss in the report.  `None`
    /// disables the accounting.
    pub slo: Option<SimTime>,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            max_concurrent: 4,
            queue_capacity: 64,
            policy: AdmissionPolicy::Fifo,
            slo: None,
        }
    }
}

/// One query submitted to the scheduler.
#[derive(Clone, Debug)]
pub struct QuerySession {
    /// Label carried through to the session's report.
    pub name: String,
    /// The physical plan to execute.
    pub plan: PhysicalPlan,
    /// The data version the query reads.
    pub epoch: Epoch,
    /// The node the query is initiated from (receives the answer).
    pub initiator: NodeId,
    /// The virtual instant the session arrives at the system.  Batch
    /// workloads submit everything at [`SimTime::ZERO`]; open-loop
    /// workloads stagger arrivals (Poisson or trace-driven).
    pub arrival: SimTime,
    /// The canonical identity of the session's logical query
    /// (`orchestra_optimizer::fingerprint`), pairing with
    /// [`QuerySession::epoch`] as the result-cache key.  `None` opts the
    /// session out of caching (view-maintenance legs, ad-hoc plans with
    /// no logical form).
    pub fingerprint: Option<QueryFingerprint>,
    /// The optimizer's estimated plan cost in network bytes
    /// (`orchestra_optimizer::estimate_plan_cost(..).total()`), consulted
    /// by [`AdmissionPolicy::ShortestCostFirst`].
    pub estimated_cost: f64,
    /// Per-scan epoch pins and delta-scan instructions.  Empty for
    /// ordinary queries; view-maintenance sessions (`super::ivm`) use
    /// this to pivot individual scans onto other epochs or onto signed
    /// epoch-interval deltas.
    pub overrides: super::ivm::ScanOverrides,
    /// The participants already hold this plan: dissemination ships only
    /// the routing snapshot and the per-scan parameters, not the plan
    /// itself.  Ad-hoc queries leave this `false`; view maintenance
    /// installs its dataflows once at materialization and streams epoch
    /// parameters through them on every later refresh.
    pub plan_resident: bool,
}

/// One session's outcome within a scheduled workload.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The session's id (its submission index).
    pub session: SessionId,
    /// The submitted [`QuerySession::name`].
    pub name: String,
    /// The instant the session arrived at the system.
    pub arrival: SimTime,
    /// The instant the session was admitted to execution (equal to
    /// [`arrival`](SessionReport::arrival) for a cache hit).
    pub admitted_at: SimTime,
    /// Time spent waiting in the run queue: `admitted_at - arrival`.
    pub queue_wait: SimTime,
    /// Virtual instant the session's answer was complete.
    pub finished_at: SimTime,
    /// Arrival-to-answer time: `finished_at - arrival`.  This is what
    /// the client observes, and what the tail percentiles and SLO-miss
    /// accounting are computed over.
    pub latency: SimTime,
    /// Was the answer served from the result cache (zero execution, zero
    /// traffic)?
    pub served_from_cache: bool,
    /// The session's full per-query report (rows, session-exact traffic,
    /// recovery counters).  Synthesized (empty traffic) for cache hits.
    pub report: QueryReport,
}

/// A session dropped at arrival because the run queue was full.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShedEvent {
    /// The shed session's id (its submission index).
    pub session: SessionId,
    /// The submitted [`QuerySession::name`].
    pub name: String,
    /// The arrival instant at which the session was shed.
    pub at: SimTime,
}

/// The outcome of one scheduled workload: every completed session's
/// report plus the shared network's aggregate measurements.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Completion instant of the last session.
    pub makespan: SimTime,
    /// Bytes shipped between distinct nodes, all sessions combined.
    pub total_bytes: u64,
    /// Inter-node messages, all sessions combined.
    pub total_messages: u64,
    /// Aggregate link utilization over `[0, makespan]`: transfer time
    /// summed over every uplink and downlink, divided by the window's
    /// total link capacity.
    pub link_utilization: f64,
    /// Most sessions ever executing at once (never exceeds
    /// [`SchedulerConfig::max_concurrent`]).
    pub peak_concurrency: usize,
    /// Session ids in the order they were admitted (cache hits never
    /// occupy a slot and do not appear).
    pub admission_order: Vec<SessionId>,
    /// Median arrival-to-answer latency over completed sessions.
    pub latency_p50: SimTime,
    /// 99th-percentile latency (nearest-rank) over completed sessions.
    pub latency_p99: SimTime,
    /// 99.9th-percentile latency (nearest-rank) over completed sessions.
    pub latency_p999: SimTime,
    /// Completed sessions whose latency exceeded
    /// [`SchedulerConfig::slo`] (0 when no SLO is configured).
    pub slo_misses: usize,
    /// Sessions shed at arrival because the run queue was full, in
    /// arrival order.
    pub shed: Vec<ShedEvent>,
    /// Result-cache counters accumulated by *this run* (zeroed when no
    /// cache was attached).
    pub cache: CacheStats,
    /// Per-session reports of completed sessions, in submission order.
    /// Shed sessions are absent (see [`WorkloadReport::shed`]).
    pub sessions: Vec<SessionReport>,
}

/// Nearest-rank percentile of an ascending latency list.
fn percentile(sorted: &[SimTime], q: f64) -> SimTime {
    if sorted.is_empty() {
        return SimTime::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drives N query runtimes interleaved over one shared simulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionScheduler {
    config: SchedulerConfig,
}

impl SessionScheduler {
    /// A scheduler with `config`.
    pub fn new(config: SchedulerConfig) -> SessionScheduler {
        SessionScheduler { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Run `sessions` to completion over `storage`, failure-free and
    /// uncached.
    pub fn run(
        &self,
        storage: &DistributedStorage,
        engine: &EngineConfig,
        sessions: &[QuerySession],
    ) -> Result<WorkloadReport> {
        self.run_inner(storage, engine, sessions, None, None)
    }

    /// Run `sessions` while killing `failure.node` at `failure.at` on the
    /// shared network — every in-flight session is hit at once.  Each
    /// session recovers under `engine.strategy` against its own scratch
    /// copy of the storage, exactly like a stand-alone failure run.
    pub fn run_with_failure(
        &self,
        storage: &DistributedStorage,
        engine: &EngineConfig,
        sessions: &[QuerySession],
        failure: FailureSpec,
    ) -> Result<WorkloadReport> {
        self.run_inner(storage, engine, sessions, Some(failure), None)
    }

    /// Run `sessions` with `cache` consulted at every arrival and filled
    /// by every completion — the serving configuration.  The cache
    /// outlives the run (pass it again after a publication: the bumped
    /// epoch misses naturally).
    pub fn run_serving(
        &self,
        storage: &DistributedStorage,
        engine: &EngineConfig,
        sessions: &[QuerySession],
        cache: &mut ResultCache,
    ) -> Result<WorkloadReport> {
        self.run_inner(storage, engine, sessions, None, Some(cache))
    }

    /// The serving configuration with a node failure injected — cached
    /// answers keep being served while in-flight executions recover, and
    /// only *completed* (post-recovery) answers fill the cache.
    pub fn run_serving_with_failure(
        &self,
        storage: &DistributedStorage,
        engine: &EngineConfig,
        sessions: &[QuerySession],
        failure: FailureSpec,
        cache: &mut ResultCache,
    ) -> Result<WorkloadReport> {
        self.run_inner(storage, engine, sessions, Some(failure), Some(cache))
    }

    fn run_inner(
        &self,
        storage: &DistributedStorage,
        engine: &EngineConfig,
        sessions: &[QuerySession],
        failure: Option<FailureSpec>,
        mut cache: Option<&mut ResultCache>,
    ) -> Result<WorkloadReport> {
        if sessions.is_empty() {
            return Err(OrchestraError::Execution(
                "the scheduler needs at least one session".into(),
            ));
        }
        if self.config.max_concurrent == 0 {
            return Err(OrchestraError::Execution(
                "max_concurrent must be at least 1".into(),
            ));
        }
        let table = storage.routing();
        for s in sessions {
            if !table.contains_node(s.initiator) {
                return Err(OrchestraError::Execution(format!(
                    "initiator {} of session \"{}\" is not a member of the routing table",
                    s.initiator, s.name
                )));
            }
        }
        if let Some(f) = failure {
            if !table.contains_node(f.node) {
                return Err(OrchestraError::Execution(format!(
                    "failure target {} is not a member of the routing table",
                    f.node
                )));
            }
        }

        let shared: SharedSim = shared_sim(table, engine.profile);
        if let Some(f) = failure {
            shared.borrow_mut().fail_node(f.node, f.at);
        }

        // Sessions ordered by (arrival, submission index): the order they
        // enter the system.
        let mut arrival_order: Vec<usize> = (0..sessions.len()).collect();
        arrival_order.sort_by_key(|&i| (sessions[i].arrival, i));
        let mut next_arrival = 0usize;

        let mut waiting: Vec<usize> = Vec::new();
        let mut shed: Vec<ShedEvent> = Vec::new();
        let mut runtimes: Vec<Option<Runtime>> = sessions.iter().map(|_| None).collect();
        let mut finished: Vec<Option<SessionReport>> = sessions.iter().map(|_| None).collect();
        let mut admitted_at: Vec<SimTime> = vec![SimTime::ZERO; sessions.len()];
        let mut admission_order = Vec::with_capacity(sessions.len());
        let mut active = 0usize;
        let mut peak_concurrency = 0usize;
        let cache_before = cache.as_ref().map(|c| c.stats()).unwrap_or_default();

        loop {
            // Absorb every arrival due by now: serve from cache, shed if
            // the queue is full, or enqueue.  All same-instant arrivals
            // join the queue before any is admitted, so the queue bound
            // is measured against the burst, not the drained queue.
            let now = shared.borrow().now();
            while next_arrival < arrival_order.len()
                && sessions[arrival_order[next_arrival]].arrival <= now
            {
                let idx = arrival_order[next_arrival];
                next_arrival += 1;
                let session = &sessions[idx];
                if let (Some(cache), Some(fp)) = (cache.as_deref_mut(), session.fingerprint) {
                    if let Some(hit) = cache.lookup(fp, session.epoch) {
                        finished[idx] = Some(cache_hit_report(idx, session, hit));
                        continue;
                    }
                }
                if waiting.len() >= self.config.queue_capacity {
                    shed.push(ShedEvent {
                        session: SessionId(idx as u32),
                        name: session.name.clone(),
                        at: session.arrival,
                    });
                    continue;
                }
                waiting.push(idx);
            }

            // Admit while there is queued work and free capacity.
            while active < self.config.max_concurrent && !waiting.is_empty() {
                let pos = match self.config.policy {
                    AdmissionPolicy::Fifo => 0,
                    // Stable argmin: equal (or incomparable) costs keep
                    // arrival order.
                    AdmissionPolicy::ShortestCostFirst => waiting
                        .iter()
                        .enumerate()
                        .min_by(|(_, &a), (_, &b)| {
                            sessions[a]
                                .estimated_cost
                                .partial_cmp(&sessions[b].estimated_cost)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(pos, _)| pos)
                        .expect("queue is non-empty"),
                };
                let idx = waiting.remove(pos);
                let now = shared.borrow().now();
                let session = &sessions[idx];
                let sim = SessionSim::attach(shared.clone(), SessionId(idx as u32));
                // A failure run needs a per-session scratch copy so each
                // session's recovery can mark the dead node unreadable
                // without disturbing the caller (or the other sessions).
                let handle = if failure.is_some() {
                    StorageHandle::Scratch(Box::new(storage.clone()))
                } else {
                    StorageHandle::Borrowed(storage)
                };
                let mut runtime = Runtime::new(
                    handle,
                    engine,
                    &session.plan,
                    session.epoch,
                    session.initiator,
                    sim,
                )?;
                runtime.overrides = session.overrides.clone();
                runtime.plan_resident = session.plan_resident;
                runtime.begin(now);
                runtimes[idx] = Some(runtime);
                admitted_at[idx] = now;
                admission_order.push(SessionId(idx as u32));
                active += 1;
                peak_concurrency = peak_concurrency.max(active);
            }

            // Interleave network events with future arrivals in time
            // order: if the next arrival precedes the next delivery (or
            // the network is idle), advance the shared clock to it.
            let next_event = shared.borrow().next_time();
            let pending_arrival = (next_arrival < arrival_order.len())
                .then(|| sessions[arrival_order[next_arrival]].arrival);
            if let Some(at) = pending_arrival {
                let arrival_is_next = match next_event {
                    // An arrival during a stall must not preempt
                    // recovery; it is absorbed on the next pass.
                    None => active == 0,
                    Some(event_at) => at <= event_at,
                };
                if arrival_is_next {
                    shared.borrow_mut().advance_to(at);
                    continue;
                }
            }

            let popped = shared.borrow_mut().next_any();
            match popped {
                Some((delivery, delivered)) => {
                    let idx = delivery.payload.session.0 as usize;
                    // Stragglers of an already finished session (e.g. a
                    // replica fetch still in flight when the answer
                    // completed) carry no work.
                    let Some(runtime) = runtimes[idx].as_mut() else {
                        continue;
                    };
                    if !delivered {
                        runtime.sim.note_receiver_drop();
                        continue;
                    }
                    let Delivery {
                        time,
                        from,
                        to,
                        payload: Wire { payload, .. },
                    } = delivery;
                    runtime.handle(Delivery {
                        time,
                        from,
                        to,
                        payload,
                    })?;
                    if runtime.done {
                        let runtime = runtimes[idx].take().expect("runtime is active");
                        let report = runtime.into_report();
                        let session = &sessions[idx];
                        // Fill the cache only on completion: a session
                        // interrupted mid-query contributes nothing until
                        // its recovery finishes, so a failure can never
                        // leave a partial answer behind.
                        if let (Some(cache), Some(fp)) = (cache.as_deref_mut(), session.fingerprint)
                        {
                            cache.insert(
                                fp,
                                session.epoch,
                                report.rows.clone(),
                                report.signed_rows.clone(),
                                report.total_bytes,
                            );
                        }
                        let arrival = session.arrival;
                        let finished_at = report.running_time;
                        finished[idx] = Some(SessionReport {
                            session: SessionId(idx as u32),
                            name: session.name.clone(),
                            arrival,
                            admitted_at: admitted_at[idx],
                            queue_wait: admitted_at[idx].saturating_sub(arrival),
                            finished_at,
                            latency: finished_at.saturating_sub(arrival),
                            served_from_cache: false,
                            report,
                        });
                        active -= 1;
                    }
                }
                None => {
                    // Quiesced: done, waiting on an arrival, or stalled.
                    if active == 0 && waiting.is_empty() {
                        if next_arrival >= arrival_order.len() {
                            break;
                        }
                        continue; // the clock jumps to the next arrival.
                    }
                    if active == 0 {
                        continue; // free capacity — admit at the top.
                    }
                    let now = shared.borrow().now();
                    let failed = shared.borrow().failed_nodes_at(now);
                    if failed.is_empty() {
                        return Err(OrchestraError::Execution(
                            "workload stalled with no failed node (engine bug)".into(),
                        ));
                    }
                    // Every still-active session stalled on the same
                    // failure; recover each one against its own state,
                    // in session order for determinism.
                    for (idx, slot) in runtimes.iter_mut().enumerate() {
                        let Some(runtime) = slot.as_mut() else {
                            continue;
                        };
                        if runtime.rounds_exhausted() {
                            return Err(OrchestraError::Execution(format!(
                                "session \"{}\" did not complete within {} recovery rounds",
                                sessions[idx].name, engine.max_recovery_rounds
                            )));
                        }
                        runtime.recover(&failed)?;
                    }
                }
            }
        }

        let sessions_out: Vec<SessionReport> = finished.into_iter().flatten().collect();
        let makespan = sessions_out
            .iter()
            .map(|s| s.finished_at)
            .fold(SimTime::ZERO, SimTime::max);
        let mut latencies: Vec<SimTime> = sessions_out.iter().map(|s| s.latency).collect();
        latencies.sort();
        let slo_misses = match self.config.slo {
            Some(slo) => latencies.iter().filter(|&&l| l > slo).count(),
            None => 0,
        };
        let cache_stats = cache
            .as_ref()
            .map(|c| c.stats().since(&cache_before))
            .unwrap_or_default();
        let sim = shared.borrow();
        Ok(WorkloadReport {
            makespan,
            total_bytes: sim.stats().total_bytes(),
            total_messages: sim.stats().total_messages(),
            link_utilization: sim.link_utilization(makespan),
            peak_concurrency,
            admission_order,
            latency_p50: percentile(&latencies, 0.50),
            latency_p99: percentile(&latencies, 0.99),
            latency_p999: percentile(&latencies, 0.999),
            slo_misses,
            shed,
            cache: cache_stats,
            sessions: sessions_out,
        })
    }
}

/// The report of a session answered from the result cache at its arrival
/// instant: zero latency, zero traffic, no execution phases.
fn cache_hit_report(
    idx: usize,
    session: &QuerySession,
    hit: super::cache::CachedAnswer,
) -> SessionReport {
    SessionReport {
        session: SessionId(idx as u32),
        name: session.name.clone(),
        arrival: session.arrival,
        admitted_at: session.arrival,
        queue_wait: SimTime::ZERO,
        finished_at: session.arrival,
        latency: SimTime::ZERO,
        served_from_cache: true,
        report: QueryReport {
            rows: hit.rows,
            signed_rows: hit.signed_rows,
            running_time: SimTime::ZERO,
            total_bytes: 0,
            total_messages: 0,
            link_traffic: Vec::new(),
            dropped_messages: 0,
            recovered: false,
            phases: 0,
            pages_read: 0,
            tuples_scanned: 0,
            remote_lookups: 0,
            purged: 0,
            retransmitted: 0,
            wall_clock: WallClock::default(),
        },
    }
}
