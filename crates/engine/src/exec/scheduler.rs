//! The multi-query session scheduler.
//!
//! Every layer below this one runs exactly one query over a dedicated
//! simulated network.  [`SessionScheduler`] is what turns the executor
//! into a *serving* system: it drives N query runtimes interleaved over
//! **one** shared simulator, so batches from different queries contend
//! for the same uplinks, downlinks and CPUs, and the clock advances
//! globally rather than per query.
//!
//! ## Admission control
//!
//! Submitted sessions enter a bounded run queue (capacity
//! [`SchedulerConfig::queue_capacity`]; submitting more is an error, the
//! system is loaded beyond its configured bound).  At most
//! [`SchedulerConfig::max_concurrent`] sessions execute at once; a slot
//! frees when a session's `Output` segment closes.  The admission order
//! is governed by [`AdmissionPolicy`]:
//!
//! * [`AdmissionPolicy::Fifo`] — strictly by submission order;
//! * [`AdmissionPolicy::ShortestCostFirst`] — by the optimizer's
//!   estimated plan cost ([`QuerySession::estimated_cost`], network
//!   bytes from `orchestra_optimizer::estimate_plan_cost`), submission
//!   order breaking ties — the classic shortest-job-first heuristic that
//!   trades worst-case latency for mean latency.
//!
//! ## Failures
//!
//! A [`super::FailureSpec`] kills a node *of the shared network*: every
//! in-flight session loses its deliveries to and from the victim at
//! once.  When the event queue quiesces with sessions incomplete, the
//! scheduler runs each stalled session's own recovery (Restart or
//! Incremental, per the engine config) — the per-session wire tags
//! ([`SessionId`]) are what keep one query's purge/retransmission from
//! touching another's state.  Sessions admitted after the failure execute on the
//! survivors from the start via the same recovery path.
//!
//! ## Reports
//!
//! Each finished session yields a [`SessionReport`] — queue wait,
//! latency and the full per-query [`QueryReport`] with session-exact
//! traffic.  The run as a whole yields a [`WorkloadReport`]: makespan,
//! aggregate traffic, peak concurrency, and the shared network's link
//! utilization, the quantities a throughput/latency experiment sweeps.

use super::exchange::{SessionId, Wire};
use super::pipeline::Runtime;
use super::session::{shared_sim, SessionSim, SharedSim};
use super::{EngineConfig, FailureSpec, QueryReport, StorageHandle};
use crate::plan::PhysicalPlan;
use orchestra_common::{Epoch, NodeId, OrchestraError, Result};
use orchestra_simnet::{Delivery, SimTime};
use orchestra_storage::DistributedStorage;
use std::collections::VecDeque;

/// How the scheduler picks the next session to admit from the run queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdmissionPolicy {
    /// Strictly by submission order.
    Fifo,
    /// Cheapest estimated plan first ([`QuerySession::estimated_cost`]),
    /// submission order breaking ties.
    ShortestCostFirst,
}

/// Configuration of the multi-query scheduler.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Sessions executing concurrently at most.
    pub max_concurrent: usize,
    /// Bound of the run queue: submitting more sessions than this in one
    /// workload is rejected at admission.
    pub queue_capacity: usize,
    /// Admission order of queued sessions.
    pub policy: AdmissionPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            max_concurrent: 4,
            queue_capacity: 64,
            policy: AdmissionPolicy::Fifo,
        }
    }
}

/// One query submitted to the scheduler.
#[derive(Clone, Debug)]
pub struct QuerySession {
    /// Label carried through to the session's report.
    pub name: String,
    /// The physical plan to execute.
    pub plan: PhysicalPlan,
    /// The data version the query reads.
    pub epoch: Epoch,
    /// The node the query is initiated from (receives the answer).
    pub initiator: NodeId,
    /// The optimizer's estimated plan cost in network bytes
    /// (`orchestra_optimizer::estimate_plan_cost(..).total()`), consulted
    /// by [`AdmissionPolicy::ShortestCostFirst`].
    pub estimated_cost: f64,
    /// Per-scan epoch pins and delta-scan instructions.  Empty for
    /// ordinary queries; view-maintenance sessions (`super::ivm`) use
    /// this to pivot individual scans onto other epochs or onto signed
    /// epoch-interval deltas.
    pub overrides: super::ivm::ScanOverrides,
    /// The participants already hold this plan: dissemination ships only
    /// the routing snapshot and the per-scan parameters, not the plan
    /// itself.  Ad-hoc queries leave this `false`; view maintenance
    /// installs its dataflows once at materialization and streams epoch
    /// parameters through them on every later refresh.
    pub plan_resident: bool,
}

/// One session's outcome within a scheduled workload.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The session's id (its submission index).
    pub session: SessionId,
    /// The submitted [`QuerySession::name`].
    pub name: String,
    /// Virtual time spent waiting in the run queue before admission
    /// (every session arrives at time zero).
    pub queue_wait: SimTime,
    /// Virtual instant the session's answer was complete.
    pub finished_at: SimTime,
    /// Admission-to-completion time: `finished_at - queue_wait`.
    pub latency: SimTime,
    /// The session's full per-query report (rows, session-exact traffic,
    /// recovery counters).
    pub report: QueryReport,
}

/// The outcome of one scheduled workload: every session's report plus
/// the shared network's aggregate measurements.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Completion instant of the last session.
    pub makespan: SimTime,
    /// Bytes shipped between distinct nodes, all sessions combined.
    pub total_bytes: u64,
    /// Inter-node messages, all sessions combined.
    pub total_messages: u64,
    /// Aggregate link utilization over `[0, makespan]`: transfer time
    /// summed over every uplink and downlink, divided by the window's
    /// total link capacity.
    pub link_utilization: f64,
    /// Most sessions ever executing at once (never exceeds
    /// [`SchedulerConfig::max_concurrent`]).
    pub peak_concurrency: usize,
    /// Session ids in the order they were admitted.
    pub admission_order: Vec<SessionId>,
    /// Per-session reports, in submission order.
    pub sessions: Vec<SessionReport>,
}

/// Drives N query runtimes interleaved over one shared simulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionScheduler {
    config: SchedulerConfig,
}

impl SessionScheduler {
    /// A scheduler with `config`.
    pub fn new(config: SchedulerConfig) -> SessionScheduler {
        SessionScheduler { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Run `sessions` to completion over `storage`, failure-free.
    pub fn run(
        &self,
        storage: &DistributedStorage,
        engine: &EngineConfig,
        sessions: &[QuerySession],
    ) -> Result<WorkloadReport> {
        self.run_inner(storage, engine, sessions, None)
    }

    /// Run `sessions` while killing `failure.node` at `failure.at` on the
    /// shared network — every in-flight session is hit at once.  Each
    /// session recovers under `engine.strategy` against its own scratch
    /// copy of the storage, exactly like a stand-alone failure run.
    pub fn run_with_failure(
        &self,
        storage: &DistributedStorage,
        engine: &EngineConfig,
        sessions: &[QuerySession],
        failure: FailureSpec,
    ) -> Result<WorkloadReport> {
        self.run_inner(storage, engine, sessions, Some(failure))
    }

    fn run_inner(
        &self,
        storage: &DistributedStorage,
        engine: &EngineConfig,
        sessions: &[QuerySession],
        failure: Option<FailureSpec>,
    ) -> Result<WorkloadReport> {
        if sessions.is_empty() {
            return Err(OrchestraError::Execution(
                "the scheduler needs at least one session".into(),
            ));
        }
        if self.config.max_concurrent == 0 {
            return Err(OrchestraError::Execution(
                "max_concurrent must be at least 1".into(),
            ));
        }
        if sessions.len() > self.config.queue_capacity {
            return Err(OrchestraError::Execution(format!(
                "admission rejected: {} sessions exceed the run-queue bound of {}",
                sessions.len(),
                self.config.queue_capacity
            )));
        }
        let table = storage.routing();
        for s in sessions {
            if !table.contains_node(s.initiator) {
                return Err(OrchestraError::Execution(format!(
                    "initiator {} of session \"{}\" is not a member of the routing table",
                    s.initiator, s.name
                )));
            }
        }
        if let Some(f) = failure {
            if !table.contains_node(f.node) {
                return Err(OrchestraError::Execution(format!(
                    "failure target {} is not a member of the routing table",
                    f.node
                )));
            }
        }

        let shared: SharedSim = shared_sim(table, engine.profile);
        if let Some(f) = failure {
            shared.borrow_mut().fail_node(f.node, f.at);
        }

        let mut queue = self.admission_queue(sessions);
        let mut runtimes: Vec<Option<Runtime>> = sessions.iter().map(|_| None).collect();
        let mut finished: Vec<Option<SessionReport>> = sessions.iter().map(|_| None).collect();
        let mut admitted_at: Vec<SimTime> = vec![SimTime::ZERO; sessions.len()];
        let mut admission_order = Vec::with_capacity(sessions.len());
        let mut active = 0usize;
        let mut peak_concurrency = 0usize;

        loop {
            // Admit while there is queued work and free capacity.
            while active < self.config.max_concurrent {
                let Some(idx) = queue.pop_front() else { break };
                let now = shared.borrow().now();
                let session = &sessions[idx];
                let sim = SessionSim::attach(shared.clone(), SessionId(idx as u32));
                // A failure run needs a per-session scratch copy so each
                // session's recovery can mark the dead node unreadable
                // without disturbing the caller (or the other sessions).
                let handle = if failure.is_some() {
                    StorageHandle::Scratch(Box::new(storage.clone()))
                } else {
                    StorageHandle::Borrowed(storage)
                };
                let mut runtime = Runtime::new(
                    handle,
                    engine,
                    &session.plan,
                    session.epoch,
                    session.initiator,
                    sim,
                )?;
                runtime.overrides = session.overrides.clone();
                runtime.plan_resident = session.plan_resident;
                runtime.begin(now);
                runtimes[idx] = Some(runtime);
                admitted_at[idx] = now;
                admission_order.push(SessionId(idx as u32));
                active += 1;
                peak_concurrency = peak_concurrency.max(active);
            }

            let popped = shared.borrow_mut().next_any();
            match popped {
                Some((delivery, delivered)) => {
                    let idx = delivery.payload.session.0 as usize;
                    // Stragglers of an already finished session (e.g. a
                    // replica fetch still in flight when the answer
                    // completed) carry no work.
                    let Some(runtime) = runtimes[idx].as_mut() else {
                        continue;
                    };
                    if !delivered {
                        runtime.sim.note_receiver_drop();
                        continue;
                    }
                    let Delivery {
                        time,
                        from,
                        to,
                        payload: Wire { payload, .. },
                    } = delivery;
                    runtime.handle(Delivery {
                        time,
                        from,
                        to,
                        payload,
                    })?;
                    if runtime.done {
                        let runtime = runtimes[idx].take().expect("runtime is active");
                        let report = runtime.into_report();
                        let queue_wait = admitted_at[idx];
                        let finished_at = report.running_time;
                        finished[idx] = Some(SessionReport {
                            session: SessionId(idx as u32),
                            name: sessions[idx].name.clone(),
                            queue_wait,
                            finished_at,
                            latency: finished_at.saturating_sub(queue_wait),
                            report,
                        });
                        active -= 1;
                    }
                }
                None => {
                    // Quiesced: done, waiting on admission, or stalled.
                    if active == 0 && queue.is_empty() {
                        break;
                    }
                    if active == 0 {
                        continue; // free capacity — admit at the top.
                    }
                    let now = shared.borrow().now();
                    let failed = shared.borrow().failed_nodes_at(now);
                    if failed.is_empty() {
                        return Err(OrchestraError::Execution(
                            "workload stalled with no failed node (engine bug)".into(),
                        ));
                    }
                    // Every still-active session stalled on the same
                    // failure; recover each one against its own state,
                    // in session order for determinism.
                    for (idx, slot) in runtimes.iter_mut().enumerate() {
                        let Some(runtime) = slot.as_mut() else {
                            continue;
                        };
                        if runtime.rounds_exhausted() {
                            return Err(OrchestraError::Execution(format!(
                                "session \"{}\" did not complete within {} recovery rounds",
                                sessions[idx].name, engine.max_recovery_rounds
                            )));
                        }
                        runtime.recover(&failed)?;
                    }
                }
            }
        }

        let sessions_out: Vec<SessionReport> = finished
            .into_iter()
            .map(|r| r.expect("every session finished"))
            .collect();
        let makespan = sessions_out
            .iter()
            .map(|s| s.finished_at)
            .fold(SimTime::ZERO, SimTime::max);
        let sim = shared.borrow();
        Ok(WorkloadReport {
            makespan,
            total_bytes: sim.stats().total_bytes(),
            total_messages: sim.stats().total_messages(),
            link_utilization: sim.link_utilization(makespan),
            peak_concurrency,
            admission_order,
            sessions: sessions_out,
        })
    }

    /// The run queue in admission order under the configured policy.
    fn admission_queue(&self, sessions: &[QuerySession]) -> VecDeque<usize> {
        let mut order: Vec<usize> = (0..sessions.len()).collect();
        if self.config.policy == AdmissionPolicy::ShortestCostFirst {
            // Stable sort: equal (or incomparable) costs keep
            // submission order.
            order.sort_by(|&a, &b| {
                sessions[a]
                    .estimated_cost
                    .partial_cmp(&sessions[b].estimated_cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        order.into()
    }
}
